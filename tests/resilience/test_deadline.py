"""Deadline: the contextvars-carried end-to-end budget."""

import pytest

from repro.common.clock import SimulatedClock
from repro.errors import DeadlineExceededError
from repro.resilience import (
    Deadline,
    check_deadline,
    current_deadline,
    deadline_scope,
    remaining_budget,
)


@pytest.fixture
def clock():
    return SimulatedClock()


class TestDeadline:
    def test_remaining_counts_down_and_never_goes_negative(self, clock):
        deadline = Deadline.after(clock, 2.0)
        assert deadline.remaining() == pytest.approx(2.0)
        clock.advance(1.5)
        assert deadline.remaining() == pytest.approx(0.5)
        clock.advance(10.0)
        assert deadline.remaining() == 0.0
        assert deadline.expired()

    def test_check_raises_once_expired(self, clock):
        deadline = Deadline.after(clock, 1.0)
        deadline.check("hop")  # fine while budget remains
        clock.advance(1.0)
        with pytest.raises(DeadlineExceededError) as excinfo:
            deadline.check("hop")
        assert "hop" in str(excinfo.value)

    def test_deadline_exceeded_is_not_transient(self, clock):
        """A blown deadline must not be retried — the budget is gone.

        OverloadError is transient (shed before effects, safe to re-run
        elsewhere); DeadlineExceededError is the opposite case.
        """
        from repro.errors import OverloadError, is_transient

        assert not is_transient(DeadlineExceededError("x"))
        assert is_transient(OverloadError("y"))


class TestScope:
    def test_scope_installs_and_restores_the_ambient_deadline(self, clock):
        assert current_deadline() is None
        deadline = Deadline.after(clock, 5.0)
        with deadline_scope(deadline):
            assert current_deadline() is deadline
            check_deadline("inside")
        assert current_deadline() is None

    def test_none_scope_is_a_no_op(self, clock):
        with deadline_scope(None):
            assert current_deadline() is None
            check_deadline("no deadline set")  # never raises

    def test_nested_scopes_clamp_to_the_tighter_budget(self, clock):
        with deadline_scope(Deadline.after(clock, 1.0)):
            inner = Deadline.after(clock, 100.0)
            # The inner scope asked for more than the ambient deadline
            # allows: it gets the ambient expiry, not a fresh 100s.
            assert inner.expires_at == pytest.approx(clock.now() + 1.0)
            assert inner.remaining() == pytest.approx(1.0)
            with deadline_scope(inner):
                assert remaining_budget() == pytest.approx(1.0)

    def test_inner_scope_may_tighten(self, clock):
        with deadline_scope(Deadline.after(clock, 10.0)):
            with deadline_scope(Deadline.after(clock, 1.0)):
                assert remaining_budget() == pytest.approx(1.0)
            assert remaining_budget() == pytest.approx(10.0)

    def test_remaining_budget_without_deadline_is_none(self):
        assert remaining_budget() is None

    def test_check_deadline_raises_from_ambient_scope(self, clock):
        with deadline_scope(Deadline.after(clock, 0.5)):
            clock.advance(0.5)
            with pytest.raises(DeadlineExceededError):
                check_deadline("ambient")
