"""FaultInjector unit tests: rules, schedules, determinism, no-op-ness."""

import pytest

from repro.common.clock import SimulatedClock
from repro.errors import LinkUnavailableError, ReplicationError
from repro.faults import FaultInjector, FaultRule


@pytest.fixture
def clock():
    return SimulatedClock()


@pytest.fixture
def injector(clock):
    return FaultInjector(clock, seed=42)


def test_rule_matches_exact_and_prefix():
    rule = FaultRule("link:backend:query")
    assert rule.matches("link:backend:query")
    assert not rule.matches("link:backend:statement")
    wild = FaultRule("link:backend:*")
    assert wild.matches("link:backend:query")
    assert wild.matches("link:backend:prepared")
    assert not wild.matches("link:other:query")


def test_fails_exactly_the_nth_call(injector):
    injector.rule("site:x", skip=2, count=1)
    injector.on_call("site:x")
    injector.on_call("site:x")
    with pytest.raises(LinkUnavailableError):
        injector.on_call("site:x")
    # Exhausted: the fourth call sails through.
    injector.on_call("site:x")
    assert injector.injected == 1


def test_count_none_fires_forever(injector):
    injector.rule("site:x", count=None)
    for _ in range(5):
        with pytest.raises(LinkUnavailableError):
            injector.on_call("site:x")
    assert injector.injected == 5


def test_latency_action_advances_virtual_clock(injector, clock):
    injector.rule("site:slow", action="latency", latency=0.75, count=2)
    before = clock.now()
    injector.on_call("site:slow")
    assert clock.now() == pytest.approx(before + 0.75)
    injector.on_call("site:slow")
    injector.on_call("site:slow")  # exhausted: no further delay
    assert clock.now() == pytest.approx(before + 1.5)


def test_apply_error_action(injector):
    injector.rule("subscription:s:apply", action="apply-error")
    with pytest.raises(ReplicationError):
        injector.on_call("subscription:s:apply")


def test_callable_action_receives_context(injector):
    seen = []
    injector.rule("site:cb", action=lambda inj, site, ctx: seen.append((site, ctx)))
    injector.on_call("site:cb", detail=7)
    assert seen == [("site:cb", {"detail": 7})]


def test_unknown_action_rejected(injector):
    injector.rule("site:x", action="explode")
    with pytest.raises(ValueError):
        injector.on_call("site:x")


def test_chance_draws_from_seeded_rng(clock):
    def count_fired(seed):
        injector = FaultInjector(clock, seed=seed)
        injector.rule("site:x", action="latency", count=None, chance=0.5)
        injector.on_call("site:x")  # latency=0 so nothing else observable
        for _ in range(99):
            injector.on_call("site:x")
        return injector.injected

    assert count_fired(7) == count_fired(7)  # deterministic
    fired = count_fired(7)
    assert 20 < fired < 80  # probabilistic, not all-or-nothing


def test_idle_injector_is_a_true_noop(injector, clock):
    """No rules armed: the RNG stream and clock must stay untouched."""
    state_before = injector.rng.getstate()
    for _ in range(100):
        injector.on_call("site:anything", context=1)
    assert injector.rng.getstate() == state_before
    assert injector.tick(clock.now()) == 0
    assert injector.injected == 0
    assert injector.log == []


def test_disabled_injector_fires_nothing(injector):
    injector.rule("site:x")
    injector.enabled = False
    injector.on_call("site:x")
    assert injector.injected == 0


def test_schedule_fires_in_time_order(injector, clock):
    fired = []
    injector.at(2.0, lambda: fired.append("b"))
    injector.at(1.0, lambda: fired.append("a"))
    injector.at(1.0, lambda: fired.append("a2"))  # tie: insertion order
    assert injector.pending == 3
    assert injector.tick(0.5) == 0
    assert injector.tick(1.0) == 2
    assert fired == ["a", "a2"]
    assert injector.tick(5.0) == 1
    assert fired == ["a", "a2", "b"]
    assert injector.pending == 0


def test_schedule_accepts_method_names(injector, clock):
    class FakeServer:
        name = "srv"

        def __init__(self):
            self.crashed = False

        def crash(self):
            self.crashed = True

        def restart(self):
            self.crashed = False

    server = FakeServer()
    injector.at(1.0, "crash_server", server)
    injector.at(2.0, "restart_server", server)
    clock.advance(1.0)
    injector.tick(clock.now())
    assert server.crashed
    clock.advance(1.0)
    injector.tick(clock.now())
    assert not server.crashed


def test_log_records_virtual_timestamps(injector, clock):
    clock.advance(3.5)
    injector.rule("site:x", count=1)
    with pytest.raises(LinkUnavailableError):
        injector.on_call("site:x")
    ((when, site, action),) = injector.log
    assert when == pytest.approx(3.5)
    assert site == "site:x"
    assert action == "unavailable"
