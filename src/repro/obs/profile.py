"""Per-operator execution profiles (``SET STATISTICS PROFILE ON``-style).

A profile records, for every physical operator in a plan, how many times
it was opened, how many rows it actually produced, and how much wall time
it spent — then renders the annotated plan tree with actuals next to the
optimizer's estimates, which is exactly what you need to see where a
dynamic plan's cost went wrong.

Implementation: :func:`profiled` wraps each operator *instance* in the
plan with instrumented ``execute`` *and* ``execute_batches`` (instance
attributes shadowing the class methods) for the duration of one
execution, then removes the shims — whichever mode the driver runs in,
the profile fills. Timing is taken around each ``next()`` on the
operator's generator, so an operator's recorded time is inclusive of its
children but excludes time the consumer spends between rows; the renderer
derives exclusive ("self") time by subtracting the children's inclusive
time. Batch mode reports rows (summed over chunks) and ``actual_batches``;
the base-class fallback shim calls ``execute`` at class level, so a
shimmed operator's rows are counted once, by the batch instrumentation.

Profiling is opt-in per execution (a session flag or
``Server.profile_statements``): the instrumented path costs a timer call
per row, which is too much to leave on for every query — unlike the
metrics registry, which is always on.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List

from repro.exec.operators import PhysicalOperator


class OperatorProfile:
    """Actuals for one operator in one profiled execution."""

    __slots__ = ("operator", "description", "estimated_rows", "actual_rows",
                 "actual_batches", "opens", "wall_seconds", "children")

    def __init__(self, operator: PhysicalOperator):
        self.operator = operator
        self.description = operator.describe()
        self.estimated_rows = operator.estimated_rows
        self.actual_rows = 0
        self.actual_batches = 0
        self.opens = 0
        self.wall_seconds = 0.0
        self.children: List["OperatorProfile"] = []

    @property
    def self_seconds(self) -> float:
        """Wall time net of children (clamped at zero against jitter)."""
        return max(0.0, self.wall_seconds - sum(c.wall_seconds for c in self.children))

    def walk(self) -> Iterator["OperatorProfile"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "operator": self.description,
            "estimated_rows": self.estimated_rows,
            "actual_rows": self.actual_rows,
            "actual_batches": self.actual_batches,
            "opens": self.opens,
            "wall_ms": self.wall_seconds * 1e3,
            "self_ms": self.self_seconds * 1e3,
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:
        return (
            f"<OperatorProfile {self.description} rows={self.actual_rows} "
            f"opens={self.opens} wall={self.wall_seconds * 1e3:.3f}ms>"
        )


class ExecutionProfile:
    """The per-operator profile of one statement execution."""

    def __init__(self, root: OperatorProfile):
        self.root = root

    def operators(self) -> List[OperatorProfile]:
        return list(self.root.walk())

    def render(self) -> str:
        """The annotated plan tree: actuals alongside estimates."""
        lines: List[str] = []

        def render_node(node: OperatorProfile, indent: int) -> None:
            batches = (
                f" batches={node.actual_batches}" if node.actual_batches else ""
            )
            lines.append(
                "  " * indent + node.description
                + f"  [actual rows={node.actual_rows}{batches} opens={node.opens}"
                + f" time={node.wall_seconds * 1e3:.3f}ms"
                + f" self={node.self_seconds * 1e3:.3f}ms"
                + f" est rows={node.estimated_rows:.0f}]"
            )
            for child in node.children:
                render_node(child, indent + 1)

        render_node(self.root, 0)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return self.root.to_dict()

    def __repr__(self) -> str:
        return f"<ExecutionProfile root={self.root.description!r}>"


def _build_tree(operator: PhysicalOperator) -> OperatorProfile:
    node = OperatorProfile(operator)
    node.children = [_build_tree(child) for child in operator.children]
    return node


def _instrumented_execute(operator: PhysicalOperator, node: OperatorProfile):
    original = type(operator).execute
    perf_counter = time.perf_counter

    def execute(ctx):
        node.opens += 1
        iterator = original(operator, ctx)
        while True:
            started = perf_counter()
            try:
                row = next(iterator)
            except StopIteration:
                node.wall_seconds += perf_counter() - started
                return
            node.wall_seconds += perf_counter() - started
            node.actual_rows += 1
            yield row

    return execute


def _instrumented_execute_batches(operator: PhysicalOperator, node: OperatorProfile):
    original = type(operator).execute_batches
    perf_counter = time.perf_counter

    def execute_batches(ctx):
        node.opens += 1
        iterator = original(operator, ctx)
        while True:
            started = perf_counter()
            try:
                chunk = next(iterator)
            except StopIteration:
                node.wall_seconds += perf_counter() - started
                return
            node.wall_seconds += perf_counter() - started
            node.actual_batches += 1
            node.actual_rows += len(chunk)
            yield chunk

    return execute_batches


@contextmanager
def profiled(root: PhysicalOperator):
    """Instrument a plan tree for one execution.

    Yields the :class:`ExecutionProfile`; actuals accumulate as the plan
    runs inside the ``with`` block. The shims are removed on exit even if
    execution raises, so cached (shared) plans are never left patched.
    """
    profile = ExecutionProfile(_build_tree(root))
    patched: List[PhysicalOperator] = []
    try:
        for node in profile.root.walk():
            node.operator.execute = _instrumented_execute(node.operator, node)
            node.operator.execute_batches = _instrumented_execute_batches(
                node.operator, node
            )
            patched.append(node.operator)
        yield profile
    finally:
        for operator in patched:
            operator.__dict__.pop("execute", None)
            operator.__dict__.pop("execute_batches", None)
