"""Unit tests for the analytic cluster model (no calibration needed)."""

import pytest

from repro.simulation.analytic import ClusterModel, ClusterSpec
from repro.simulation.calibrate import CalibrationResult, InteractionProfile
from repro.tpcw import TPCWConfig
from repro.tpcw.workload import INTERACTIONS, MIXES


def synthetic_calibration(cache_work=100.0, backend_work=50.0, commands=0.5):
    """A calibration where every interaction has identical demands."""
    profiles = {
        name: InteractionProfile(
            name=name,
            cache_work=cache_work,
            backend_work=backend_work,
            db_calls=1.0,
            replication_commands=commands,
        )
        for name in INTERACTIONS
    }
    return CalibrationResult(mode="cached", profiles=profiles, config=TPCWConfig())


class TestDemands:
    def test_mix_demand_is_weighted_average(self):
        calibration = synthetic_calibration(cache_work=100.0, backend_work=50.0)
        cache, backend, commands = calibration.mix_demand(MIXES["Shopping"])
        assert cache == pytest.approx(100.0)
        assert backend == pytest.approx(50.0)
        assert commands == pytest.approx(0.5)

    def test_demand_unit_conversion(self):
        spec = ClusterSpec(cpu_capacity=1000.0, web_overhead=100.0)
        model = ClusterModel(synthetic_calibration(100.0, 50.0, 0.0), spec)
        demands = model.demands(MIXES["Shopping"])
        assert demands["web"] == pytest.approx(0.2)  # (100 + 100) / 1000
        assert demands["backend"] == pytest.approx(0.05)

    def test_replication_toggle_zeroes_commands(self):
        spec = ClusterSpec(cpu_capacity=1000.0)
        with_repl = ClusterModel(synthetic_calibration(commands=2.0), spec)
        without = ClusterModel(
            synthetic_calibration(commands=2.0), spec, replication_enabled=False
        )
        assert with_repl.demands(MIXES["Shopping"])["logreader"] > 0
        assert without.demands(MIXES["Shopping"])["logreader"] == 0


class TestPoints:
    def spec(self):
        return ClusterSpec(
            backend_cpus=2,
            web_cpus=1,
            cpu_capacity=1000.0,
            web_overhead=0.0,
            utilization_target=0.9,
            logreader_work_per_command=0.0,
            apply_work_per_command=0.0,
        )

    def test_web_bound_point(self):
        # web demand 0.1 s, backend demand 0.001 s: web tier binds.
        model = ClusterModel(synthetic_calibration(100.0, 1.0, 0.0), self.spec())
        point = model.point("Shopping", 2)
        assert point.bottleneck == "web"
        assert point.wips == pytest.approx(2 * 0.9 / 0.1)
        assert point.web_utilization == pytest.approx(0.9)

    def test_backend_bound_point(self):
        model = ClusterModel(synthetic_calibration(1.0, 400.0, 0.0), self.spec())
        point = model.point("Shopping", 5)
        assert point.bottleneck == "backend"
        assert point.backend_utilization == pytest.approx(0.9)

    def test_backend_utilization_scales_with_wips(self):
        model = ClusterModel(synthetic_calibration(100.0, 10.0, 0.0), self.spec())
        one = model.point("Shopping", 1)
        two = model.point("Shopping", 2)
        assert two.backend_utilization == pytest.approx(2 * one.backend_utilization)

    def test_max_scaleout_matches_crossover(self):
        model = ClusterModel(synthetic_calibration(100.0, 10.0, 0.0), self.spec())
        limit = model.max_scaleout("Shopping")
        # At the limit the backend is not past 90 %; one more server tips it.
        at_limit = model.point("Shopping", limit)
        beyond = model.point("Shopping", limit + 2)
        assert at_limit.backend_utilization <= 0.9 + 1e-9
        assert beyond.bottleneck == "backend" or beyond.backend_utilization >= at_limit.backend_utilization

    def test_apply_work_charged_per_cache(self):
        spec = self.spec()
        spec.apply_work_per_command = 100.0
        model = ClusterModel(synthetic_calibration(100.0, 1.0, 1.0), spec)
        plain = ClusterModel(synthetic_calibration(100.0, 1.0, 0.0), spec)
        # Apply work raises per-machine demand, lowering per-server WIPS
        # identically at every N (it does not amortize across caches).
        for n in (1, 3):
            assert model.point("Shopping", n).wips < plain.point("Shopping", n).wips
