"""Physical operator tests (standalone, without the optimizer)."""

import pytest

from repro.common.schema import Column, Schema
from repro.common.types import FLOAT, INT, VARCHAR
from repro.engine.database import Database
from repro.catalog.objects import TableDef
from repro.exec.context import ExecutionContext
from repro.exec.expressions import ExpressionCompiler
from repro.exec.operators import (
    AggregateOp,
    AggregateSpec,
    DistinctOp,
    FilterOp,
    HashJoinOp,
    IndexExtremeOp,
    IndexLookupJoinOp,
    IndexSeekOp,
    NestedLoopJoinOp,
    ProjectOp,
    SeqScanOp,
    SortOp,
    TopOp,
    UnionAllOp,
    ValuesOp,
)
from repro.sql import parse_expression


def make_db():
    database = Database("test")
    schema = Schema(
        [
            Column("id", INT, nullable=False),
            Column("grp", VARCHAR(10)),
            Column("val", FLOAT),
        ]
    )
    database.create_storage(TableDef("t", schema, primary_key=("id",)))
    table = database.storage_table("t")
    for i in range(1, 11):
        table.insert((i, "even" if i % 2 == 0 else "odd", float(i)))
    return database


def ctx_for(database):
    return ExecutionContext(database=database)


def rows_of(op, database):
    return list(op.execute(ctx_for(database)))


def scan_schema():
    return Schema(
        [
            Column("id", INT, qualifier="t"),
            Column("grp", VARCHAR(10), qualifier="t"),
            Column("val", FLOAT, qualifier="t"),
        ]
    )


class TestScansAndFilters:
    def test_seq_scan(self):
        database = make_db()
        op = SeqScanOp(scan_schema(), "t")
        assert len(rows_of(op, database)) == 10

    def test_filter(self):
        database = make_db()
        schema = scan_schema()
        predicate = ExpressionCompiler(schema).compile(parse_expression("grp = 'even'"))
        op = FilterOp(SeqScanOp(schema, "t"), predicate)
        assert len(rows_of(op, database)) == 5

    def test_startup_predicate_false_skips_input(self):
        database = make_db()
        schema = scan_schema()
        blank = ExpressionCompiler(Schema(()))
        guard = blank.compile(parse_expression("@x <= 5"))
        op = FilterOp(SeqScanOp(schema, "t"), startup_predicate=guard)
        ctx = ExecutionContext(database=database, params={"x": 10})
        assert list(op.execute(ctx)) == []
        ctx2 = ExecutionContext(database=database, params={"x": 3})
        assert len(list(op.execute(ctx2))) == 10

    def test_startup_predicate_unknown_is_false(self):
        database = make_db()
        schema = scan_schema()
        blank = ExpressionCompiler(Schema(()))
        guard = blank.compile(parse_expression("@missing <= 5"))
        op = FilterOp(SeqScanOp(schema, "t"), startup_predicate=guard)
        assert rows_of(op, database) == []

    def test_index_seek(self):
        database = make_db()
        schema = scan_schema()
        blank = ExpressionCompiler(Schema(()))
        op = IndexSeekOp(schema, "t", "pk_t", [blank.compile(parse_expression("7"))])
        result = rows_of(op, database)
        assert result == [(7, "odd", 7.0)]

    def test_index_extreme(self):
        database = make_db()
        schema = Schema([Column("m", INT)])
        op_max = IndexExtremeOp(schema, "t", "pk_t", "MAX")
        op_min = IndexExtremeOp(schema, "t", "pk_t", "MIN")
        assert rows_of(op_max, database) == [(10,)]
        assert rows_of(op_min, database) == [(1,)]

    def test_index_extreme_empty_table(self):
        database = make_db()
        database.storage_table("t").truncate()
        schema = Schema([Column("m", INT)])
        op = IndexExtremeOp(schema, "t", "pk_t", "MAX")
        assert rows_of(op, database) == [(None,)]


class TestJoins:
    def left_input(self):
        schema = Schema([Column("k", INT, qualifier="l")])
        blank = ExpressionCompiler(Schema(()))
        makers = [[blank.compile(parse_expression(str(v)))] for v in (2, 4, 99)]
        return ValuesOp(schema, makers)

    def test_hash_join_inner(self):
        database = make_db()
        left = self.left_input()
        right = SeqScanOp(scan_schema(), "t")
        left_key = ExpressionCompiler(left.schema).compile(parse_expression("k"))
        right_key = ExpressionCompiler(right.schema).compile(parse_expression("id"))
        op = HashJoinOp(left, right, [left_key], [right_key])
        result = rows_of(op, database)
        assert sorted(row[0] for row in result) == [2, 4]

    def test_hash_join_left_outer(self):
        database = make_db()
        left = self.left_input()
        right = SeqScanOp(scan_schema(), "t")
        left_key = ExpressionCompiler(left.schema).compile(parse_expression("k"))
        right_key = ExpressionCompiler(right.schema).compile(parse_expression("id"))
        op = HashJoinOp(left, right, [left_key], [right_key], kind="LEFT")
        result = rows_of(op, database)
        assert len(result) == 3
        unmatched = [row for row in result if row[0] == 99][0]
        assert unmatched[1:] == (None, None, None)

    def test_nested_loop_cross(self):
        database = make_db()
        left = self.left_input()
        right = SeqScanOp(scan_schema(), "t")
        op = NestedLoopJoinOp(left, right)
        assert len(rows_of(op, database)) == 30

    def test_index_lookup_join(self):
        database = make_db()
        left = self.left_input()
        storage_schema = scan_schema()
        key = ExpressionCompiler(left.schema).compile(parse_expression("k"))
        op = IndexLookupJoinOp(
            left,
            storage_schema,
            "t",
            "pk_t",
            [key],
            right_positions=[0, 1, 2],
        )
        result = rows_of(op, database)
        assert sorted(row[0] for row in result) == [2, 4]

    def test_index_lookup_join_left_outer(self):
        database = make_db()
        left = self.left_input()
        key = ExpressionCompiler(left.schema).compile(parse_expression("k"))
        op = IndexLookupJoinOp(
            left, scan_schema(), "t", "pk_t", [key], [0, 1, 2], kind="LEFT"
        )
        result = rows_of(op, database)
        assert len(result) == 3

    def test_null_keys_never_join(self):
        database = make_db()
        schema = Schema([Column("k", INT, qualifier="l")])
        blank = ExpressionCompiler(Schema(()))
        left = ValuesOp(schema, [[blank.compile(parse_expression("NULL"))]])
        right = SeqScanOp(scan_schema(), "t")
        left_key = ExpressionCompiler(left.schema).compile(parse_expression("k"))
        right_key = ExpressionCompiler(right.schema).compile(parse_expression("id"))
        op = HashJoinOp(left, right, [left_key], [right_key])
        assert rows_of(op, database) == []


class TestAggregation:
    def test_group_by(self):
        database = make_db()
        schema = scan_schema()
        compiler = ExpressionCompiler(schema)
        group = compiler.compile(parse_expression("grp"))
        out_schema = Schema([Column("grp", VARCHAR(10)), Column("n", INT), Column("s", FLOAT)])
        op = AggregateOp(
            SeqScanOp(schema, "t"),
            out_schema,
            [group],
            [
                AggregateSpec("COUNT", None),
                AggregateSpec("SUM", compiler.compile(parse_expression("val"))),
            ],
        )
        result = {row[0]: row[1:] for row in rows_of(op, database)}
        assert result["even"] == (5, 30.0)
        assert result["odd"] == (5, 25.0)

    def test_aggregates_ignore_nulls(self):
        database = make_db()
        database.storage_table("t").insert((11, "odd", None))
        schema = scan_schema()
        compiler = ExpressionCompiler(schema)
        val = compiler.compile(parse_expression("val"))
        out = Schema([Column("n", INT), Column("c2", INT), Column("a", FLOAT)])
        op = AggregateOp(
            SeqScanOp(schema, "t"),
            out,
            [],
            [
                AggregateSpec("COUNT", None),
                AggregateSpec("COUNT", val),
                AggregateSpec("AVG", val),
            ],
        )
        (row,) = rows_of(op, database)
        assert row[0] == 11  # COUNT(*) counts NULL rows
        assert row[1] == 10  # COUNT(val) does not
        assert row[2] == pytest.approx(5.5)

    def test_empty_input_no_groups_yields_one_row(self):
        database = make_db()
        database.storage_table("t").truncate()
        schema = scan_schema()
        compiler = ExpressionCompiler(schema)
        out = Schema([Column("n", INT), Column("s", FLOAT)])
        op = AggregateOp(
            SeqScanOp(schema, "t"),
            out,
            [],
            [AggregateSpec("COUNT", None), AggregateSpec("SUM", compiler.compile(parse_expression("val")))],
        )
        assert rows_of(op, database) == [(0, None)]

    def test_empty_input_with_groups_yields_nothing(self):
        database = make_db()
        database.storage_table("t").truncate()
        schema = scan_schema()
        compiler = ExpressionCompiler(schema)
        out = Schema([Column("grp", VARCHAR(10)), Column("n", INT)])
        op = AggregateOp(
            SeqScanOp(schema, "t"),
            out,
            [compiler.compile(parse_expression("grp"))],
            [AggregateSpec("COUNT", None)],
        )
        assert rows_of(op, database) == []

    def test_min_max_distinct(self):
        database = make_db()
        schema = scan_schema()
        compiler = ExpressionCompiler(schema)
        grp = compiler.compile(parse_expression("grp"))
        out = Schema([Column("mn", FLOAT), Column("mx", FLOAT), Column("d", INT)])
        op = AggregateOp(
            SeqScanOp(schema, "t"),
            out,
            [],
            [
                AggregateSpec("MIN", compiler.compile(parse_expression("val"))),
                AggregateSpec("MAX", compiler.compile(parse_expression("val"))),
                AggregateSpec("COUNT", grp, distinct=True),
            ],
        )
        assert rows_of(op, database) == [(1.0, 10.0, 2)]


class TestSortTopDistinctUnion:
    def test_sort_multi_key(self):
        database = make_db()
        schema = scan_schema()
        compiler = ExpressionCompiler(schema)
        op = SortOp(
            SeqScanOp(schema, "t"),
            [
                (compiler.compile(parse_expression("grp")), False),
                (compiler.compile(parse_expression("val")), True),
            ],
        )
        result = rows_of(op, database)
        assert result[0][1] == "even" and result[0][2] == 10.0
        assert result[-1][1] == "odd" and result[-1][2] == 1.0

    def test_sort_nulls_first_ascending(self):
        database = make_db()
        database.storage_table("t").insert((11, "odd", None))
        schema = scan_schema()
        compiler = ExpressionCompiler(schema)
        op = SortOp(SeqScanOp(schema, "t"), [(compiler.compile(parse_expression("val")), False)])
        result = rows_of(op, database)
        assert result[0][2] is None

    def test_top(self):
        database = make_db()
        schema = scan_schema()
        blank = ExpressionCompiler(Schema(()))
        op = TopOp(SeqScanOp(schema, "t"), blank.compile(parse_expression("3")))
        assert len(rows_of(op, database)) == 3

    def test_top_parameter(self):
        database = make_db()
        schema = scan_schema()
        blank = ExpressionCompiler(Schema(()))
        op = TopOp(SeqScanOp(schema, "t"), blank.compile(parse_expression("@n")))
        ctx = ExecutionContext(database=database, params={"n": 4})
        assert len(list(op.execute(ctx))) == 4

    def test_top_zero(self):
        database = make_db()
        schema = scan_schema()
        blank = ExpressionCompiler(Schema(()))
        op = TopOp(SeqScanOp(schema, "t"), blank.compile(parse_expression("0")))
        assert rows_of(op, database) == []

    def test_distinct(self):
        database = make_db()
        schema = scan_schema()
        compiler = ExpressionCompiler(schema)
        project = ProjectOp(
            SeqScanOp(schema, "t"),
            Schema([Column("grp", VARCHAR(10))]),
            [compiler.compile(parse_expression("grp"))],
        )
        op = DistinctOp(project)
        assert sorted(rows_of(op, database)) == [("even",), ("odd",)]

    def test_union_all_concatenates(self):
        database = make_db()
        schema = scan_schema()
        op = UnionAllOp([SeqScanOp(schema, "t"), SeqScanOp(schema, "t")])
        assert len(rows_of(op, database)) == 20

    def test_plan_reexecutable(self):
        database = make_db()
        schema = scan_schema()
        op = SeqScanOp(schema, "t")
        assert len(rows_of(op, database)) == 10
        assert len(rows_of(op, database)) == 10

    def test_explain_renders_tree(self):
        schema = scan_schema()
        op = TopOp(SeqScanOp(schema, "t"), ExpressionCompiler(Schema(())).compile(parse_expression("3")))
        text = op.explain()
        assert "Top" in text and "SeqScan(t)" in text
