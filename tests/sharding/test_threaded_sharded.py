"""Real threads through the ShardRouter: pooled TPC-W plus Zipf keys."""

from __future__ import annotations

import random

import pytest

from repro.client import ConnectionPool
from repro.sharding import ShardedDeployment
from repro.tpcw import MIXES, TPCWConfig
from repro.tpcw.driver import ThreadedLoadDriver

pytestmark = [pytest.mark.shard, pytest.mark.concurrency]

WORKERS = 4


def test_threaded_tpcw_through_shard_router_clean():
    sharded = ShardedDeployment(
        config=TPCWConfig(num_items=80, num_ebs=6, seed=37), shards=4
    )
    pool = ConnectionPool(lambda: sharded.connect(), size=WORKERS)
    driver = ThreadedLoadDriver(
        pool,
        TPCWConfig(num_items=80, num_ebs=6, seed=37),
        MIXES["Shopping"],
        workers=WORKERS,
        think_time=0.002,
        deployment=sharded,
        seed=41,
    )
    stats = driver.run(0.5)
    pool.close()

    assert stats.errors == 0, stats.error_samples
    assert stats.interactions > 0
    # Shard traffic actually happened and plans stayed checked everywhere.
    hits = sum(
        sharded.metrics.counter("shard.hits", labels={"shard": name}).value
        for name in sharded.shards
    )
    assert hits > 0
    for cache in sharded.shards.values():
        assert cache.server.checked_plans
    # Every latch quiesced on the backend and all four shards.
    servers = [sharded.backend] + [c.server for c in sharded.shards.values()]
    for server in servers:
        for name in server.databases:
            latch = server.database(name).latch
            assert latch.readers == 0
            assert not latch.owns_exclusive()


def test_zipf_keys_concentrate_on_owning_shards():
    """Zipf-skewed single-key reads: hits land exactly per ownership."""
    sharded = ShardedDeployment(
        config=TPCWConfig(num_items=100, num_ebs=4, seed=43), shards=8
    )
    connection = sharded.connect()
    rng = random.Random(47)
    # Zipf-ish over item ids: low ids run hot.
    keys = [min(100, max(1, int(rng.paretovariate(1.2)))) for _ in range(300)]
    for key in keys:
        rows = connection.execute("EXEC getStock @i_id = @i_id", {"i_id": key}).rows
        assert len(rows) == 1
    expected = sharded.partitioner.ownership(keys)
    for name in sharded.partitioner.shards:
        observed = sharded.metrics.counter(
            "shard.hits", labels={"shard": name}
        ).value
        assert observed == expected[name], (name, observed, expected)
    # Skew is real: the hottest shard dominates the coldest.
    counts = sorted(expected.values())
    assert counts[-1] >= 10 * max(1, counts[0])
