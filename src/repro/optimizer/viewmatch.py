"""View matching for select-project materialized views.

MTCache models cached data as materialized select-project views of backend
tables. A query referencing table ``T`` can be served by a cached view over
``T`` when (a) every required column is present in the view and (b) the
query's predicate implies the view's predicate. Implication involving
run-time parameters yields a *guard*: a parameter-only predicate that, when
true at run time, guarantees containment — the raw material for dynamic
plans (paper §5.1).

The matcher also reports the information needed for the Figure 3
"mixed-result" alternative (rows partly from the view, partly from the
base table), which the optimizer may use for regular materialized views
but never for cached views (staleness would break consistency).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.catalog.objects import ViewDef
from repro.optimizer.predicates import (
    SimpleComparison,
    implies,
    normalize_comparison,
    split_conjuncts,
)
from repro.sql import ast


@dataclass
class ViewDescription:
    """A select-project view over one base table, in analyzable form."""

    view: ViewDef
    base_table: str
    # Maps lowercase base-column name -> view output column name.
    column_mapping: Dict[str, str]
    conjuncts: List[SimpleComparison]
    opaque_predicate: bool  # view has conjuncts we cannot reason about


def describe_view(view: ViewDef, base_columns: List[str]) -> Optional[ViewDescription]:
    """Analyze a view; returns None when it is not select-project."""
    select = view.select
    if not isinstance(select.from_clause, ast.TableName):
        return None
    if select.group_by or select.having or select.order_by or select.top or select.distinct:
        return None
    base_table = select.from_clause.object_name
    alias = select.from_clause.binding_name

    column_mapping: Dict[str, str] = {}
    for item in select.items:
        expression = item.expression
        if isinstance(expression, ast.Star):
            for column in base_columns:
                column_mapping.setdefault(column.lower(), column)
            continue
        if not isinstance(expression, ast.ColumnRef):
            return None  # computed columns put the view out of scope
        if expression.qualifier and expression.qualifier.lower() != alias.lower():
            return None
        output_name = item.alias or expression.name
        column_mapping[expression.name.lower()] = output_name

    comparisons: List[SimpleComparison] = []
    opaque = False
    for conjunct in split_conjuncts(select.where):
        comparison = normalize_comparison(conjunct)
        if comparison is None or comparison.is_parameterized:
            opaque = True
            continue
        if comparison.column.qualifier and comparison.column.qualifier.lower() != alias.lower():
            opaque = True
            continue
        comparisons.append(comparison)
    return ViewDescription(
        view=view,
        base_table=base_table,
        column_mapping=column_mapping,
        conjuncts=comparisons,
        opaque_predicate=opaque,
    )


@dataclass
class ViewMatch:
    """A successful match of a query table reference against a view.

    ``guards`` is a list of ``(guard_expression, column_name)`` pairs; the
    match is unconditional when empty. ``remainder`` describes, for
    single-conjunct views, the predicate selecting rows *outside* the view
    (used by mixed-result plans for regular materialized views).
    """

    description: ViewDescription
    guards: List[Tuple[ast.Expression, str]] = field(default_factory=list)
    remainder: Optional[ast.Expression] = None

    @property
    def view(self) -> ViewDef:
        return self.description.view

    @property
    def unconditional(self) -> bool:
        return not self.guards

    def guard_expression(self) -> Optional[ast.Expression]:
        """AND of all guards, or None for unconditional matches."""
        result: Optional[ast.Expression] = None
        for guard, _ in self.guards:
            result = guard if result is None else ast.BinaryOp("AND", result, guard)
        return result

    def map_column(self, base_column: str) -> str:
        """Translate a base-table column name to the view's output name."""
        return self.description.column_mapping[base_column.lower()]


def match_view(
    description: ViewDescription,
    table_name: str,
    required_columns: Set[str],
    query_conjuncts: List[ast.Expression],
) -> Optional[ViewMatch]:
    """Try to serve a table reference from a view.

    ``required_columns`` are lowercase base-table column names needed
    anywhere in the query (output or predicates). ``query_conjuncts`` are
    the single-table conjuncts the query applies to this reference.
    """
    if description.base_table.lower() != table_name.lower():
        return None
    if description.opaque_predicate:
        return None
    if not required_columns.issubset(description.column_mapping.keys()):
        return None
    # Columns used by view conjuncts must exist in the view output too,
    # otherwise the residual predicate could not be applied... actually
    # residuals are the *query's* conjuncts, whose columns are in
    # required_columns already. Nothing further to check there.

    query_comparisons = [
        comparison
        for comparison in (normalize_comparison(conjunct) for conjunct in query_conjuncts)
        if comparison is not None
    ]

    guards: List[Tuple[ast.Expression, str]] = []
    for view_conjunct in description.conjuncts:
        outcome = implies(query_comparisons, view_conjunct)
        if not outcome.implied:
            return None
        if outcome.guard is not None:
            guards.append((outcome.guard, view_conjunct.column.name))

    remainder = _remainder_predicate(description, query_conjuncts)
    return ViewMatch(description=description, guards=guards, remainder=remainder)


def _remainder_predicate(
    description: ViewDescription, query_conjuncts: List[ast.Expression]
) -> Optional[ast.Expression]:
    """Predicate selecting required rows NOT covered by the view.

    Only defined for single-conjunct views (negating a conjunction would
    introduce disjunctions the simple matcher does not track). The result
    is ``NOT(view_conjunct) AND query_conjuncts``.
    """
    if len(description.conjuncts) != 1:
        return None
    view_conjunct = description.conjuncts[0]
    inverse = {"=": "<>", "<>": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}
    negated = ast.BinaryOp(
        inverse[view_conjunct.op],
        view_conjunct.column,
        ast.Literal(view_conjunct.constant),
    )
    result: ast.Expression = negated
    for conjunct in query_conjuncts:
        result = ast.BinaryOp("AND", result, conjunct)
    return result


class ViewMatcher:
    """Matches table references against all local materialized views."""

    def __init__(self, catalog, schema_columns_fn):
        """``schema_columns_fn(table_name) -> List[str]`` supplies base
        column names for Star expansion."""
        self.catalog = catalog
        self._schema_columns_fn = schema_columns_fn
        self._descriptions: Optional[List[ViewDescription]] = None

    def invalidate(self) -> None:
        """Drop the analyzed-view cache (after DDL)."""
        self._descriptions = None

    def descriptions(self) -> List[ViewDescription]:
        if self._descriptions is None:
            result = []
            for view in self.catalog.materialized_views():
                base_columns: List[str] = []
                if isinstance(view.select.from_clause, ast.TableName):
                    try:
                        base_columns = self._schema_columns_fn(
                            view.select.from_clause.object_name
                        )
                    except Exception:
                        base_columns = []
                description = describe_view(view, base_columns)
                if description is not None:
                    result.append(description)
            self._descriptions = result
        return self._descriptions

    def matches(
        self,
        table_name: str,
        required_columns: Set[str],
        query_conjuncts: List[ast.Expression],
    ) -> List[ViewMatch]:
        """All views able to serve the reference, unconditional first."""
        found = []
        for description in self.descriptions():
            match = match_view(description, table_name, required_columns, query_conjuncts)
            if match is not None:
                found.append(match)
        found.sort(key=lambda match: len(match.guards))
        return found
