"""E7 — vectorized batch execution vs row-at-a-time Volcano iteration.

Two gates for the batch execution mode (``REPRO_BATCH_EXEC``):

* the scan+filter+aggregate microbenchmark (bestseller/search-shaped:
  one big table, a selective predicate with a LIKE, GROUP BY with
  COUNT/SUM/AVG) must run **at least 2x faster** in batch mode than in
  row mode, with identical result rows;
* the **full TPC-W mix** (Browsing, Shopping, Ordering) must return
  identical per-statement results in both modes, with checked plans on —
  so the batch kernels are held to scalar semantics by the actual
  workload, not just by unit tests.

Timing uses best-of-N-rounds wall time on a warmed plan cache, so the
comparison isolates execution (both modes share parse/plan/kernel
caches).
"""

from __future__ import annotations

import os
import random
import time
from typing import Dict, List

from benchmarks.conftest import emit
from repro.engine import Server
from repro.mtcache.odbc import OdbcSourceRegistry
from repro.tpcw import MIXES, TPCWApplication, TPCWConfig, build_backend, enable_caching

#: Microbench scale: enough rows that per-row interpretation dominates.
MICRO_ROWS = 24_000

MICRO_QUERY = (
    "SELECT status, COUNT(*), SUM(total), AVG(total) "
    "FROM orders WHERE total > @t AND status LIKE 'OP%' GROUP BY status"
)
MICRO_PARAMS = {"t": 100.0}


def _build_micro_server() -> Server:
    server = Server("vecbench", observability=False, checked_plans=True)
    server.create_database("shop")
    server.execute(
        "CREATE TABLE orders (oid INT PRIMARY KEY, o_cid INT, "
        "total FLOAT, status VARCHAR(10))"
    )
    database = server.database("shop")
    database.bulk_load(
        "orders",
        [
            (i, i % 997, round(i * 1.5, 2), "OPEN" if i % 3 else "SHIPPED")
            for i in range(1, MICRO_ROWS + 1)
        ],
    )
    database.analyze_all()
    return server


def _time_mode(server: Server, batch: bool, repetitions: int = 15, rounds: int = 3) -> float:
    """Best-of-rounds mean seconds per statement in the given mode."""
    server.batch_exec = batch
    server.execute(MICRO_QUERY, params=MICRO_PARAMS)  # warm plan + kernels
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        for _ in range(repetitions):
            server.execute(MICRO_QUERY, params=MICRO_PARAMS)
        best = min(best, time.perf_counter() - started)
    return best / repetitions


def test_bench_vectorized_speedup(benchmark, capsys, bench_recorder):
    server = _build_micro_server()

    server.batch_exec = False
    row_rows = server.execute(MICRO_QUERY, params=MICRO_PARAMS).rows
    server.batch_exec = True
    batch_rows = server.execute(MICRO_QUERY, params=MICRO_PARAMS).rows
    assert batch_rows == row_rows, "batch mode must return identical rows"
    assert row_rows, "microbench query must produce rows"

    row_seconds = _time_mode(server, batch=False)
    batch_seconds = _time_mode(server, batch=True)
    speedup = row_seconds / batch_seconds

    emit(
        capsys,
        "E7: vectorized batch execution (scan+filter+aggregate)",
        [
            f"rows scanned        {MICRO_ROWS:10,d}",
            f"row mode            {row_seconds * 1e3:10.2f} ms/stmt",
            f"batch mode          {batch_seconds * 1e3:10.2f} ms/stmt",
            f"speedup             {speedup:10.2f}x  (gate: >= 2.0x)",
        ],
    )
    bench_recorder.record(
        "vectorized_micro",
        rows=MICRO_ROWS,
        row_ms_per_stmt=round(row_seconds * 1e3, 3),
        batch_ms_per_stmt=round(batch_seconds * 1e3, 3),
        speedup=round(speedup, 3),
    )
    assert speedup >= 2.0, (
        f"batch execution must be at least 2x faster on the "
        f"scan+filter+aggregate microbench, measured {speedup:.2f}x"
    )

    server.batch_exec = True
    benchmark(lambda: server.execute(MICRO_QUERY, params=MICRO_PARAMS))


# -- full TPC-W mix identity --------------------------------------------------

_MIX_NAMES = ("Browsing", "Shopping", "Ordering")
_MIX_CONFIG = dict(num_items=60, num_ebs=10)
_INTERACTIONS_PER_MIX = 60


def _mix_traces(batch_on: bool) -> Dict[str, List[List[tuple]]]:
    """Run all three TPC-W mixes, capturing every statement's result rows.

    The capture hooks ``Server.execute_statement`` at class level, so it
    sees every statement on every server — the cache's local executions
    *and* what the backend runs for forwarded/remote work. Identical
    traces therefore mean the two modes agree statement-for-statement
    across the whole deployment, not just at the application boundary.
    """
    saved_env = {
        name: os.environ.get(name)
        for name in ("REPRO_BATCH_EXEC", "REPRO_CHECKED_PLANS")
    }
    os.environ["REPRO_BATCH_EXEC"] = "1" if batch_on else "0"
    os.environ["REPRO_CHECKED_PLANS"] = "1"
    captured: List[List[tuple]] = []
    original = Server.execute_statement

    def capturing(self, statement, params=None, session=None, database=None):
        result = original(
            self, statement, params=params, session=session, database=database
        )
        captured.append([tuple(row) for row in result.rows])
        return result

    Server.execute_statement = capturing
    try:
        backend, config = build_backend(TPCWConfig(**_MIX_CONFIG))
        deployment, caches = enable_caching(backend, ["cache1"], config)
        assert backend.batch_exec is batch_on
        assert caches[0].server.batch_exec is batch_on
        assert backend.checked_plans and caches[0].server.checked_plans
        registry = OdbcSourceRegistry()
        registry.register("tpcw", caches[0].server, "tpcw")
        application = TPCWApplication(registry.connect("tpcw"), config)
        traces: Dict[str, List[List[tuple]]] = {}
        for seed, mix_name in enumerate(_MIX_NAMES, start=11):
            rng = random.Random(seed)
            sessions = [application.new_session() for _ in range(4)]
            start = len(captured)
            mix = MIXES[mix_name]
            for step in range(_INTERACTIONS_PER_MIX):
                application.run(mix.sample(rng), sessions[step % 4])
                deployment.tick(0.02)
            deployment.sync()
            traces[mix_name] = captured[start:]
        return traces
    finally:
        Server.execute_statement = original
        for name, value in saved_env.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


def test_bench_tpcw_mix_identical_across_modes(capsys, bench_recorder):
    row_traces = _mix_traces(batch_on=False)
    batch_traces = _mix_traces(batch_on=True)
    lines = []
    for mix_name in _MIX_NAMES:
        row_trace = row_traces[mix_name]
        batch_trace = batch_traces[mix_name]
        assert len(row_trace) == len(batch_trace), (
            f"{mix_name}: modes executed different statement counts "
            f"({len(row_trace)} vs {len(batch_trace)})"
        )
        for position, (row_result, batch_result) in enumerate(
            zip(row_trace, batch_trace)
        ):
            assert row_result == batch_result, (
                f"{mix_name}: statement {position} returned different rows "
                "in batch mode"
            )
        lines.append(
            f"{mix_name:10s} {len(row_trace):5d} statements, "
            f"{sum(len(result) for result in row_trace):6d} rows — identical"
        )
        bench_recorder.record(
            "tpcw_mix_identity",
            **{f"{mix_name.lower()}_statements": len(row_trace)},
        )
    emit(capsys, "E7: TPC-W mix identity across execution modes", lines)
