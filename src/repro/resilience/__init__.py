"""Resilience primitives: retries, circuit breakers, failover routing.

The paper's availability story (§1: "the application keeps running when a
cache goes down") is implemented here in three layers:

* :class:`RetryPolicy` — bounded exponential backoff, in *virtual* time,
  for transient linked-server failures (``repro.errors.is_transient``).
* :class:`CircuitBreaker` — per-link closed→open→half-open state machine
  that converts a down target from slow retry storms into fast failures,
  exported as the ``resilience.breaker_state`` gauge.
* :class:`FailoverRouter` — an application-tier connection wrapper that
  reroutes statements from a failed cache to the backend and probes its
  way back after recovery.

PR 9 adds the overload-protection layer on top:

* :class:`AdmissionController` — token-bucket + virtual-bounded-queue
  gate (CoDel-style adaptive shedding) on server execute paths and pool
  checkout, rejecting with transient
  :class:`~repro.errors.OverloadError` instead of queuing unboundedly.
* :class:`Deadline` / :func:`deadline_scope` — an end-to-end budget
  carried by a context variable from ``Cursor.execute(..., timeout=)``
  down through routers, caches and links; every hop checks the
  remaining budget before spending it.
* :class:`RetryBudget` — a per-link token bucket capping retries to
  ~10% of live traffic, so backoff loops cannot amplify a brownout.

Like ``repro.faults``, this package never reads the wall clock; backoff
"sleeps" advance the injected :class:`~repro.common.clock.SimulatedClock`
(selflint's ``resilience-determinism`` rule enforces it), and the
overload/deadline modules additionally may not grow unbounded state
(selflint's ``overload-bounded`` rule).
"""

from repro.resilience.breaker import CircuitBreaker
from repro.resilience.deadline import (
    Deadline,
    check_deadline,
    current_deadline,
    deadline_scope,
    remaining_budget,
)
from repro.resilience.failover import FailoverRouter
from repro.resilience.overload import AdmissionController, RetryBudget
from repro.resilience.retry import RetryPolicy

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "Deadline",
    "FailoverRouter",
    "RetryBudget",
    "RetryPolicy",
    "check_deadline",
    "current_deadline",
    "deadline_scope",
    "remaining_budget",
]
