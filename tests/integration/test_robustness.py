"""Failure injection and robustness tests across subsystems."""

import pytest

from repro import MTCacheDeployment, Server
from repro.errors import CatalogError, ConstraintError, ExecutionError
from repro.replication.agent import DistributionAgent

from tests.conftest import make_shop_backend


@pytest.fixture
def env():
    backend = make_shop_backend(customers=60, orders=120)
    deployment = MTCacheDeployment(backend, "shop")
    cache = deployment.add_cache_server("cache1")
    cache.create_cached_view(
        "CREATE CACHED VIEW vcust AS SELECT cid, cname, segment FROM customer"
    )
    return backend, deployment, cache


class TestForwardedFailures:
    def test_remote_constraint_violation_propagates(self, env):
        backend, _, cache = env
        with pytest.raises(ConstraintError):
            cache.execute("INSERT INTO customer VALUES (1, 'dup', 'a', 'base')")
        # Backend state unchanged.
        assert (
            backend.execute("SELECT cname FROM customer WHERE cid = 1", database="shop").scalar
            == "cust1"
        )

    def test_remote_failed_statement_is_atomic(self, env):
        backend, _, cache = env
        with pytest.raises(ConstraintError):
            cache.execute(
                "INSERT INTO customer VALUES (500, 'ok', 'a', 'base'), (1, 'dup', 'a', 'base')"
            )
        assert (
            backend.execute(
                "SELECT COUNT(*) FROM customer WHERE cid = 500", database="shop"
            ).scalar
            == 0
        )

    def test_unknown_procedure_without_backend(self):
        plain = Server("lonely")
        plain.create_database("db")
        with pytest.raises(CatalogError, match="no procedure"):
            plain.execute("EXEC ghost")

    def test_unknown_procedure_forwards_and_fails_remotely(self, env):
        backend, _, cache = env
        with pytest.raises(CatalogError):
            cache.execute("EXEC definitelyMissing")


class TestReplicationRobustness:
    def test_agent_poll_is_idempotent(self, env):
        backend, deployment, cache = env
        backend.execute(
            "UPDATE customer SET cname = 'once' WHERE cid = 5", database="shop"
        )
        deployment.sync()
        deployment.sync()
        deployment.sync()
        rows = cache.execute("SELECT COUNT(*) FROM vcust WHERE cname = 'once'").scalar
        assert rows == 1
        assert cache.execute("SELECT COUNT(*) FROM vcust").scalar == 60

    def test_agent_restart_resumes_from_watermark(self, env):
        backend, deployment, cache = env
        backend.execute(
            "UPDATE customer SET cname = 'pre' WHERE cid = 2", database="shop"
        )
        deployment.sync()

        # Simulate an agent crash/restart: replace the agent object; the
        # subscription's watermark survives, so nothing re-applies and
        # nothing is lost.
        subscription = cache.subscriptions["vcust"]
        old_agent = cache.agents["vcust"]
        deployment.distributor.agents.remove(old_agent)
        new_agent = DistributionAgent(subscription, deployment.distributor, 0.25)
        deployment.distributor.register_agent(new_agent)
        cache.agents["vcust"] = new_agent

        backend.execute(
            "UPDATE customer SET cname = 'post' WHERE cid = 3", database="shop"
        )
        deployment.sync()
        assert cache.execute("SELECT cname FROM vcust WHERE cid = 2").scalar == "pre"
        assert cache.execute("SELECT cname FROM vcust WHERE cid = 3").scalar == "post"
        assert cache.execute("SELECT COUNT(*) FROM vcust").scalar == 60

    def test_late_subscriber_gets_snapshot_plus_stream(self, env):
        backend, deployment, cache = env
        backend.execute(
            "UPDATE customer SET cname = 'early' WHERE cid = 7", database="shop"
        )
        deployment.sync()
        deployment.distributor.cleanup()  # early commands are gone

        cache2 = deployment.add_cache_server("late_cache")
        cache2.create_cached_view(
            "CREATE CACHED VIEW vcust AS SELECT cid, cname, segment FROM customer"
        )
        # The snapshot covers the pre-subscription history...
        assert cache2.execute("SELECT cname FROM vcust WHERE cid = 7").scalar == "early"
        # ...and the stream covers what follows.
        backend.execute(
            "UPDATE customer SET cname = 'later' WHERE cid = 7", database="shop"
        )
        deployment.sync()
        assert cache2.execute("SELECT cname FROM vcust WHERE cid = 7").scalar == "later"
        assert cache.execute("SELECT cname FROM vcust WHERE cid = 7").scalar == "later"

    def test_three_caches_converge(self, env):
        backend, deployment, first = env
        caches = [first]
        for name in ("c2", "c3"):
            extra = deployment.add_cache_server(name)
            extra.create_cached_view(
                "CREATE CACHED VIEW vcust AS SELECT cid, cname, segment FROM customer"
            )
            caches.append(extra)
        for step in range(10):
            backend.execute(
                f"UPDATE customer SET segment = 'w{step}' WHERE cid = {step + 1}",
                database="shop",
            )
        deployment.sync()
        reference = backend.execute(
            "SELECT cid, segment FROM customer ORDER BY cid", database="shop"
        ).rows
        for cache in caches:
            assert (
                cache.execute("SELECT cid, segment FROM vcust ORDER BY cid").rows
                == reference
            )


class TestPlanInvalidation:
    def test_new_index_invalidates_cached_plans(self, env):
        backend, _, cache = env
        sql = "SELECT cid FROM vcust WHERE cname = 'cust9'"
        before = cache.plan(sql)
        assert "SeqScan" in before.explain()
        # Add an index on the view's backing table via DDL on the cache.
        cache.execute("CREATE INDEX ix_vcust_name ON vcust (cname)")
        after = cache.plan(sql)
        assert after is not before
        assert "ix_vcust_name" in after.explain()

    def test_dropping_cached_view_reroutes_to_backend(self, env):
        backend, _, cache = env
        sql = "SELECT cname FROM customer WHERE cid = 4"
        assert not cache.plan(sql).uses_remote
        cache.execute("DROP VIEW vcust")
        assert cache.plan(sql).uses_remote
        assert cache.execute(sql).rows == [("cust4",)]


class TestEngineEdgeCases:
    def test_query_against_missing_table(self, env):
        _, _, cache = env
        from repro.errors import BindError

        with pytest.raises((CatalogError, BindError)):
            cache.execute("SELECT x FROM no_such_table")

    def test_unknown_column(self, env):
        _, _, cache = env
        from repro.errors import BindError

        with pytest.raises(BindError):
            cache.execute("SELECT nonexistent FROM customer")

    def test_while_loop_bound(self):
        server = Server("s")
        server.create_database("db")
        server.execute(
            """
            CREATE PROCEDURE forever AS
            BEGIN
                DECLARE @x INT = 1
                WHILE @x > 0
                    SET @x = @x + 1
            END
            """
        )
        with pytest.raises(ExecutionError, match="iteration bound"):
            server.execute("EXEC forever")

    def test_empty_batch_is_noop(self, env):
        _, _, cache = env
        result = cache.execute("   -- just a comment\n")
        assert result.rows == []
