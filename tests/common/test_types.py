"""Unit tests for the SQL type system."""

import datetime

import pytest

from repro.common.types import (
    BIGINT,
    BOOLEAN,
    CHAR,
    DATE,
    DATETIME,
    FLOAT,
    INT,
    NUMERIC,
    VARCHAR,
    coerce_value,
    common_type,
    is_numeric,
    sql_literal,
    TypeKind,
)
from repro.errors import TypeCheckError


class TestCoercion:
    def test_null_passes_any_type(self):
        for sql_type in (INT, FLOAT, VARCHAR(10), DATE, DATETIME, BOOLEAN):
            assert coerce_value(None, sql_type) is None

    def test_int_from_int(self):
        assert coerce_value(42, INT) == 42

    def test_int_from_integral_float(self):
        assert coerce_value(42.0, INT) == 42

    def test_int_from_string(self):
        assert coerce_value("17", BIGINT) == 17

    def test_int_rejects_garbage_string(self):
        with pytest.raises(TypeCheckError):
            coerce_value("abc", INT)

    def test_float_from_int(self):
        assert coerce_value(3, FLOAT) == 3.0
        assert isinstance(coerce_value(3, FLOAT), float)

    def test_numeric_from_string(self):
        assert coerce_value("2.5", NUMERIC) == 2.5

    def test_varchar_truncates_to_declared_length(self):
        assert coerce_value("abcdef", VARCHAR(3)) == "abc"

    def test_varchar_unbounded_keeps_value(self):
        assert coerce_value("abcdef", VARCHAR(None)) == "abcdef"

    def test_date_from_iso_string(self):
        assert coerce_value("2003-06-09", DATE) == datetime.date(2003, 6, 9)

    def test_date_from_datetime(self):
        value = datetime.datetime(2003, 6, 9, 12, 30)
        assert coerce_value(value, DATE) == datetime.date(2003, 6, 9)

    def test_datetime_from_date(self):
        value = datetime.date(2003, 6, 9)
        assert coerce_value(value, DATETIME) == datetime.datetime(2003, 6, 9)

    def test_datetime_from_iso_string(self):
        assert coerce_value("2003-06-09 10:00:00", DATETIME) == datetime.datetime(
            2003, 6, 9, 10
        )

    def test_boolean_from_int(self):
        assert coerce_value(1, BOOLEAN) is True
        assert coerce_value(0, BOOLEAN) is False

    def test_bool_to_int(self):
        assert coerce_value(True, INT) == 1


class TestCommonType:
    def test_same_kind(self):
        assert common_type(INT, INT).kind is TypeKind.INT

    def test_numeric_widening(self):
        assert common_type(INT, FLOAT).kind is TypeKind.FLOAT
        assert common_type(INT, BIGINT).kind is TypeKind.BIGINT

    def test_string_widening_takes_max_length(self):
        merged = common_type(VARCHAR(5), VARCHAR(9))
        assert merged.length == 9

    def test_temporal_widens_to_datetime(self):
        assert common_type(DATE, DATETIME).kind is TypeKind.DATETIME

    def test_incompatible_raises(self):
        with pytest.raises(TypeCheckError):
            common_type(INT, VARCHAR(5))


class TestLiterals:
    def test_null(self):
        assert sql_literal(None) == "NULL"

    def test_string_escaping(self):
        assert sql_literal("O'Brien") == "'O''Brien'"

    def test_numbers(self):
        assert sql_literal(42) == "42"
        assert sql_literal(2.5) == "2.5"

    def test_boolean_renders_as_bit(self):
        assert sql_literal(True) == "1"
        assert sql_literal(False) == "0"

    def test_date(self):
        assert sql_literal(datetime.date(2003, 6, 9)) == "'2003-06-09'"

    def test_datetime_space_separator(self):
        text = sql_literal(datetime.datetime(2003, 6, 9, 12, 0, 1))
        assert text == "'2003-06-09 12:00:01'"


class TestWidths:
    def test_fixed_widths(self):
        assert INT.width == 4
        assert BIGINT.width == 8

    def test_varchar_width_assumes_half_full(self):
        assert VARCHAR(40).width == 22

    def test_char_width_is_declared(self):
        assert CHAR(10).width == 10

    def test_is_numeric(self):
        assert is_numeric(INT)
        assert is_numeric(FLOAT)
        assert not is_numeric(VARCHAR(5))
