"""Scatter-gather decomposition: per-shard rewrite and result re-merge.

A scan over a partitioned table decomposes into per-shard scans whose
results union back together (UNION ALL semantics). Two rewrites make the
per-shard statements cheap and the merge exact:

* the shard's slice conjunct (``key BETWEEN lo AND hi``) is ANDed into
  each per-shard WHERE. The query's own predicate rarely *implies* the
  slice, so without this conjunct the optimizer on each shard would have
  to treat its slice view as conditional and plan remote fallbacks; with
  it, predicate implication holds unconditionally and the scan runs
  local. It also keeps the merge exact during rebalancing: the conjunct
  describes the slice by *value*, so a shard (or the backend, after a
  failover) returns exactly those rows no matter where the router
  believed the slice lived.
* ORDER BY columns missing from the projection are appended to the
  select list, so the gather side can re-sort the concatenation; TOP is
  kept per shard (each shard's local top-k is a superset of its members
  of the global top-k) and re-applied after the merge, and the appended
  columns are stripped before returning rows to the application.

The merge sorts with the same stable multi-pass the engine's Sort
operator uses, so sharded and unsharded executions agree even on tied
keys as long as shard order matches input order — and the TPC-W search
procedures all tie-break on the unique item title anyway.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sharding.policy import TablePartition
from repro.sql import ast
from repro.sql.formatter import format_statement


@dataclass(frozen=True)
class ScatterQuery:
    """A scan decomposed for scatter-gather execution."""

    select: ast.Select  # projection already extended with sort columns
    partition: TablePartition
    key_qualifier: Optional[str]  # alias of the partitioned table, if any
    sort_keys: Tuple[Tuple[int, bool], ...]  # (column position, descending)
    top: Optional[int]
    width: int  # the application-visible projection width

    def shard_sql(self, low: int, high: int) -> str:
        """The per-shard statement for one slice ``[low, high]``."""
        conjunct = ast.Between(
            operand=ast.ColumnRef(
                name=self.partition.key_column, qualifier=self.key_qualifier
            ),
            low=ast.Literal(low),
            high=ast.Literal(high),
        )
        where = (
            conjunct
            if self.select.where is None
            else ast.BinaryOp(op="AND", left=self.select.where, right=conjunct)
        )
        return format_statement(replace(self.select, where=where))

    def merge(self, shard_rows: Sequence[Sequence[Tuple]]) -> List[Tuple]:
        """Re-merge per-shard row sets: sort, TOP, strip appended columns."""
        rows: List[Tuple] = [tuple(row) for rows in shard_rows for row in rows]
        # Stable multi-pass sort, least-significant key first — the same
        # strategy as the engine's Sort, so ties keep concatenation order.
        for position, descending in reversed(self.sort_keys):
            rows.sort(key=lambda row: _orderable(row[position]), reverse=descending)
        if self.top is not None:
            rows = rows[: self.top]
        if self.width < len(self.select.items):
            rows = [row[: self.width] for row in rows]
        return rows


def _orderable(value):
    """Sort key tolerating NULLs (NULLs first ascending, as the engine sorts)."""
    return (value is not None, value)


def _table_names(ref: Optional[ast.TableRef]) -> Optional[List[ast.TableName]]:
    """Flatten a FROM clause to TableNames; None when not flattenable."""
    if ref is None:
        return []
    if isinstance(ref, ast.TableName):
        return [ref]
    if isinstance(ref, ast.JoinRef):
        if ref.kind.upper() not in ("INNER", "CROSS"):
            return None
        left = _table_names(ref.left)
        right = _table_names(ref.right)
        if left is None or right is None:
            return None
        return left + right
    return None  # derived tables are not scatter-decomposable


def _has_subquery(select: ast.Select) -> bool:
    for expression in ast.walk_statement_expressions(select):
        if isinstance(
            expression, (ast.InSubquery, ast.Exists, ast.ScalarSubquery)
        ):
            return True
    return False


def _has_aggregate(select: ast.Select) -> bool:
    """Bare aggregates (COUNT(*) with no GROUP BY) must not scatter:
    concatenating per-shard aggregates is not the global aggregate."""
    for expression in ast.walk_statement_expressions(select):
        if (
            isinstance(expression, ast.FuncCall)
            and expression.name.upper() in ast.AGGREGATE_FUNCTIONS
        ):
            return True
    return False


def _match_item(
    items: Sequence[ast.SelectItem], expression: ast.Expression
) -> Optional[int]:
    """Position of a select item the ORDER BY expression refers to."""
    if not isinstance(expression, ast.ColumnRef):
        return None
    for position, item in enumerate(items):
        if item.alias and item.alias.lower() == expression.name.lower():
            return position
        if isinstance(item.expression, ast.ColumnRef):
            column = item.expression
            if column.name.lower() != expression.name.lower():
                continue
            if (
                expression.qualifier is None
                or column.qualifier is None
                or expression.qualifier.lower() == column.qualifier.lower()
            ):
                return position
    return None


def decompose(
    select: ast.Statement, partitions: Dict[str, TablePartition]
) -> Optional[ScatterQuery]:
    """Decompose a SELECT for scatter-gather, or None when not possible.

    Decomposable means: a select-project-join over exactly one
    partitioned table (plus any broadcast/replicated tables), no
    aggregation or DISTINCT, no subqueries, an optional literal TOP, and
    an ORDER BY of plain column references. Anything else routes to the
    backend instead — correctness never depends on decomposing.
    """
    if not isinstance(select, ast.Select):
        return None
    if select.group_by or select.having is not None or select.distinct:
        return None
    if select.freshness is not None:
        return None
    tables = _table_names(select.from_clause)
    if not tables:
        return None
    partitioned = [
        table for table in tables if table.object_name.lower() in partitions
    ]
    if len(partitioned) != 1:
        return None
    if _has_subquery(select) or _has_aggregate(select):
        return None
    for item in select.items:
        if isinstance(item.expression, ast.Star) or item.target_parameter:
            return None
    top: Optional[int] = None
    if select.top is not None:
        if not isinstance(select.top, ast.Literal):
            return None
        top = int(select.top.value)

    items = list(select.items)
    width = len(items)
    sort_keys: List[Tuple[int, bool]] = []
    for order in select.order_by:
        position = _match_item(items, order.expression)
        if position is None:
            if not isinstance(order.expression, ast.ColumnRef):
                return None
            items.append(ast.SelectItem(expression=order.expression))
            position = len(items) - 1
        sort_keys.append((position, order.descending))

    partition = partitions[partitioned[0].object_name.lower()]
    return ScatterQuery(
        select=replace(select, items=tuple(items)),
        partition=partition,
        key_qualifier=partitioned[0].alias,
        sort_keys=tuple(sort_keys),
        top=top,
        width=width,
    )
