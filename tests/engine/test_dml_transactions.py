"""DML execution and transaction semantics."""

import pytest

from repro import Server, Session
from repro.errors import CatalogError, ConstraintError, TransactionError
from repro.storage.wal import LogRecordType


@pytest.fixture
def server():
    s = Server("s")
    s.create_database("db")
    s.execute(
        "CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(20) NOT NULL, score FLOAT)"
    )
    return s


class TestInsert:
    def test_insert_values(self, server):
        result = server.execute("INSERT INTO t VALUES (1, 'a', 1.5), (2, 'b', NULL)")
        assert result.rowcount == 2
        assert server.execute("SELECT COUNT(*) FROM t").scalar == 2

    def test_insert_named_columns_defaults_null(self, server):
        server.execute("INSERT INTO t (id, name) VALUES (1, 'a')")
        assert server.execute("SELECT score FROM t WHERE id = 1").scalar is None

    def test_insert_select(self, server):
        server.execute("INSERT INTO t VALUES (1, 'a', 1.0)")
        server.execute("INSERT INTO t (id, name, score) SELECT id + 100, name, score FROM t")
        assert server.execute("SELECT COUNT(*) FROM t").scalar == 2

    def test_insert_pk_conflict(self, server):
        server.execute("INSERT INTO t VALUES (1, 'a', 1.0)")
        with pytest.raises(ConstraintError):
            server.execute("INSERT INTO t VALUES (1, 'dup', 1.0)")

    def test_insert_with_params(self, server):
        server.execute("INSERT INTO t VALUES (@i, @n, @s)", params={"i": 9, "n": "p", "s": 2.0})
        assert server.execute("SELECT name FROM t WHERE id = 9").scalar == "p"

    def test_insert_expression_values(self, server):
        server.execute("INSERT INTO t VALUES (1 + 1, UPPER('ab'), 2 * 1.5)")
        assert server.execute("SELECT name, score FROM t WHERE id = 2").rows == [("AB", 3.0)]


class TestUpdateDelete:
    def seed(self, server, n=20):
        for i in range(1, n + 1):
            server.execute(f"INSERT INTO t VALUES ({i}, 'n{i}', {float(i)})")

    def test_update_with_predicate(self, server):
        self.seed(server)
        result = server.execute("UPDATE t SET score = score + 100 WHERE id <= 5")
        assert result.rowcount == 5
        assert server.execute("SELECT score FROM t WHERE id = 3").scalar == 103.0

    def test_update_references_old_row_values(self, server):
        self.seed(server, 2)
        server.execute("UPDATE t SET score = id * 10")
        assert server.execute("SELECT score FROM t WHERE id = 2").scalar == 20.0

    def test_update_via_pk_index(self, server):
        self.seed(server)
        result = server.execute("UPDATE t SET name = 'x' WHERE id = 7")
        assert result.rowcount == 1

    def test_delete_with_predicate(self, server):
        self.seed(server)
        result = server.execute("DELETE FROM t WHERE id > 15")
        assert result.rowcount == 5
        assert server.execute("SELECT COUNT(*) FROM t").scalar == 15

    def test_delete_all(self, server):
        self.seed(server, 3)
        assert server.execute("DELETE FROM t").rowcount == 3

    def test_update_unknown_table(self, server):
        with pytest.raises(CatalogError):
            server.execute("UPDATE missing SET a = 1")


class TestTransactions:
    def test_commit_persists(self, server):
        session = Session()
        server.execute("BEGIN TRANSACTION", session=session)
        server.execute("INSERT INTO t VALUES (1, 'a', 1.0)", session=session)
        server.execute("COMMIT", session=session)
        assert server.execute("SELECT COUNT(*) FROM t").scalar == 1

    def test_rollback_undoes_everything(self, server):
        session = Session()
        server.execute("INSERT INTO t VALUES (1, 'a', 1.0)")
        server.execute("BEGIN TRANSACTION", session=session)
        server.execute("INSERT INTO t VALUES (2, 'b', 2.0)", session=session)
        server.execute("UPDATE t SET name = 'changed' WHERE id = 1", session=session)
        server.execute("DELETE FROM t WHERE id = 1", session=session)
        server.execute("ROLLBACK", session=session)
        assert server.execute("SELECT COUNT(*) FROM t").scalar == 1
        assert server.execute("SELECT name FROM t WHERE id = 1").scalar == "a"

    def test_double_begin_rejected(self, server):
        session = Session()
        server.execute("BEGIN TRANSACTION", session=session)
        with pytest.raises(TransactionError):
            server.execute("BEGIN TRANSACTION", session=session)
        # The first transaction is still open (and holds the database
        # latch exclusively); end it so the latch doesn't leak.
        server.execute("ROLLBACK", session=session)

    def test_commit_without_begin_rejected(self, server):
        with pytest.raises(TransactionError):
            server.execute("COMMIT")

    def test_autocommit_failure_rolls_back(self, server):
        server.execute("INSERT INTO t VALUES (1, 'a', 1.0)")
        with pytest.raises(ConstraintError):
            server.execute("INSERT INTO t VALUES (2, 'ok', 1.0), (1, 'dup', 1.0)")
        # The whole statement must have rolled back, including row 2.
        assert server.execute("SELECT COUNT(*) FROM t").scalar == 1

    def test_wal_records_commits_with_timestamps(self, server):
        server.clock.advance(7.5)
        server.execute("INSERT INTO t VALUES (1, 'a', 1.0)")
        wal = server.database("db").wal
        commits = [r for r in wal.records() if r.record_type is LogRecordType.COMMIT]
        assert commits and commits[-1].timestamp == 7.5

    def test_wal_contains_full_row_images(self, server):
        server.execute("INSERT INTO t VALUES (1, 'a', 1.0)")
        server.execute("UPDATE t SET score = 9.0 WHERE id = 1")
        wal = server.database("db").wal
        updates = [r for r in wal.records() if r.record_type is LogRecordType.UPDATE]
        assert updates[0].old_row == (1, "a", 1.0)
        assert updates[0].new_row == (1, "a", 9.0)


class TestSessionVariables:
    def test_declare_set_select(self, server):
        session = Session()
        server.execute("DECLARE @x INT = 5", session=session)
        server.execute("SET @x = @x + 1", session=session)
        result = server.execute("SELECT @x + 10 AS v", session=session)
        assert result.scalar == 16

    def test_variables_usable_in_dml(self, server):
        session = Session()
        server.execute("DECLARE @i INT = 3", session=session)
        server.execute("INSERT INTO t VALUES (@i, 'v', NULL)", session=session)
        assert server.execute("SELECT COUNT(*) FROM t WHERE id = 3").scalar == 1

    def test_print_collects_messages(self, server):
        result = server.execute("PRINT 'hello'")
        assert result.messages == ["hello"]
