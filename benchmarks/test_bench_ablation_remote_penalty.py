"""Ablation — the remote-cost multiplier (paper §5).

"We modified cost estimation to favor local execution over execution on
the backend server. All cost estimates of remote operations are multiplied
by a small factor (greater than 1.0)."

Sweeping the factor shows the routing crossover: with no penalty (1.0) and
free transfer, borderline queries flow to the loaded backend; as the
penalty grows, they move onto the cache.
"""


from repro import MTCacheDeployment
from repro.optimizer.cost import CostModel

from tests.conftest import make_shop_backend
from benchmarks.conftest import emit

#: A borderline query: the view can answer it with a scan; the backend has
#: no better access path either.
QUERY = "SELECT caddress FROM customer WHERE cname = 'cust77'"


def build_cache(deployment, name, penalty):
    model = CostModel(
        remote_penalty=penalty, transfer_startup=0.0, transfer_per_byte=0.0
    )
    cache = deployment.add_cache_server(name, cost_model=model)
    cache.create_cached_view(
        f"CREATE CACHED VIEW v_{name} AS SELECT cid, cname, caddress FROM customer"
    )
    return cache


def test_bench_remote_penalty_sweep(benchmark, capsys):
    backend = make_shop_backend(customers=500, orders=500)
    deployment = MTCacheDeployment(backend, "shop")
    lines = [f"{'penalty':>8s} {'routed':>8s} {'est.cost':>10s}"]
    routing = {}
    for penalty in (0.5, 1.0, 1.3, 2.0, 4.0):
        cache = build_cache(deployment, f"p{str(penalty).replace('.', '_')}", penalty)
        planned = cache.plan(QUERY)
        where = "remote" if planned.uses_remote else "local"
        routing[penalty] = where
        lines.append(f"{penalty:8.1f} {where:>8s} {planned.estimated_cost:10.1f}")
    emit(capsys, "Ablation: remote-penalty sweep (borderline scan query)", lines)

    # Monotone crossover: once local, higher penalties stay local.
    order = [routing[p] for p in (0.5, 1.0, 1.3, 2.0, 4.0)]
    first_local = order.index("local") if "local" in order else len(order)
    assert all(choice == "local" for choice in order[first_local:])
    # A strongly discounted backend attracts the query; a strongly
    # penalized one repels it.
    assert routing[0.5] == "remote"
    assert routing[4.0] == "local"

    cache = build_cache(deployment, "bench", 1.3)
    benchmark(lambda: cache.execute(QUERY))
