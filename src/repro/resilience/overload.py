"""Admission control and retry budgets: the overload-protection core.

Two primitives, both deliberately built from *scalar* state only (no
queues, no lists — the ``overload-bounded`` selflint rule enforces it):
instead of holding excess requests in a real queue, the controller keeps
a token-bucket *debt* whose depth, divided by the service rate, is the
virtual queueing delay an admitted request would see. Shedding decisions
are made against that delay, CoDel-style:

* while the projected delay sits at or below ``queue_delay_target``, every
  request is admitted and the bucket simply drains;
* when the delay first exceeds the target, requests keep being admitted
  (into debt) for one ``interval`` — transient bursts ride through;
* if the delay is *still* above target after the interval, the controller
  sheds one request and shortens the next grace window by ``1/sqrt(n)``
  (CoDel's control law), so sustained overload sheds at an accelerating
  pace until the delay recovers;
* a hard bound (``hard_factor`` x target) always sheds, which is what
  keeps the virtual queue depth bounded no matter the offered load.

Shed requests fail fast with :class:`~repro.errors.OverloadError` —
transient, raised before any statement effects, so callers may degrade
(scatter slice to the backend, stale read from a cache) or retry later.

:class:`RetryBudget` is the companion guard on the retry path: each live
attempt deposits ``ratio`` of a token, each retry spends a whole one, so
retries can never exceed ~``ratio`` of live traffic during a brownout —
the classic retry-storm limiter.

All time is virtual; all state is O(1).
"""

from __future__ import annotations

import math
from typing import Any, Optional

from repro.common.locks import mutex
from repro.common.witness import LEVEL_LEAF, annotate_lock
from repro.errors import OverloadError


def _leaf_mutex(name: str):
    """A mutex pinned at LEAF level in the lock-witness hierarchy.

    Both gates here are consulted from deep inside query execution —
    admission from the server's execute paths, the retry budget from
    ``ServerLink._invoke`` while the caller still holds database latches
    and table locks — so their mutexes must sit *below* the engine's
    locks. Neither is ever held across a call out of this module, so
    LEAF is safe.
    """
    lock = mutex()
    if hasattr(lock, "_witness_class"):
        annotate_lock(lock, f"resilience.{name}", LEVEL_LEAF)
    return lock


class AdmissionController:
    """Token-bucket + virtual-bounded-queue admission gate.

    ``rate`` is the sustained admission rate (requests per virtual
    second), ``burst`` the bucket capacity. ``queue_delay_target`` is the
    CoDel target for the projected queueing delay; ``interval`` the grace
    window sustained overload gets before shedding starts.
    """

    def __init__(
        self,
        clock: Any,
        rate: float = 100.0,
        burst: float = 20.0,
        queue_delay_target: float = 0.1,
        interval: float = 0.5,
        hard_factor: float = 4.0,
        name: str = "server",
        registry: Optional[Any] = None,
    ):
        if rate <= 0:
            raise ValueError(f"admission rate must be > 0, not {rate}")
        self.clock = clock
        self.rate = float(rate)
        self.burst = float(burst)
        self.queue_delay_target = float(queue_delay_target)
        self.interval = float(interval)
        self.hard_factor = float(hard_factor)
        self.name = name
        self._mutex = _leaf_mutex(f"admission.{name}")
        self._tokens = self.burst
        self._refilled_at = clock.now()
        # CoDel episode state: when the projected delay first went above
        # target, and how many sheds the current episode has performed
        # (drives the 1/sqrt(n) shortening of the grace window).
        self._above_since: Optional[float] = None
        self._sheds_in_episode = 0
        self._next_shed_at: Optional[float] = None
        # Plain counters (always on) + optional registry instruments.
        self.admitted = 0
        self.shed = 0
        self._registry = registry
        if registry is not None:
            labels = {"gate": name}
            self._admitted_counter = registry.counter("overload.admitted", labels=labels)
            self._shed_counter = registry.counter("overload.shed", labels=labels)
            self._delay_gauge = registry.gauge("overload.queue_delay", labels=labels)
            self._depth_gauge = registry.gauge("overload.queue_depth", labels=labels)
        else:
            self._admitted_counter = None
            self._shed_counter = None
            self._delay_gauge = None
            self._depth_gauge = None

    # -- bucket mechanics --------------------------------------------------

    def _refill(self, now: float) -> None:
        elapsed = now - self._refilled_at
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._refilled_at = now

    @property
    def queue_depth(self) -> float:
        """The virtual queue depth in requests (the bucket's debt)."""
        return max(0.0, -self._tokens)

    def projected_delay(self) -> float:
        """The queueing delay the next admitted request would see."""
        with self._mutex:
            self._refill(self.clock.now())
            return max(0.0, (1.0 - self._tokens) / self.rate)

    # -- the gate ----------------------------------------------------------

    def try_admit(self) -> bool:
        """Admit or shed one request; False means shed."""
        with self._mutex:
            now = self.clock.now()
            self._refill(now)
            delay = max(0.0, (1.0 - self._tokens) / self.rate)
            decision = self._decide(now, delay)
            if decision:
                self._tokens -= 1.0
                self.admitted += 1
            else:
                self.shed += 1
            self._publish(delay)
            return decision

    def _decide(self, now: float, delay: float) -> bool:
        if delay <= self.queue_delay_target:
            # Under target: admit and close any overload episode.
            self._above_since = None
            self._sheds_in_episode = 0
            self._next_shed_at = None
            return True
        if delay > self.queue_delay_target * self.hard_factor:
            # Hard bound: the virtual queue may never grow past this,
            # regardless of where the episode's control law stands.
            return False
        if self._above_since is None:
            # First crossing: start the grace interval, admit into debt.
            self._above_since = now
            self._sheds_in_episode = 0
            self._next_shed_at = now + self.interval
            return True
        if self._next_shed_at is not None and now < self._next_shed_at:
            return True
        # Sustained overload: shed, and shorten the next window (CoDel).
        self._sheds_in_episode += 1
        self._next_shed_at = now + self.interval / math.sqrt(
            1 + self._sheds_in_episode
        )
        return False

    def _publish(self, delay: float) -> None:
        if self._delay_gauge is not None:
            self._delay_gauge.set(delay)
        if self._depth_gauge is not None:
            self._depth_gauge.set(self.queue_depth)

    def admit(self, what: str = "request") -> None:
        """Admit one request or raise :class:`OverloadError`."""
        if self.try_admit():
            if self._admitted_counter is not None:
                self._admitted_counter.inc()
            return
        if self._shed_counter is not None:
            self._shed_counter.inc()
        raise OverloadError(
            f"overloaded: {self.name} shed {what} "
            f"(queue depth {self.queue_depth:.1f}, "
            f"delay target {self.queue_delay_target:.3f}s)"
        )

    def __repr__(self) -> str:
        return (
            f"<AdmissionController {self.name} rate={self.rate} "
            f"admitted={self.admitted} shed={self.shed}>"
        )


class RetryBudget:
    """A token bucket capping retries to ~``ratio`` of live traffic.

    Every first attempt deposits ``ratio`` tokens (:meth:`on_attempt`);
    every retry withdraws one (:meth:`try_spend`). During a brownout the
    deposit stream is what bounds the retry stream: retries cannot exceed
    ``ratio`` of attempts in steady state, so the retry layer stops
    amplifying load into a browning-out target. ``capacity`` is the
    opening balance and cap, letting isolated failures retry freely.
    """

    def __init__(self, ratio: float = 0.1, capacity: float = 10.0):
        self.ratio = float(ratio)
        self.capacity = float(capacity)
        self._tokens = float(capacity)
        self._mutex = _leaf_mutex("retry_budget")
        self.spent = 0
        self.exhaustions = 0

    @property
    def tokens(self) -> float:
        return self._tokens

    def on_attempt(self) -> None:
        """Record one live (first) attempt: deposit ``ratio`` tokens."""
        with self._mutex:
            self._tokens = min(self.capacity, self._tokens + self.ratio)

    def try_spend(self) -> bool:
        """Withdraw one token for a retry; False when the budget is dry."""
        with self._mutex:
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                self.spent += 1
                return True
            self.exhaustions += 1
            return False

    def __repr__(self) -> str:
        return f"<RetryBudget tokens={self._tokens:.2f} spent={self.spent}>"
