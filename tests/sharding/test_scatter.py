"""Unit tests for scatter-gather decomposition and re-merge."""

from __future__ import annotations

from repro.sharding.policy import TablePartition, tpcw_sharding_policy
from repro.sharding.scatter import decompose
from repro.sql import parse
from repro.tpcw import TPCWConfig
import pytest


pytestmark = pytest.mark.shard

POLICY = tpcw_sharding_policy(TPCWConfig(num_items=100))
PARTITIONS = POLICY.partitions


def _select(sql: str):
    return parse(sql)


def test_decompose_simple_scan():
    scatter = decompose(
        _select("SELECT i_id, i_title FROM item WHERE i_subject = @s"), PARTITIONS
    )
    assert scatter is not None
    assert scatter.partition.table == "item"
    assert scatter.width == 2
    sql = scatter.shard_sql(10, 19)
    assert "BETWEEN 10 AND 19" in sql
    assert "i_subject" in sql


def test_decompose_appends_missing_sort_column():
    scatter = decompose(
        _select(
            "SELECT i_id, i_title FROM item WHERE i_subject = @s "
            "ORDER BY i_pub_date DESC, i_title"
        ),
        PARTITIONS,
    )
    assert scatter is not None
    # i_pub_date was not projected: appended, sorted on, stripped.
    assert len(scatter.select.items) == 3
    assert scatter.width == 2
    assert scatter.sort_keys == ((2, True), (1, False))


def test_decompose_keeps_top_and_merge_reapplies_it():
    scatter = decompose(
        _select("SELECT TOP 3 i_id FROM item ORDER BY i_id"), PARTITIONS
    )
    assert scatter is not None and scatter.top == 3
    # Each shard returns its local top-3; the global top-3 comes out.
    merged = scatter.merge([[(7,), (9,), (12,)], [(1,), (2,), (3,)]])
    assert merged == [(1,), (2,), (3,)]


def test_merge_is_stable_on_ties_and_sorts_nulls_first():
    scatter = decompose(
        _select("SELECT i_id, i_cost FROM item ORDER BY i_cost"), PARTITIONS
    )
    assert scatter is not None
    merged = scatter.merge([[(1, 5.0), (2, None)], [(3, 5.0)]])
    # NULL first (engine sort order), then the tied 5.0s in shard order.
    assert merged == [(2, None), (1, 5.0), (3, 5.0)]


def test_merge_strips_appended_columns():
    scatter = decompose(
        _select("SELECT i_id FROM item ORDER BY i_pub_date DESC"), PARTITIONS
    )
    assert scatter is not None
    merged = scatter.merge([[(4, "2003-01-02")], [(9, "2003-06-01")]])
    assert merged == [(9,), (4,)]


def test_decompose_allows_inner_join_with_broadcast_table():
    scatter = decompose(
        _select(
            "SELECT i_id, i_title, a_fname FROM item, author "
            "WHERE i_a_id = a_id AND i_subject = @s"
        ),
        PARTITIONS,
    )
    assert scatter is not None
    assert scatter.partition.table == "item"


def test_non_decomposable_shapes_route_to_backend():
    undecomposable = [
        "SELECT COUNT(*) FROM item",  # bare aggregate: sum of parts != whole
        "SELECT COUNT(*) FROM item GROUP BY i_subject",
        "SELECT DISTINCT i_subject FROM item",
        "SELECT * FROM item",
        "SELECT i_id FROM item WHERE i_id IN (SELECT ol_i_id FROM order_line)",
        "SELECT c_uname FROM customer",  # no partitioned table
        "SELECT i_id, ol_id FROM item, order_line",  # two partitioned tables
        "SELECT i_id FROM item LEFT JOIN author ON i_a_id = a_id",
        "SELECT TOP @n i_id FROM item",  # non-literal TOP
    ]
    for sql in undecomposable:
        assert decompose(_select(sql), PARTITIONS) is None, sql


def test_shard_sql_is_a_valid_statement():
    scatter = decompose(
        _select("SELECT i_id, i_title FROM item WHERE i_cost < @c ORDER BY i_title"),
        PARTITIONS,
    )
    assert scatter is not None
    from repro.sql import ast

    reparsed = parse(scatter.shard_sql(1, 50))
    assert isinstance(reparsed, ast.Select)


def test_partition_ddl_carries_slice():
    partition = PARTITIONS["item"]
    assert isinstance(partition, TablePartition)
    ddl = partition.ddl(5, 25)
    assert "CREATE CACHED VIEW" in ddl
    assert "BETWEEN 5 AND 25" in ddl
