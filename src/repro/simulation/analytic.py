"""Bottleneck throughput model: Figure 6(a)/6(b) and the summary tables.

The paper's scale-out procedure fixes think time at one second and raises
the number of users until the response-time limits are barely met; in
every experiment CPUs were the bottleneck. Under those conditions maximum
sustainable throughput is capacity-bound:

* web/cache tier: ``N`` machines, each spending (web overhead + local DB
  work + replication apply work) of CPU per interaction;
* backend: the remote DB work per interaction plus the log reader's work
  per replicated command.

WIPS(N) is the smaller of the two tiers' 90 %-utilization throughputs, and
the backend load at that throughput is what Figure 6(b) plots. Service
demands come from :mod:`repro.simulation.calibrate`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.simulation.calibrate import CalibrationResult
from repro.tpcw.workload import MIXES, WorkloadMix


@dataclass
class ClusterSpec:
    """The simulated cluster, defaulting to the paper's hardware shape.

    The paper used 500 MHz machines: dual-CPU backend, single-CPU
    web/cache machines. ``cpu_capacity`` converts engine work units to
    seconds (units per CPU-second); ``web_overhead`` is the page-generation
    work per interaction charged to the web machine (the IIS/ISAPI share);
    ``logreader_work_per_command`` and ``apply_work_per_command`` convert
    replication commands to CPU work on the backend and each cache.
    """

    backend_cpus: int = 2
    web_cpus: int = 1
    cpu_capacity: float = 40_000.0  # work units per CPU-second
    web_overhead: float = 200.0  # work units per interaction
    utilization_target: float = 0.9  # the paper caps machines at 90 % CPU
    logreader_work_per_command: float = 35.0
    apply_work_per_command: float = 25.0


@dataclass
class ScaleoutPoint:
    """One point on the scale-out curve."""

    servers: int
    wips: float
    backend_utilization: float  # fraction of total backend CPU busy
    web_utilization: float
    bottleneck: str  # "backend" or "web"


class ClusterModel:
    """Computes WIPS and utilizations from calibrated demands."""

    def __init__(
        self,
        calibration: CalibrationResult,
        spec: Optional[ClusterSpec] = None,
        replication_enabled: bool = True,
    ):
        self.calibration = calibration
        self.spec = spec or ClusterSpec()
        self.replication_enabled = replication_enabled

    # -- per-interaction demands in CPU seconds -------------------------------

    def demands(self, mix: WorkloadMix) -> Dict[str, float]:
        """Expected per-interaction CPU demands (seconds) under a mix."""
        spec = self.spec
        cache_work, backend_work, commands = self.calibration.mix_demand(mix)
        if not self.replication_enabled:
            commands = 0.0
        web_seconds = (cache_work + spec.web_overhead) / spec.cpu_capacity
        apply_seconds = (
            commands * spec.apply_work_per_command / spec.cpu_capacity
        )
        backend_seconds = backend_work / spec.cpu_capacity
        logreader_seconds = (
            commands * spec.logreader_work_per_command / spec.cpu_capacity
        )
        return {
            "web": web_seconds,
            "apply_per_cache": apply_seconds,
            "backend": backend_seconds,
            "logreader": logreader_seconds,
        }

    # -- the scale-out model --------------------------------------------------

    def point(self, mix_name: str, servers: int) -> ScaleoutPoint:
        """WIPS and utilizations with ``servers`` web/cache machines."""
        spec = self.spec
        demands = self.demands(MIXES[mix_name])
        # Every cache applies every replicated command, so per-machine
        # demand includes the full apply stream regardless of N.
        web_demand = demands["web"] + demands["apply_per_cache"]
        backend_demand = demands["backend"] + demands["logreader"]

        web_capacity = servers * spec.web_cpus * spec.utilization_target
        backend_capacity = spec.backend_cpus * spec.utilization_target

        web_limit = web_capacity / web_demand if web_demand > 0 else float("inf")
        backend_limit = (
            backend_capacity / backend_demand if backend_demand > 0 else float("inf")
        )
        wips = min(web_limit, backend_limit)
        bottleneck = "web" if web_limit <= backend_limit else "backend"
        backend_util = wips * backend_demand / spec.backend_cpus
        web_util = wips * web_demand / (servers * spec.web_cpus)
        return ScaleoutPoint(
            servers=servers,
            wips=wips,
            backend_utilization=backend_util,
            web_utilization=web_util,
            bottleneck=bottleneck,
        )

    def curve(self, mix_name: str, max_servers: int = 5) -> List[ScaleoutPoint]:
        """Figure 6's x-axis: 1..max_servers web/cache machines."""
        return [self.point(mix_name, n) for n in range(1, max_servers + 1)]

    def baseline_wips(self, mix_name: str, web_servers: int = 5) -> ScaleoutPoint:
        """No-cache baseline: all DB work on the backend.

        The web tier still renders pages; with enough web servers the
        backend is the bottleneck, matching the paper's baseline where the
        backend ran at ~90 % CPU.
        """
        spec = self.spec
        demands = self.demands(MIXES[mix_name])
        # In the no-cache calibration, all database work is backend work
        # and there is no replication.
        web_demand = demands["web"]
        backend_demand = demands["backend"]
        web_capacity = web_servers * spec.web_cpus * spec.utilization_target
        backend_capacity = spec.backend_cpus * spec.utilization_target
        web_limit = web_capacity / web_demand if web_demand > 0 else float("inf")
        backend_limit = (
            backend_capacity / backend_demand if backend_demand > 0 else float("inf")
        )
        wips = min(web_limit, backend_limit)
        return ScaleoutPoint(
            servers=web_servers,
            wips=wips,
            backend_utilization=wips * backend_demand / spec.backend_cpus,
            web_utilization=wips * web_demand / (web_servers * spec.web_cpus),
            bottleneck="web" if web_limit <= backend_limit else "backend",
        )

    def max_scaleout(self, mix_name: str) -> int:
        """How many cache servers before the backend saturates (the paper's
        speculative analysis: Browsing ≈ 50, Shopping ≈ 25)."""
        spec = self.spec
        demands = self.demands(MIXES[mix_name])
        web_demand = demands["web"] + demands["apply_per_cache"]
        backend_demand = demands["backend"] + demands["logreader"]
        if backend_demand <= 0:
            return 10_000
        per_server_wips = spec.web_cpus * spec.utilization_target / web_demand
        backend_capacity = spec.backend_cpus * spec.utilization_target
        return max(1, int(backend_capacity / (per_server_wips * backend_demand)))
