"""Static analysis for the MTCache reproduction.

Three passes, one CLI (``python -m repro analyze``):

* :mod:`repro.analysis.plancheck` — walks optimizer-produced physical
  plans and checks the structural invariants the paper states but the
  optimizer otherwise upholds only by convention: schema agreement
  between parents and children, DataLocation discipline (remote rows
  only cross into local operators through a DataTransfer /
  ``RemoteQueryOp`` boundary), ChoosePlan well-formedness (guards
  mutually exclusive and exhaustive, branch schemas identical),
  parameter-binding completeness, and catalog-resolvable table/index
  references.
* :mod:`repro.analysis.sqllint` — statically binds workload SQL (stored
  procedures, cached-view DDL, generated shadow/grant scripts) against a
  catalog, with no execution.
* :mod:`repro.analysis.selflint` — repo-specific rules over the
  package's own Python source (stdlib ``ast``).

All passes report :class:`repro.errors.AnalysisError` diagnostics.
"""

from __future__ import annotations

import os

from repro.analysis.plancheck import PlanVerifier, check_plan, verify_plan
from repro.analysis.selflint import lint_package, lint_source
from repro.analysis.sqllint import SqlLinter, lint_workload

__all__ = [
    "PlanVerifier",
    "check_plan",
    "verify_plan",
    "SqlLinter",
    "lint_workload",
    "lint_package",
    "lint_source",
    "checked_plans_default",
]


def checked_plans_default() -> bool:
    """Resolve the opt-in checked-execution default from the environment.

    Servers created while ``REPRO_CHECKED_PLANS`` is set (to anything but
    ``0``) verify every freshly optimized plan; the test suite turns this
    on globally, production defaults stay off.
    """
    return os.environ.get("REPRO_CHECKED_PLANS", "0") not in ("", "0")
