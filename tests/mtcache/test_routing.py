"""Cost-based routing: local vs remote vs hybrid (paper §5)."""

import pytest

from repro import MTCacheDeployment
from repro.exec.operators import RemoteQueryOp

from tests.conftest import make_shop_backend


@pytest.fixture
def env():
    backend = make_shop_backend()
    deployment = MTCacheDeployment(backend, "shop")
    cache = deployment.add_cache_server("cache1")
    cache.create_cached_view(
        "CREATE CACHED VIEW vcust AS SELECT cid, cname, segment FROM customer"
    )
    return backend, deployment, cache


def is_fully_local(planned):
    return not any(isinstance(n, RemoteQueryOp) for n in planned.root.walk())


def is_fully_remote(planned):
    return isinstance(planned.root, RemoteQueryOp)


class TestRouting:
    def test_covered_query_runs_locally(self, env):
        _, _, cache = env
        planned = cache.plan("SELECT cname FROM customer WHERE cid = 7")
        assert is_fully_local(planned)
        assert planned.uses_cached_view

    def test_uncovered_column_goes_remote(self, env):
        _, _, cache = env
        # caddress is not in the cached view.
        planned = cache.plan("SELECT caddress FROM customer WHERE cid = 7")
        assert planned.uses_remote

    def test_uncached_table_goes_remote(self, env):
        _, _, cache = env
        planned = cache.plan("SELECT total FROM orders WHERE oid = 5")
        assert planned.uses_remote

    def test_hybrid_plan_mixes_local_and_remote(self, env):
        _, _, cache = env
        # Whichever shape wins must produce correct results; in the hybrid
        # case there is a remote op below a local join.
        result = cache.execute(
            "SELECT c.cname, o.total FROM customer c "
            "JOIN orders o ON o.o_cid = c.cid WHERE c.segment = 'gold'"
        )
        assert len(result.rows) == 132  # 66 gold customers x 2 orders each

    def test_routing_is_cost_based_not_heuristic(self, env):
        """DBCache contrast: a matching view must NOT be used when the
        backend can answer dramatically cheaper. We simulate this by
        making the remote path nearly free and the local view scan huge."""
        backend, deployment, _ = env
        from repro.optimizer.cost import CostModel

        # A cost model where transfers are free and remote execution is
        # discounted: the backend index seek should win over a local scan.
        cheap_remote = CostModel(
            remote_penalty=1.0, transfer_startup=0.0, transfer_per_byte=0.0
        )
        cache2 = deployment.add_cache_server("cache2", cost_model=cheap_remote)
        cache2.create_cached_view(
            "CREATE CACHED VIEW unindexed AS SELECT cname, caddress FROM customer"
        )
        # Query on cname: the view has NO index on cname (backend pk/index
        # none either, but remote is discounted), local scan vs remote scan
        # tie goes to whichever is cheaper; with zero transfer cost remote
        # wins because the view scan pays local filter costs.
        planned = cache2.plan("SELECT caddress FROM customer WHERE cname = 'cust5'")
        assert planned.uses_remote

    def test_force_local_views_ablation(self, env):
        """The DBCache-style always-local policy (ablation knob)."""
        backend, deployment, _ = env
        cache3 = deployment.add_cache_server(
            "cache3", optimizer_options={"force_local_views": True}
        )
        cache3.create_cached_view(
            "CREATE CACHED VIEW vc3 AS SELECT cid, cname, segment FROM customer"
        )
        planned = cache3.plan("SELECT cname FROM customer WHERE cid = 1")
        assert is_fully_local(planned)

    def test_remote_subexpression_ships_as_text(self, env):
        _, _, cache = env
        planned = cache.plan("SELECT total FROM orders WHERE oid = 5")
        remotes = [n for n in planned.root.walk() if isinstance(n, RemoteQueryOp)]
        assert remotes
        assert "SELECT" in remotes[0].sql_text
        assert "orders" in remotes[0].sql_text

    def test_work_is_actually_offloaded(self, env):
        backend, _, cache = env
        backend.reset_work()
        cache.server.reset_work()
        for cid in range(1, 30):
            cache.execute("SELECT cname FROM customer WHERE cid = @cid", params={"cid": cid})
        assert backend.total_work.rows_processed == 0
        assert cache.server.total_work.rows_processed > 0

    def test_updates_always_go_to_backend(self, env):
        backend, deployment, cache = env
        result = cache.execute("UPDATE customer SET segment = 'vip' WHERE cid = 2")
        assert result.rowcount == 1
        assert (
            backend.execute("SELECT segment FROM customer WHERE cid = 2", database="shop").scalar
            == "vip"
        )
        # Cached view still shows old value until replication syncs.
        deployment.sync()
        assert cache.execute("SELECT segment FROM vcust WHERE cid = 2").scalar == "vip"

    def test_inserts_and_deletes_forwarded(self, env):
        backend, deployment, cache = env
        cache.execute("INSERT INTO customer VALUES (900, 'new', 'a', 'base')")
        assert (
            backend.execute("SELECT cname FROM customer WHERE cid = 900", database="shop").scalar
            == "new"
        )
        cache.execute("DELETE FROM customer WHERE cid = 900")
        assert (
            backend.execute("SELECT COUNT(*) FROM customer WHERE cid = 900", database="shop").scalar
            == 0
        )
