"""Statement fast path microbenchmark.

The fast path exists to make per-statement overhead — lexing, parsing,
text shipping, remote re-parsing — vanish for repeated statements, which
is the dominant case for MTCache traffic (shipped remote subexpressions,
replicated commands, TPC-W stored procedure calls). Two experiments:

1. A repeated parameterized remote query loop (cache -> backend via
   RemoteQueryOp). With the fast path the text is parsed once per side
   and every further execution goes by prepared handle; disabled, both
   sides re-parse every iteration. Assert >= 2x fewer parses (via the
   new counters) and lower wall time.
2. The TPC-W Shopping mix through a cache server: the same interactions
   repeat, so parse-cache hits dominate and total parses collapse.
"""

from __future__ import annotations

import random
import time


from repro import MTCacheDeployment

from benchmarks.conftest import emit
from tests.conftest import make_shop_backend

LOOP = 300


def build_env(fastpath: bool, tag: str):
    backend = make_shop_backend(customers=300, orders=900)
    backend.statement_fastpath = fastpath
    deployment = MTCacheDeployment(backend, "shop")
    cache = deployment.add_cache_server(f"fp_{tag}")
    cache.server.statement_fastpath = fastpath
    # Customer is cached; orders stays backend-only so the loop query
    # always routes through a RemoteQueryOp.
    cache.create_cached_view(
        "CREATE CACHED VIEW fc AS SELECT cid, cname, segment FROM customer"
    )
    return backend, deployment, cache


def total_parses(backend, cache) -> int:
    return backend.parses + cache.server.parses


def run_remote_loop(cache, iterations: int = LOOP) -> float:
    sql = "SELECT total FROM orders WHERE oid = @o"
    start = time.perf_counter()
    for i in range(iterations):
        cache.execute(sql, params={"o": (i % 800) + 1})
    return time.perf_counter() - start


def test_bench_fastpath_remote_query_loop(benchmark, capsys):
    on_backend, _, on_cache = build_env(True, "on")
    off_backend, _, off_cache = build_env(False, "off")

    # Warm both stacks identically (plans, interpreter state) so the
    # measured loops compare parsing paths, not first-touch effects.
    run_remote_loop(on_cache, 20)
    run_remote_loop(off_cache, 20)

    on_before = total_parses(on_backend, on_cache)
    on_time = run_remote_loop(on_cache)
    on_parses = total_parses(on_backend, on_cache) - on_before

    off_before = total_parses(off_backend, off_cache)
    off_time = run_remote_loop(off_cache)
    off_parses = total_parses(off_backend, off_cache) - off_before

    # Same answers either way (the fast path is invisible to results).
    check = "SELECT total FROM orders WHERE oid = @o"
    assert (
        on_cache.execute(check, params={"o": 5}).rows
        == off_cache.execute(check, params={"o": 5}).rows
    )

    work = on_cache.server.total_work
    emit(
        capsys,
        "Statement fast path: repeated parameterized remote query",
        [
            f"{'':14s} {'parses':>8s} {'wall (ms)':>10s}",
            f"{'fast path on':14s} {on_parses:8d} {on_time * 1e3:10.1f}",
            f"{'disabled':14s} {off_parses:8d} {off_time * 1e3:10.1f}",
            f"parse_cache_hits={work.parse_cache_hits} "
            f"prepared_executions={work.prepared_executions}",
        ],
    )

    # Acceptance: >= 2x fewer parses, lower wall time, savings visible
    # through the new counters.
    assert off_parses >= 2 * max(on_parses, 1)
    assert on_time < off_time
    assert work.parse_cache_hits >= LOOP
    assert work.prepared_executions >= LOOP

    benchmark(lambda: on_cache.execute(check, params={"o": 17}))


def test_bench_fastpath_tpcw_mix(capsys):
    from repro.mtcache.odbc import OdbcConnection
    from repro.tpcw.application import TPCWApplication
    from repro.tpcw.config import TPCWConfig
    from repro.tpcw.setup import build_backend, enable_caching
    from repro.tpcw.workload import MIXES

    interactions_to_run = 80
    mix = MIXES["Shopping"]
    names = list(mix.weights)
    weights = [mix.weights[name] for name in names]

    results = {}
    for fastpath in (True, False):
        config = TPCWConfig(num_items=50, num_ebs=10)
        backend, config = build_backend(config)
        deployment, caches = enable_caching(backend, ["mix_cache"], config)
        backend.statement_fastpath = fastpath
        caches[0].server.statement_fastpath = fastpath
        connection = OdbcConnection(caches[0].server, "tpcw", "dbo")
        application = TPCWApplication(connection, config, random.Random(42))
        rng = random.Random(7)
        session = application.new_session()
        application.shopping_cart(session)
        deployment.sync()

        parses_before = backend.parses + caches[0].server.parses
        start = time.perf_counter()
        for _ in range(interactions_to_run):
            application.run(rng.choices(names, weights=weights)[0], session)
            deployment.sync()
        elapsed = time.perf_counter() - start
        parses = backend.parses + caches[0].server.parses - parses_before
        results[fastpath] = (parses, elapsed)

    on_parses, on_time = results[True]
    off_parses, off_time = results[False]
    emit(
        capsys,
        "Statement fast path: TPC-W Shopping mix (80 interactions)",
        [
            f"{'':14s} {'parses':>8s} {'wall (ms)':>10s}",
            f"{'fast path on':14s} {on_parses:8d} {on_time * 1e3:10.1f}",
            f"{'disabled':14s} {off_parses:8d} {off_time * 1e3:10.1f}",
        ],
    )
    # The mix repeats the same statement texts, so the text cache
    # collapses parse counts; wall time is reported, not asserted, since
    # interaction cost is dominated by execution at this scale.
    assert off_parses >= 2 * max(on_parses, 1)
