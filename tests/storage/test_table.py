"""Heap table + secondary index tests."""

import pytest

from repro.common.schema import Column, Schema
from repro.common.types import FLOAT, INT, VARCHAR
from repro.errors import ConstraintError, ExecutionError
from repro.storage.table import Table


def make_table():
    schema = Schema(
        [
            Column("id", INT, nullable=False),
            Column("name", VARCHAR(20), nullable=False),
            Column("score", FLOAT),
        ]
    )
    return Table("t", schema, primary_key=("id",))


class TestInsert:
    def test_insert_and_get(self):
        table = make_table()
        rid = table.insert((1, "a", 2.5))
        assert table.get(rid) == (1, "a", 2.5)

    def test_pk_duplicate_rejected(self):
        table = make_table()
        table.insert((1, "a", None))
        with pytest.raises(ConstraintError, match="duplicate key"):
            table.insert((1, "b", None))

    def test_pk_violation_rolls_back_index_entries(self):
        table = make_table()
        table.create_index("ix_name", ["name"])
        table.insert((1, "a", None))
        with pytest.raises(ConstraintError):
            table.insert((1, "a", None))
        # The failed insert must leave no trace in any index.
        assert len(list(table.indexes["ix_name"].seek(("a",)))) == 1

    def test_not_null_enforced(self):
        table = make_table()
        with pytest.raises(ConstraintError, match="NOT NULL"):
            table.insert((1, None, None))

    def test_arity_mismatch(self):
        table = make_table()
        with pytest.raises(ExecutionError, match="arity"):
            table.insert((1, "a"))

    def test_coercion_applied(self):
        table = make_table()
        rid = table.insert(("7", "a", "2.5"))
        assert table.get(rid) == (7, "a", 2.5)


class TestDeleteUpdate:
    def test_delete_removes_from_indexes(self):
        table = make_table()
        rid = table.insert((1, "a", None))
        table.delete_rid(rid)
        assert table.indexes["pk_t"].seek((1,)) == []
        assert len(table) == 0

    def test_delete_missing_rid(self):
        table = make_table()
        with pytest.raises(ExecutionError):
            table.delete_rid(999)

    def test_update_moves_index_entries(self):
        table = make_table()
        rid = table.insert((1, "a", None))
        table.update_rid(rid, (2, "b", None))
        assert table.indexes["pk_t"].seek((1,)) == []
        assert table.indexes["pk_t"].seek((2,)) == [rid]

    def test_update_conflict_restores_old_state(self):
        table = make_table()
        table.insert((1, "a", None))
        rid2 = table.insert((2, "b", None))
        with pytest.raises(ConstraintError):
            table.update_rid(rid2, (1, "b", None))
        assert table.get(rid2) == (2, "b", None)
        assert table.indexes["pk_t"].seek((2,)) == [rid2]


class TestIndexes:
    def test_backfill_on_create(self):
        table = make_table()
        for i in range(10):
            table.insert((i, f"n{i % 3}", None))
        table.create_index("ix_name", ["name"])
        assert len(list(table.indexes["ix_name"].seek(("n0",)))) == 4

    def test_unique_secondary_index(self):
        table = make_table()
        table.create_index("ux_name", ["name"], unique=True)
        table.insert((1, "a", None))
        with pytest.raises(ConstraintError):
            table.insert((2, "a", None))

    def test_find_index_by_leading_columns(self):
        table = make_table()
        table.create_index("ix_ns", ["name", "score"])
        assert table.find_index(["name"]).name == "ix_ns"
        assert table.find_index(["name", "score"]).name == "ix_ns"
        assert table.find_index(["score"]) is None

    def test_range_scan_ordered(self):
        table = make_table()
        for i in (5, 1, 9, 3, 7):
            table.insert((i, "x", None))
        rids = list(table.indexes["pk_t"].range_scan((3,), (7,)))
        values = [table.rows[rid][0] for rid in rids]
        assert values == [3, 5, 7]

    def test_duplicate_index_name_rejected(self):
        table = make_table()
        with pytest.raises(ConstraintError):
            table.create_index("pk_t", ["name"])

    def test_drop_index(self):
        table = make_table()
        table.create_index("ix_name", ["name"])
        table.drop_index("ix_name")
        assert "ix_name" not in table.indexes


class TestTruncateAndCounters:
    def test_truncate_keeps_definitions(self):
        table = make_table()
        table.create_index("ix_name", ["name"])
        table.insert((1, "a", None))
        table.truncate()
        assert len(table) == 0
        assert "ix_name" in table.indexes
        table.insert((1, "a", None))  # PK free again

    def test_work_counters(self):
        table = make_table()
        table.insert((1, "a", None))
        list(table.scan())
        assert table.rows_written == 1
        assert table.rows_read >= 1
        table.reset_counters()
        assert table.rows_written == 0
