"""Chaos: kill one shard mid-TPC-W; the tier degrades, nothing fails.

The acceptance scenario for the partitioned tier: a LoadDriver runs the
Shopping mix through the ShardRouter while a FaultInjector crashes one
shard and later restarts it. Every interaction must complete (zero
errors): the dead shard's key traffic fails over to the backend through
its per-shard FailoverRouter, scatter slices for the dead shard run on
the backend, and after restart + probe the shard serves locally again.
"""

from __future__ import annotations

import pytest

from repro.client.connection import connect
from repro.faults import FaultInjector
from repro.sharding import ShardedDeployment
from repro.tpcw import MIXES, TPCWApplication, TPCWConfig
from repro.tpcw.driver import LoadDriver

pytestmark = [pytest.mark.shard, pytest.mark.chaos]

CONFIG = dict(num_items=100, num_ebs=6, seed=31)


def test_kill_one_shard_mid_run_zero_failed_interactions():
    sharded = ShardedDeployment(config=TPCWConfig(**CONFIG), shards=4)
    injector = FaultInjector(sharded.clock, seed=5)
    sharded.attach_fault_injector(injector)
    victim = sharded.shard("shard1")
    injector.at(4.0, "crash_cache", victim)
    injector.at(10.0, "restart_cache", victim)

    config = TPCWConfig(**CONFIG)
    connection = sharded.connect()
    application = TPCWApplication(connection, config)
    driver = LoadDriver(
        application,
        MIXES["Shopping"],
        users=8,
        think_time=0.5,
        deployment=sharded,
        seed=23,
    )
    stats = driver.run(duration=16.0)

    assert stats.errors == 0, stats.error_samples
    assert stats.interactions > 100
    assert victim.server.available
    # The outage actually bit: at least one per-shard router failed over.
    router = connection.target
    assert router.failovers >= 1
    assert injector.injected >= 1

    # Post-restart, replication converges and the victim serves its slice.
    sharded.sync()
    low, _ = sharded.partitioner.slice("shard1")
    backend = connect(sharded.backend, database=sharded.database_name)
    expected = backend.execute("EXEC getBook @i_id = @i_id", {"i_id": low}).rows
    actual = connection.execute("EXEC getBook @i_id = @i_id", {"i_id": low}).rows
    assert actual == expected


def test_dead_shard_scatter_results_stay_exact():
    sharded = ShardedDeployment(config=TPCWConfig(**CONFIG), shards=4)
    injector = FaultInjector(sharded.clock, seed=6)
    sharded.attach_fault_injector(injector)
    connection = sharded.connect()
    backend = connect(sharded.backend, database=sharded.database_name)

    expected = backend.execute(
        "EXEC doSubjectSearch @subject = @subject", {"subject": "HISTORY"}
    ).rows
    injector.crash_cache(sharded.shard("shard2"))
    # The dead shard's slice is served by its failover route; results are
    # still exactly the backend's.
    actual = connection.execute(
        "EXEC doSubjectSearch @subject = @subject", {"subject": "HISTORY"}
    ).rows
    assert actual == expected
    injector.restart_cache(sharded.shard("shard2"))
