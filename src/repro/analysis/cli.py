"""``python -m repro analyze`` — run the static-analysis passes.

Four passes (all by default, each opt-in via flag):

* ``--self``        — the repo-specific AST lint pack over ``repro``'s
  own source (:mod:`repro.analysis.selflint`);
* ``--workload``    — the workload SQL lint over the full TPC-W
  procedure set, the MTCache cached-view DDL, the generated shadow/grant
  deployment scripts (:mod:`repro.analysis.sqllint`), and the sharding
  policy coverage check (:mod:`repro.analysis.shardlint`);
* ``--plans``       — the plan-invariant verifier over every SELECT the
  optimizer produces for the TPC-W procedures, on both the backend and
  a provisioned cache server (:mod:`repro.analysis.plancheck`);
* ``--concurrency`` — the whole-program concurrency lint
  (:mod:`repro.analysis.concurrency`): the static lock-order analyzer,
  the atomicity checker over the provisioned corpus, and — when a
  witness is active — the observed-graph subgraph check.

``--concurrency`` additionally accepts ``--path DIR`` to run the static
passes over an out-of-tree source tree instead of the installed package
(no corpus is built); the seeded-violation fixtures under
``tests/fixtures/concurrency/`` are exercised this way.

Exit status is 1 when any error-severity diagnostic is reported.
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.errors import AnalysisError


def _print(pass_name: str, diagnostics: List[AnalysisError]) -> int:
    errors = 0
    for diagnostic in diagnostics:
        print(f"{pass_name}: {diagnostic.severity}: {diagnostic}")
        if diagnostic.is_error:
            errors += 1
    return errors


def _build_corpus():
    from repro.tpcw import TPCWConfig, build_backend, enable_caching

    backend, config = build_backend(TPCWConfig(num_items=50, num_ebs=10))
    deployment, caches = enable_caching(backend, ["cache1"], config)
    deployment.sync()
    return backend, caches[0], config


def _self_pass() -> int:
    from repro.analysis.selflint import lint_package

    diagnostics = lint_package()
    errors = _print("self", diagnostics)
    print(f"self: {len(diagnostics)} diagnostic(s)")
    return errors


def _workload_pass(backend, cache, config) -> int:
    from repro.analysis.shardlint import lint_sharding_policy
    from repro.analysis.sqllint import SqlLinter, lint_workload
    from repro.mtcache.scripts import generate_grant_script, generate_shadow_script
    from repro.sharding.policy import tpcw_sharding_policy
    from repro.tpcw.setup import CACHED_VIEW_DDL, DATABASE_NAME

    catalog = backend.databases[DATABASE_NAME].catalog
    diagnostics = lint_workload(
        backend.databases[DATABASE_NAME],
        scripts={"cached-view-ddl": ";".join(CACHED_VIEW_DDL)},
    )
    diagnostics += lint_workload(cache.database)
    diagnostics += lint_sharding_policy(tpcw_sharding_policy(config), catalog)
    # The generated deployment scripts run against an initially empty
    # shadow database, so they lint with no base catalog: the script's
    # own CREATE TABLEs must carry the later CREATE INDEX / GRANT lines.
    empty = SqlLinter(None)
    diagnostics += empty.lint_sql(generate_shadow_script(catalog), "shadow-script")
    diagnostics += empty.lint_sql(generate_grant_script(catalog), "grant-script")
    errors = _print("workload", diagnostics)
    print(f"workload: {len(diagnostics)} diagnostic(s)")
    return errors


def _plans_pass(backend, cache) -> int:
    from repro.analysis.plancheck import verify_plan
    from repro.sql import ast
    from repro.tpcw.setup import DATABASE_NAME

    errors = 0
    planned_count = 0
    for server in (backend, cache.server):
        database = server.databases[DATABASE_NAME]
        for procedure in database.catalog.procedures.values():
            pending = list(procedure.body)
            while pending:
                statement = pending.pop()
                if isinstance(statement, ast.Select):
                    planned = server.plan_select(statement, database)
                    diagnostics = verify_plan(planned, database=database)
                    planned_count += 1
                    errors += _print(
                        f"plans[{server.name}:{procedure.name}]", diagnostics
                    )
                elif isinstance(statement, ast.IfStatement):
                    pending.extend(statement.then_body)
                    pending.extend(statement.else_body)
                elif isinstance(statement, ast.WhileStatement):
                    pending.extend(statement.body)
    print(f"plans: {planned_count} plan(s) verified on backend and cache")
    return errors


def _concurrency_pass(backend, cache, path: Optional[str] = None) -> int:
    from repro.analysis.concurrency import (
        analyze_lock_order,
        check_atomicity,
        verify_witness,
    )
    from repro.analysis.concurrency.atomicity import check_rebalance_protocol

    report = analyze_lock_order(root=path)
    errors = _print("concurrency[lock-order]", report.diagnostics)
    print(
        f"concurrency: lock graph has {len(report.classes)} class(es), "
        f"{len(report.edges)} edge(s)"
    )
    if path is not None:
        # Out-of-tree mode: the corpus-driven atomicity rules need a
        # provisioned server, but the rebalance protocol rules are
        # static — run them over any deployment-named module in the tree.
        for directory, _, names in os.walk(path):
            for name in sorted(names):
                if "deployment" in name and name.endswith(".py"):
                    with open(os.path.join(directory, name), "r", encoding="utf-8") as f:
                        errors += _print(
                            "concurrency[rebalance]", check_rebalance_protocol(f.read())
                        )
        return errors
    diagnostics = check_atomicity(backend, cache)
    errors += _print("concurrency[atomicity]", diagnostics)
    errors += _print("concurrency[witness]", verify_witness())
    return errors


def run_analyze(
    self_lint: bool = False,
    workload: bool = False,
    plans: bool = False,
    concurrency: bool = False,
    path: Optional[str] = None,
) -> int:
    """Run the selected passes (all four when none is selected)."""
    if not (self_lint or workload or plans or concurrency):
        self_lint = workload = plans = concurrency = True
    errors = 0
    if self_lint:
        errors += _self_pass()
    backend = cache = config = None
    if workload or plans or (concurrency and path is None):
        backend, cache, config = _build_corpus()
    if workload:
        errors += _workload_pass(backend, cache, config)
    if plans:
        errors += _plans_pass(backend, cache)
    if concurrency:
        errors += _concurrency_pass(backend, cache, path)
    if errors:
        print(f"analyze: {errors} error(s)")
        return 1
    print("analyze: clean")
    return 0
