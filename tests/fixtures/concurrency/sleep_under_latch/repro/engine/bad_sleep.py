"""Seeded violation: sleeping while holding the database latch.

Expected finding: ``blocking-under-latch``.
"""

import time


class BadCheckpointer:
    def checkpoint(self, database):
        with database.latch.exclusive():
            time.sleep(0.5)  # every statement on the database stalls here
            return self.flush(database)
