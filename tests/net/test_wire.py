"""End-to-end wire tests: WireConnection against a live ReproServer."""

from __future__ import annotations

import datetime
import socket
import struct
import time

import pytest

from repro.client import connect
from repro.errors import (
    BindError,
    ConnectionLostError,
    ConstraintError,
    DeadlineExceededError,
    HandshakeError,
    OverloadError,
    is_transient,
)
from repro.net import ReproServer, WireConnection, protocol
from repro.obs.tracing import Tracer, global_collector
from tests.conftest import make_shop_backend


class TestBasicExecution:
    def test_select_matches_in_process(self, wire_server):
        backend, server = wire_server
        local = backend.execute(
            "SELECT cid, cname, segment FROM customer WHERE cid <= @n ORDER BY cid",
            {"n": 10},
            database="shop",
        )
        connection = connect(server.dsn)
        try:
            remote = connection.execute(
                "SELECT cid, cname, segment FROM customer WHERE cid <= @n ORDER BY cid",
                {"n": 10},
            )
            assert remote.rows == local.rows
            assert remote.rowcount == local.rowcount
            assert [c.name for c in remote.schema] == [c.name for c in local.schema]
            assert [c.sql_type for c in remote.schema] == [
                c.sql_type for c in local.schema
            ]
        finally:
            connection.close()

    def test_cursor_surface_over_the_wire(self, wire_server):
        _, server = wire_server
        with connect(server.dsn) as connection:
            cursor = connection.cursor()
            cursor.execute("SELECT cid, cname FROM customer WHERE cid <= 5 ORDER BY cid")
            assert cursor.fetchone() == (1, "cust1")
            assert len(cursor.fetchall()) == 4
            assert cursor.description[0][0] == "cid"

    def test_temporal_and_null_values_roundtrip(self, wire_server):
        _, server = wire_server
        with connect(server.dsn) as connection:
            connection.execute(
                "CREATE TABLE events (eid INT PRIMARY KEY, at DATETIME, day DATE, note VARCHAR(20))"
            )
            stamp = datetime.datetime(2003, 6, 9, 12, 0, 1)
            day = datetime.date(2003, 6, 9)
            connection.execute(
                "INSERT INTO events (eid, at, day, note) VALUES (@e, @at, @day, @note)",
                {"e": 1, "at": stamp, "day": day, "note": None},
            )
            row = connection.execute("SELECT at, day, note FROM events WHERE eid = 1").rows[0]
            assert row == (stamp, day, None)

    def test_server_errors_cross_as_their_own_class(self, wire_server):
        _, server = wire_server
        with connect(server.dsn) as connection:
            with pytest.raises(ConstraintError):
                connection.execute(
                    "INSERT INTO customer (cid, cname) VALUES (1, 'dup')"
                )
            with pytest.raises(BindError):
                connection.execute("SELECT x FROM no_such_table")

    def test_batched_fetch_reassembles_large_results(self, wire_server):
        backend, server = wire_server
        with connect(f"{server.dsn}?fetch_rows=16") as connection:
            rows = connection.execute("SELECT cid FROM customer ORDER BY cid").rows
        assert len(rows) == 200
        assert rows[0] == (1,) and rows[-1] == (200,)


class TestTransactions:
    def test_remote_transaction_state_is_mirrored(self, wire_server):
        _, server = wire_server
        with connect(server.dsn) as connection:
            assert connection.in_transaction() is False
            connection.begin()
            assert connection.in_transaction() is True
            connection.execute(
                "INSERT INTO customer (cid, cname) VALUES (9001, 'txn')"
            )
            connection.rollback()
            assert connection.in_transaction() is False
            assert connection.execute(
                "SELECT cid FROM customer WHERE cid = 9001"
            ).rows == []

    def test_commit_persists_across_connections(self, wire_server):
        backend, server = wire_server
        with connect(server.dsn) as connection:
            connection.begin()
            connection.execute(
                "INSERT INTO customer (cid, cname) VALUES (9002, 'committed')"
            )
            connection.commit()
        assert backend.execute(
            "SELECT cname FROM customer WHERE cid = 9002", database="shop"
        ).scalar == "committed"

    def test_disconnect_rolls_back_and_releases_the_latch(self, wire_server):
        backend, server = wire_server
        connection = connect(server.dsn)
        connection.begin()
        connection.execute("INSERT INTO customer (cid, cname) VALUES (9003, 'lost')")
        # Drop the socket without COMMIT: server-side cleanup must roll
        # back and release the exclusive latch, or this execute blocks.
        connection.target._drop()
        connection.closed = True  # skip the facade's rollback-on-close
        latch = backend.database("shop").latch
        for _ in range(200):  # wait for server-side cleanup to run
            if latch._writer is None:
                break
            time.sleep(0.05)
        assert latch._writer is None
        rows = backend.execute(
            "SELECT cid FROM customer WHERE cid = 9003", database="shop"
        ).rows
        assert rows == []


class TestPreparedStatements:
    def test_prepare_execute_roundtrip(self, wire_server):
        _, server = wire_server
        with connect(server.dsn) as connection:
            wire = connection.target
            handle = wire.prepare_sql("SELECT cname FROM customer WHERE cid = @id")
            assert wire.execute_prepared(handle, {"id": 7}).rows == [("cust7",)]
            assert wire.execute_prepared(handle, {"id": 8}).rows == [("cust8",)]

    def test_reprepare_after_server_restart(self, wire_server):
        backend, server = wire_server
        with connect(server.dsn) as connection:
            wire = connection.target
            handle = wire.prepare_sql("SELECT cname FROM customer WHERE cid = @id")
            wire.execute_prepared(handle, {"id": 1})
            backend.crash()  # volatile state (prepared handles) is lost
            backend.restart()
            assert wire.execute_prepared(handle, {"id": 2}).rows == [("cust2",)]

    def test_reprepare_after_redial(self, wire_server):
        _, server = wire_server
        with connect(server.dsn) as connection:
            wire = connection.target
            handle = wire.prepare_sql("SELECT cname FROM customer WHERE cid = @id")
            wire._drop()  # simulate a network drop between calls
            assert wire.execute_prepared(handle, {"id": 3}).rows == [("cust3",)]
            assert wire._prepared[handle].reprepares == 1


class TestHandshake:
    def test_version_mismatch_rejected(self, wire_server):
        _, server = wire_server
        with socket.create_connection((server.host, server.port), timeout=5) as raw:
            raw.sendall(
                protocol.encode_frame(
                    protocol.OP_HELLO, {"protocol": 999, "database": "shop"}
                )
            )
            length = struct.unpack("!I", _read_exactly(raw, 4))[0]
            opcode, payload = protocol.decode_body(_read_exactly(raw, length))
        assert opcode == protocol.OP_ERROR
        with pytest.raises(HandshakeError, match="version mismatch"):
            protocol.raise_error(payload)

    def test_unknown_database_rejected_at_connect(self, wire_server):
        _, server = wire_server
        with pytest.raises(HandshakeError, match="does not serve database"):
            connect(f"tcp://{server.host}:{server.port}/nope")

    def test_statement_before_hello_is_a_protocol_error(self, wire_server):
        _, server = wire_server
        from repro.errors import ProtocolError

        with socket.create_connection((server.host, server.port), timeout=5) as raw:
            raw.sendall(
                protocol.encode_frame(protocol.OP_EXECUTE, {"sql": "SELECT 1"})
            )
            length = struct.unpack("!I", _read_exactly(raw, 4))[0]
            opcode, payload = protocol.decode_body(_read_exactly(raw, length))
        assert opcode == protocol.OP_ERROR
        with pytest.raises(ProtocolError, match="before HELLO"):
            protocol.raise_error(payload)

    def test_connect_refused_is_transient(self):
        with socket.socket() as probe:  # find a port nobody listens on
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        with pytest.raises(ConnectionLostError) as info:
            connect(f"tcp://127.0.0.1:{free_port}/shop", timeout=0.5)
        assert is_transient(info.value)


class TestOverloadShedding:
    def test_connections_beyond_limit_are_shed(self):
        backend = make_shop_backend()
        server = ReproServer.serve(backend, max_connections=1)
        try:
            first = connect(server.dsn)
            with pytest.raises(OverloadError) as info:
                connect(server.dsn)
            assert is_transient(info.value)
            first.close()
            # Capacity freed: the next dial succeeds.
            for _ in range(50):
                try:
                    second = connect(server.dsn)
                    break
                except OverloadError:
                    continue
            second.close()
        finally:
            server.stop()


class TestDeadlinesAndTracing:
    def test_spent_budget_fails_fast_across_the_wire(self, wire_server):
        _, server = wire_server
        with connect(server.dsn) as connection:
            with pytest.raises(DeadlineExceededError):
                connection.cursor().execute(
                    "SELECT cid FROM customer", timeout=0.0
                )
            # An ample budget sails through.
            rows = connection.cursor().execute(
                "SELECT cid FROM customer WHERE cid = 1", timeout=30.0
            ).fetchall()
            assert rows == [(1,)]

    def test_trace_id_propagates_into_server_spans(self, wire_server):
        _, server = wire_server
        collector = global_collector()
        collector.clear()
        tracer = Tracer(service="client-app")
        with connect(server.dsn) as connection:
            with tracer.span("interaction") as span:
                connection.execute("SELECT cid FROM customer WHERE cid = 1")
                client_trace = span.trace_id
        services = {
            recorded.service
            for recorded in collector.trace(client_trace)
        }
        assert "backend" in services  # server-side spans joined the trace

    def test_wire_metrics_recorded(self, wire_server):
        backend, server = wire_server
        with connect(server.dsn) as connection:
            connection.execute("SELECT cid FROM customer WHERE cid = 1")
        assert backend.metrics.counter("net.server.requests").value > 0
        assert backend.metrics.counter("net.server.bytes_in").value > 0
        assert backend.metrics.counter("net.server.bytes_out").value > 0


class TestConnectionFacade:
    def test_healthy_probe_and_failover_surface(self, wire_server):
        backend, server = wire_server
        with connect(server.dsn) as connection:
            assert connection.healthy() is True
            backend.crash()
            # ServerUnavailableError crosses the wire as itself (transient).
            from repro.errors import ServerUnavailableError

            with pytest.raises(ServerUnavailableError):
                connection.execute("SELECT cid FROM customer WHERE cid = 1")
            backend.restart()
            assert connection.healthy() is True

    def test_wire_connection_object_still_accepted(self, wire_server):
        _, server = wire_server
        wire = WireConnection(server.host, server.port, database="shop")
        try:
            connection = connect(wire)  # back-compat: plain object target
            assert connection.execute(
                "SELECT cid FROM customer WHERE cid = 1"
            ).rows == [(1,)]
            connection.close()
            # The facade did not own the handed-in target: still usable.
            assert wire.healthy()
        finally:
            wire.close()


def _read_exactly(sock: socket.socket, count: int) -> bytes:
    data = bytearray()
    while len(data) < count:
        chunk = sock.recv(count - len(data))
        assert chunk, "server closed the connection early"
        data += chunk
    return bytes(data)
