"""Frame codec round-trips and the error-taxonomy mapping."""

from __future__ import annotations

import datetime

import pytest

from repro.common.schema import Column, Schema
from repro.common.types import INT, VARCHAR, SqlType, TypeKind
from repro.engine.results import Result
from repro.errors import (
    ConstraintError,
    OverloadError,
    ProtocolError,
    RemoteError,
    is_transient,
)
from repro.net import protocol


def roundtrip(value):
    out = bytearray()
    protocol.encode_value(out, value)
    return protocol.decode_value(bytes(out))


class TestValueCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -1,
            2**62,
            -(2**62),
            2**100,  # beyond int64: decimal-string bigint encoding
            3.14159,
            float("inf"),
            "",
            "héllo wörld",
            b"\x00\xff raw bytes",
            datetime.date(2003, 6, 9),
            datetime.datetime(2003, 6, 9, 12, 30, 45, 123456),
            [1, "two", 3.0, None],
            (1, 2, 3),
            {"sql": "SELECT 1", "params": {"n": 5}, "budget": 0.25},
        ],
    )
    def test_scalar_roundtrip(self, value):
        assert roundtrip(value) == value

    def test_tuple_and_list_keep_their_kind(self):
        assert roundtrip((1, 2)) == (1, 2)
        assert isinstance(roundtrip((1, 2)), tuple)
        assert isinstance(roundtrip([1, 2]), list)

    def test_rows_stay_tuples(self):
        rows = [(1, "a"), (2, "b")]
        back = roundtrip({"rows": rows})["rows"]
        assert back == rows
        assert all(isinstance(row, tuple) for row in back)

    def test_sqltype_roundtrip(self):
        numeric = SqlType(TypeKind.NUMERIC, precision=10, scale=2)
        back = roundtrip(numeric)
        assert back.kind is TypeKind.NUMERIC
        assert (back.precision, back.scale) == (10, 2)

    def test_schema_roundtrip(self):
        schema = Schema(
            [
                Column("cid", INT, qualifier="c", nullable=False),
                Column("cname", VARCHAR(40)),
            ]
        )
        back = roundtrip(schema)
        assert isinstance(back, Schema)
        assert [column.name for column in back] == ["cid", "cname"]
        assert back.columns[0].qualifier == "c"
        assert back.columns[0].nullable is False
        assert back.columns[1].sql_type.length == 40

    def test_unencodable_type_raises(self):
        with pytest.raises(ProtocolError, match="cannot encode"):
            roundtrip(object())

    def test_non_string_dict_key_raises(self):
        with pytest.raises(ProtocolError, match="keys on the wire"):
            roundtrip({1: "x"})


class TestFrames:
    def test_frame_roundtrip(self):
        frame = protocol.encode_frame(protocol.OP_EXECUTE, {"sql": "SELECT 1"})
        length = int.from_bytes(frame[:4], "big")
        assert protocol.check_frame_length(length) == length
        opcode, payload = protocol.decode_body(frame[4:])
        assert opcode == protocol.OP_EXECUTE
        assert payload == {"sql": "SELECT 1"}

    def test_empty_payload_frame(self):
        frame = protocol.encode_frame(protocol.OP_PING)
        opcode, payload = protocol.decode_body(frame[4:])
        assert (opcode, payload) == (protocol.OP_PING, None)

    def test_length_guard(self):
        with pytest.raises(ProtocolError, match="invalid frame length"):
            protocol.check_frame_length(0)
        with pytest.raises(ProtocolError, match="invalid frame length"):
            protocol.check_frame_length(protocol.MAX_FRAME + 1)

    def test_truncated_and_trailing_payloads(self):
        out = bytearray()
        protocol.encode_value(out, "hello")
        with pytest.raises(ProtocolError, match="truncated frame"):
            protocol.decode_value(bytes(out[:-2]))
        with pytest.raises(ProtocolError, match="trailing garbage"):
            protocol.decode_value(bytes(out) + b"\x00")

    def test_unknown_tag(self):
        with pytest.raises(ProtocolError, match="unknown value tag"):
            protocol.decode_value(b"\xfe")


class TestResultFrames:
    def test_result_header_and_rebuild(self):
        schema = Schema([Column("n", INT)])
        result = Result(rows=[(1,), (2,)], schema=schema, rowcount=2, messages=["ok"])
        result.resultsets.append((schema, result.rows))
        header = roundtrip(protocol.result_header(result, in_transaction=True))
        assert header["in_transaction"] is True
        assert header["row_total"] == 2
        rebuilt = protocol.build_result(header, [(1,), (2,)])
        assert rebuilt.rows == [(1,), (2,)]
        assert rebuilt.rowcount == 2
        assert rebuilt.messages == ["ok"]
        assert [column.name for column in rebuilt.schema] == ["n"]
        assert rebuilt.resultsets[-1][1] == [(1,), (2,)]


class TestErrorFrames:
    def test_taxonomy_class_reconstructed(self):
        payload = roundtrip(protocol.error_payload(ConstraintError("duplicate key")))
        with pytest.raises(ConstraintError, match="duplicate key"):
            protocol.raise_error(payload)

    def test_transient_bit_survives(self):
        payload = protocol.error_payload(OverloadError("shed"))
        assert payload["transient"] is True
        with pytest.raises(OverloadError) as info:
            protocol.raise_error(payload)
        assert is_transient(info.value)

    def test_unknown_kind_falls_back_to_remote_error(self):
        payload = {"kind": "SomebodyElsesError", "message": "boom", "transient": True}
        with pytest.raises(RemoteError) as info:
            protocol.raise_error(payload)
        assert info.value.kind == "SomebodyElsesError"
        assert is_transient(info.value)
        assert "boom" in str(info.value)
