"""Binder unit tests: namespaces, qualification, substitution."""

import pytest

from repro.errors import BindError
from repro.optimizer.binder import (
    Namespace,
    collect_aggregates,
    contains_aggregate,
    qualify_expression,
    substitute,
)
from repro.sql import ast, parse_expression


@pytest.fixture
def namespace():
    ns = Namespace()
    ns.add("c", ["cid", "cname"])
    ns.add("o", ["oid", "cid", "total"])
    return ns


class TestNamespace:
    def test_duplicate_alias_rejected(self, namespace):
        with pytest.raises(BindError, match="duplicate"):
            namespace.add("c", ["x"])

    def test_resolve_qualified(self, namespace):
        assert namespace.resolve_column("cid", "o") == "o"

    def test_resolve_unqualified_unique(self, namespace):
        assert namespace.resolve_column("total", None) == "o"

    def test_resolve_unqualified_ambiguous(self, namespace):
        with pytest.raises(BindError, match="ambiguous"):
            namespace.resolve_column("cid", None)

    def test_unknown_alias(self, namespace):
        with pytest.raises(BindError, match="unknown table alias"):
            namespace.resolve_column("cid", "zzz")

    def test_unknown_column(self, namespace):
        with pytest.raises(BindError, match="unknown column"):
            namespace.resolve_column("nope", None)

    def test_column_not_in_named_alias(self, namespace):
        with pytest.raises(BindError, match="no column"):
            namespace.resolve_column("total", "c")

    def test_case_insensitive(self, namespace):
        assert namespace.resolve_column("CNAME", "C") == "c"


class TestQualification:
    def test_unqualified_gets_owner(self, namespace):
        expression = qualify_expression(parse_expression("cname = 'x'"), namespace)
        assert expression.left.qualifier == "c"

    def test_already_qualified_kept(self, namespace):
        # Original spelling is preserved; resolution is case-insensitive.
        expression = qualify_expression(parse_expression("O.total > 1"), namespace)
        assert expression.left.qualifier.lower() == "o"

    def test_qualifies_deep_expressions(self, namespace):
        expression = qualify_expression(
            parse_expression("CASE WHEN cname LIKE 'a%' THEN total ELSE 0 END"),
            namespace,
        )
        columns = ast.expression_columns(expression)
        assert {column.qualifier for column in columns} == {"c", "o"}

    def test_qualifies_in_list_and_between(self, namespace):
        expression = qualify_expression(
            parse_expression("oid IN (1, 2) AND total BETWEEN 1 AND 2"), namespace
        )
        columns = ast.expression_columns(expression)
        assert all(column.qualifier == "o" for column in columns)

    def test_parameters_untouched(self, namespace):
        expression = qualify_expression(parse_expression("cname = @p"), namespace)
        assert isinstance(expression.right, ast.Parameter)


class TestSubstitution:
    def test_whole_node_replaced(self):
        target = parse_expression("SUM(x)")
        mapping = {target: ast.ColumnRef("_a0")}
        result = substitute(parse_expression("SUM(x) + 1"), mapping)
        assert isinstance(result.left, ast.ColumnRef)
        assert result.left.name == "_a0"

    def test_root_replacement(self):
        target = parse_expression("SUM(x)")
        mapping = {target: ast.ColumnRef("_a0")}
        result = substitute(parse_expression("SUM(x)"), mapping)
        assert result == ast.ColumnRef("_a0")

    def test_unmatched_stays(self):
        mapping = {parse_expression("SUM(y)"): ast.ColumnRef("_a0")}
        result = substitute(parse_expression("SUM(x)"), mapping)
        assert isinstance(result, ast.FuncCall)


class TestAggregateDetection:
    def test_contains_aggregate(self):
        assert contains_aggregate(parse_expression("1 + SUM(x)"))
        assert not contains_aggregate(parse_expression("UPPER(x)"))

    def test_collect_nested(self):
        calls = collect_aggregates(parse_expression("SUM(a) + COUNT(*) * MAX(b)"))
        assert sorted(call.name for call in calls) == ["COUNT", "MAX", "SUM"]
