"""Setup-script generation (paper §4).

Setting up an MTCache server uses two SQL scripts:

1. an automatically generated script that creates the shadow database —
   tables, indexes, views and permissions matching the target database on
   the backend (this module generates it from the backend catalog, playing
   the role of SQL Server's Enterprise Manager scripting plus the paper's
   small augmentation application);
2. a manually written script creating the cached materialized views
   (``CREATE CACHED VIEW ...``), which the cache server intercepts to
   provision replication subscriptions.
"""

from __future__ import annotations

from typing import List

from repro.catalog import Catalog


def _column_ddl(column) -> str:
    nullability = "" if column.nullable else " NOT NULL"
    return f"{column.name} {column.sql_type}{nullability}"


def generate_shadow_script(catalog: Catalog, only_tables=None) -> str:
    """Render the shadow-database DDL for a backend catalog.

    The script creates every table (with primary keys), every index and
    every non-materialized view. Materialized views on the backend are
    scripted as plain tables' worth of metadata is not needed: MTCache
    treats backend materialized views as cacheable sources, and their
    shadow entries are created the same way as tables when present.

    ``only_tables`` restricts the script to the named tables (and their
    indexes) — the paper's §7 minimal-shadowing suggestion.
    """
    wanted = (
        None if only_tables is None else {name.lower() for name in only_tables}
    )
    statements: List[str] = []
    for table in catalog.tables.values():
        if wanted is not None and table.name.lower() not in wanted:
            continue
        columns = ", ".join(_column_ddl(column) for column in table.schema)
        pk = ""
        if table.primary_key:
            pk = f", PRIMARY KEY ({', '.join(table.primary_key)})"
        statements.append(f"CREATE TABLE {table.name} ({columns}{pk})")
    for index in catalog.indexes.values():
        if wanted is not None and index.table.lower() not in wanted:
            continue
        unique = "UNIQUE " if index.unique else ""
        columns = ", ".join(index.columns)
        statements.append(
            f"CREATE {unique}INDEX {index.name} ON {index.table} ({columns})"
        )
    for view in catalog.views.values():
        if view.materialized or wanted is not None:
            continue
        statements.append(view.source_text or f"-- view {view.name} (no source text)")
    return ";\n".join(statements) + (";\n" if statements else "")


def generate_grant_script(catalog: Catalog) -> str:
    """Render GRANT statements mirroring the backend's permissions."""
    statements: List[str] = []
    seen_objects = set(catalog.tables) | set(catalog.views) | set(catalog.procedures)
    for object_name in sorted(seen_objects):
        for principal, permissions in catalog.permissions.grants_for(object_name).items():
            for permission in sorted(permissions):
                keyword = "EXEC" if permission == "EXECUTE" else permission
                statements.append(f"GRANT {keyword} ON {object_name} TO {principal}")
    return ";\n".join(statements) + (";\n" if statements else "")
