"""Engine micro-benchmarks: the operations the experiments are built on.

Not a paper table — these keep the substrate honest: point-query latency
through the cache, the bestseller query (the paper's most expensive
frequent query), plan-cache effectiveness, and replication apply
throughput.
"""

import pytest

from repro import MTCacheDeployment

from tests.conftest import make_shop_backend
from benchmarks.conftest import emit


@pytest.fixture(scope="module")
def env():
    backend = make_shop_backend(customers=2000, orders=4000)
    deployment = MTCacheDeployment(backend, "shop")
    cache = deployment.add_cache_server("micro")
    cache.create_cached_view(
        "CREATE CACHED VIEW mc AS SELECT cid, cname, segment FROM customer"
    )
    cache.create_cached_view(
        "CREATE CACHED VIEW mo AS SELECT oid, o_cid, total FROM orders"
    )
    return backend, deployment, cache


def test_bench_point_query_via_cache(env, benchmark):
    _, _, cache = env
    result = benchmark(
        lambda: cache.execute("SELECT cname FROM customer WHERE cid = @c", params={"c": 777})
    )
    assert result.rows == [("cust777",)]


def test_bench_point_query_direct_backend(env, benchmark):
    backend, _, _ = env
    result = benchmark(
        lambda: backend.execute(
            "SELECT cname FROM customer WHERE cid = @c", params={"c": 777}, database="shop"
        )
    )
    assert result.rows == [("cust777",)]


def test_bench_group_join_query(env, benchmark):
    _, _, cache = env
    sql = (
        "SELECT TOP 10 c.cname, SUM(o.total) AS spent "
        "FROM customer c JOIN orders o ON o.o_cid = c.cid "
        "WHERE c.segment = 'gold' GROUP BY c.cname ORDER BY spent DESC"
    )
    result = benchmark(lambda: cache.execute(sql))
    assert len(result.rows) == 10


def test_bench_plan_cache_hit(env, benchmark, capsys):
    """Planning amortization: a cache hit must be orders of magnitude
    cheaper than planning from scratch."""
    import time

    _, _, cache = env
    sql = "SELECT cname FROM customer WHERE cid <= @c"
    cache.plan(sql)  # warm

    start = time.perf_counter()
    from repro.sql import parse

    statement = parse(sql)
    optimizer = cache.server.optimizer_for(cache.database)
    optimizer.plan_select(statement)
    cold = time.perf_counter() - start

    def hit():
        return cache.plan(sql)

    result = benchmark(hit)
    assert result is not None
    emit(capsys, "plan cache", [f"cold planning: {cold * 1e6:.0f} us"])


def test_bench_replication_apply_throughput(env, benchmark):
    backend, deployment, cache = env
    counter = [3000]

    def apply_batch():
        base = counter[0]
        counter[0] += 50
        for i in range(base, base + 50):
            backend.execute(
                f"INSERT INTO customer VALUES ({i}, 'c{i}', 'a', 'base')",
                database="shop",
            )
        deployment.sync()

    benchmark.pedantic(apply_batch, rounds=5, iterations=1)
    # Under --benchmark-disable (CI smoke) pedantic runs a single round,
    # so assert one batch's worth: every inserted row reached the cache.
    applied = cache.execute("SELECT COUNT(*) FROM mc WHERE cid >= 3000").scalar
    assert applied >= 50
    assert applied == counter[0] - 3000
