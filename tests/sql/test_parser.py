"""Parser tests over the T-SQL subset."""

import pytest

from repro.common.types import TypeKind
from repro.errors import ParseError
from repro.sql import ast, parse, parse_expression, parse_statements


class TestSelect:
    def test_simple(self):
        statement = parse("SELECT a, b FROM t")
        assert isinstance(statement, ast.Select)
        assert len(statement.items) == 2
        assert statement.from_clause.object_name == "t"

    def test_star(self):
        statement = parse("SELECT * FROM t")
        assert isinstance(statement.items[0].expression, ast.Star)

    def test_qualified_star(self):
        statement = parse("SELECT t.* FROM t")
        assert statement.items[0].expression.qualifier == "t"

    def test_top(self):
        statement = parse("SELECT TOP 5 a FROM t")
        assert statement.top == ast.Literal(5)

    def test_top_parameter(self):
        statement = parse("SELECT TOP (@n) a FROM t")
        assert statement.top == ast.Parameter("n")

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct

    def test_aliases(self):
        statement = parse("SELECT a AS x, b y FROM t")
        assert statement.items[0].alias == "x"
        assert statement.items[1].alias == "y"

    def test_where_group_having_order(self):
        statement = parse(
            "SELECT a, COUNT(*) c FROM t WHERE b > 1 "
            "GROUP BY a HAVING COUNT(*) > 2 ORDER BY c DESC, a"
        )
        assert statement.where is not None
        assert len(statement.group_by) == 1
        assert statement.having is not None
        assert statement.order_by[0].descending
        assert not statement.order_by[1].descending

    def test_joins(self):
        statement = parse(
            "SELECT * FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y"
        )
        outer = statement.from_clause
        assert isinstance(outer, ast.JoinRef)
        assert outer.kind == "LEFT"
        assert outer.left.kind == "INNER"

    def test_comma_join_is_cross(self):
        statement = parse("SELECT * FROM a, b")
        assert statement.from_clause.kind == "CROSS"

    def test_derived_table(self):
        statement = parse("SELECT * FROM (SELECT a FROM t) AS d")
        assert isinstance(statement.from_clause, ast.DerivedTable)
        assert statement.from_clause.alias == "d"

    def test_four_part_name(self):
        statement = parse("SELECT * FROM srv.db.dbo.part p")
        table = statement.from_clause
        assert table.parts == ("srv", "db", "dbo", "part")
        assert table.server == "srv"
        assert table.binding_name == "p"

    def test_five_part_name_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT * FROM a.b.c.d.e")

    def test_freshness_clause(self):
        statement = parse("SELECT a FROM t WITH FRESHNESS 30 SECONDS")
        assert statement.freshness.max_staleness_seconds == 30.0

    def test_freshness_minutes(self):
        statement = parse("SELECT a FROM t WITH FRESHNESS 2 MINUTES")
        assert statement.freshness.max_staleness_seconds == 120.0

    def test_select_assignment(self):
        statement = parse("SELECT @x = a FROM t")
        assert statement.items[0].target_parameter == "x"

    def test_no_from(self):
        statement = parse("SELECT 1, 'a'")
        assert statement.from_clause is None

    def test_in_subquery(self):
        statement = parse("SELECT a FROM t WHERE a IN (SELECT b FROM u)")
        assert isinstance(statement.where, ast.InSubquery)

    def test_exists(self):
        statement = parse("SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u)")
        assert isinstance(statement.where, ast.Exists)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t extra stuff ,")


class TestExpressions:
    def test_precedence_arithmetic(self):
        expression = parse_expression("1 + 2 * 3")
        assert expression.op == "+"
        assert expression.right.op == "*"

    def test_precedence_logic(self):
        expression = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert expression.op == "OR"
        assert expression.right.op == "AND"

    def test_not(self):
        expression = parse_expression("NOT a = 1")
        assert isinstance(expression, ast.UnaryOp)

    def test_between(self):
        expression = parse_expression("a BETWEEN 1 AND 5")
        assert isinstance(expression, ast.Between)

    def test_not_between(self):
        expression = parse_expression("a NOT BETWEEN 1 AND 5")
        assert expression.negated

    def test_like(self):
        expression = parse_expression("name LIKE '%x%'")
        assert isinstance(expression, ast.Like)

    def test_in_list(self):
        expression = parse_expression("a IN (1, 2, 3)")
        assert len(expression.items) == 3

    def test_is_null_and_not_null(self):
        assert not parse_expression("a IS NULL").negated
        assert parse_expression("a IS NOT NULL").negated

    def test_case_when(self):
        expression = parse_expression("CASE WHEN a = 1 THEN 'x' ELSE 'y' END")
        assert isinstance(expression, ast.CaseWhen)
        assert expression.else_result == ast.Literal("y")

    def test_function_calls(self):
        expression = parse_expression("COALESCE(a, UPPER(b), 1)")
        assert expression.name == "COALESCE"
        assert expression.args[1].name == "UPPER"

    def test_count_star(self):
        expression = parse_expression("COUNT(*)")
        assert isinstance(expression.args[0], ast.Star)

    def test_count_distinct(self):
        assert parse_expression("COUNT(DISTINCT a)").distinct

    def test_unary_minus_folds_literals(self):
        assert parse_expression("-5") == ast.Literal(-5)

    def test_negative_in_arithmetic(self):
        expression = parse_expression("a * -2")
        assert expression.right == ast.Literal(-2)

    def test_string_concat_plus(self):
        expression = parse_expression("'%' + @w + '%'")
        assert expression.op == "+"


class TestDml:
    def test_insert_values(self):
        statement = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert statement.columns == ("a", "b")
        assert len(statement.rows) == 2

    def test_insert_select(self):
        statement = parse("INSERT INTO t SELECT a, b FROM u")
        assert statement.select is not None

    def test_update(self):
        statement = parse("UPDATE t SET a = 1, b = b + 1 WHERE id = 3")
        assert len(statement.assignments) == 2
        assert statement.where is not None

    def test_delete(self):
        statement = parse("DELETE FROM t WHERE a < 5")
        assert statement.table.object_name == "t"

    def test_delete_without_from(self):
        statement = parse("DELETE t")
        assert statement.table.object_name == "t"


class TestDdl:
    def test_create_table(self):
        statement = parse(
            "CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(40) NOT NULL, "
            "score FLOAT, d NUMERIC(10,2))"
        )
        assert statement.columns[0].primary_key
        assert not statement.columns[1].nullable
        assert statement.columns[3].sql_type.kind is TypeKind.NUMERIC

    def test_create_table_composite_pk(self):
        statement = parse("CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b))")
        assert statement.primary_key == ("a", "b")

    def test_create_table_foreign_key(self):
        statement = parse(
            "CREATE TABLE t (a INT, FOREIGN KEY (a) REFERENCES u (x))"
        )
        assert statement.foreign_keys[0].ref_table == "u"

    def test_create_index(self):
        statement = parse("CREATE UNIQUE INDEX ix ON t (a, b)")
        assert statement.unique
        assert statement.columns == ("a", "b")

    def test_create_views(self):
        plain = parse("CREATE VIEW v AS SELECT a FROM t")
        materialized = parse("CREATE MATERIALIZED VIEW v AS SELECT a FROM t")
        cached = parse("CREATE CACHED VIEW v AS SELECT a FROM t")
        assert not plain.materialized
        assert materialized.materialized and not materialized.cached
        assert cached.cached and cached.materialized

    def test_create_procedure(self):
        statement = parse(
            """
            CREATE PROCEDURE p @a INT, @b VARCHAR(10) = 'x' AS
            BEGIN
                DECLARE @c INT = 0
                IF @a > 1
                BEGIN
                    SET @c = @a
                END
                ELSE
                    SET @c = 0
                WHILE @c > 0
                    SET @c = @c - 1
                RETURN @c
            END
            """
        )
        assert len(statement.params) == 2
        assert statement.params[1].default == ast.Literal("x")
        kinds = [type(s).__name__ for s in statement.body]
        assert kinds == ["Declare", "IfStatement", "WhileStatement", "ReturnStatement"]

    def test_drop(self):
        assert parse("DROP TABLE t").kind == "TABLE"
        assert parse("DROP PROC p").kind == "PROCEDURE"

    def test_grant(self):
        statement = parse("GRANT SELECT ON t TO alice")
        assert statement.permission == "SELECT"
        assert statement.principal == "alice"


class TestExecAndBatches:
    def test_exec_named_args(self):
        statement = parse("EXEC p @a = 1, @b = 'x'")
        assert statement.arguments[0] == ("a", ast.Literal(1))

    def test_exec_positional(self):
        statement = parse("EXEC p 1, 2")
        assert statement.arguments[0][0] is None

    def test_exec_no_args(self):
        assert parse("EXEC p").arguments == ()

    def test_exec_four_part(self):
        statement = parse("EXECUTE srv.db.dbo.p 1")
        assert statement.procedure == ("srv", "db", "dbo", "p")

    def test_transactions(self):
        batch = parse_statements("BEGIN TRANSACTION; COMMIT; ROLLBACK")
        assert [type(s).__name__ for s in batch] == [
            "BeginTransaction",
            "CommitTransaction",
            "RollbackTransaction",
        ]

    def test_batch_with_semicolons(self):
        batch = parse_statements("SELECT 1;; SELECT 2;")
        assert len(batch) == 2

    def test_empty_batch(self):
        assert parse_statements("  -- nothing\n") == []
