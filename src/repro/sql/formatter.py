"""AST → SQL text formatter.

MTCache ships remote subexpressions to the backend as *textual SQL* (the
paper notes plans cannot be shipped, only text, forcing re-optimization at
the backend). This module regenerates parseable SQL from any AST node, so a
plan fragment rooted at a DataTransfer operator can be converted back to a
query string and executed on a linked server.
"""

from __future__ import annotations


from repro.common.types import sql_literal
from repro.sql import ast


def format_statement(statement: ast.Statement) -> str:
    """Render a statement AST back to SQL text."""
    if isinstance(statement, ast.Select):
        return _format_select(statement)
    if isinstance(statement, ast.UnionAll):
        return " UNION ALL ".join(_format_select(branch) for branch in statement.branches)
    if isinstance(statement, ast.Insert):
        return _format_insert(statement)
    if isinstance(statement, ast.Update):
        return _format_update(statement)
    if isinstance(statement, ast.Delete):
        return _format_delete(statement)
    if isinstance(statement, ast.Execute):
        return _format_execute(statement)
    if isinstance(statement, ast.CreateView):
        kind = "CACHED VIEW" if statement.cached else (
            "MATERIALIZED VIEW" if statement.materialized else "VIEW"
        )
        return f"CREATE {kind} {statement.name} AS {_format_select(statement.select)}"
    if isinstance(statement, ast.BeginTransaction):
        return "BEGIN TRANSACTION"
    if isinstance(statement, ast.CommitTransaction):
        return "COMMIT"
    if isinstance(statement, ast.RollbackTransaction):
        return "ROLLBACK"
    raise ValueError(f"cannot format statement of type {type(statement).__name__}")


def format_expression(expression: ast.Expression) -> str:
    """Render an expression AST back to SQL text."""
    if isinstance(expression, ast.Literal):
        return sql_literal(expression.value)
    if isinstance(expression, ast.ColumnRef):
        return str(expression)
    if isinstance(expression, ast.Parameter):
        return f"@{expression.name}"
    if isinstance(expression, ast.Star):
        return f"{expression.qualifier}.*" if expression.qualifier else "*"
    if isinstance(expression, ast.BinaryOp):
        left = _maybe_paren(expression.left, expression.op)
        right = _maybe_paren(expression.right, expression.op, right_operand=True)
        return f"{left} {expression.op} {right}"
    if isinstance(expression, ast.UnaryOp):
        operand = format_expression(expression.operand)
        if expression.op == "NOT":
            return f"NOT ({operand})"
        return f"-({operand})"
    if isinstance(expression, ast.IsNull):
        middle = "IS NOT NULL" if expression.negated else "IS NULL"
        return f"{format_expression(expression.operand)} {middle}"
    if isinstance(expression, ast.InList):
        items = ", ".join(format_expression(item) for item in expression.items)
        keyword = "NOT IN" if expression.negated else "IN"
        return f"{format_expression(expression.operand)} {keyword} ({items})"
    if isinstance(expression, ast.InSubquery):
        keyword = "NOT IN" if expression.negated else "IN"
        return (
            f"{format_expression(expression.operand)} {keyword} "
            f"({_format_select(expression.subquery)})"
        )
    if isinstance(expression, ast.Between):
        keyword = "NOT BETWEEN" if expression.negated else "BETWEEN"
        return (
            f"{format_expression(expression.operand)} {keyword} "
            f"{format_expression(expression.low)} AND {format_expression(expression.high)}"
        )
    if isinstance(expression, ast.Like):
        keyword = "NOT LIKE" if expression.negated else "LIKE"
        return (
            f"{format_expression(expression.operand)} {keyword} "
            f"{format_expression(expression.pattern)}"
        )
    if isinstance(expression, ast.CaseWhen):
        parts = ["CASE"]
        for condition, result in expression.whens:
            parts.append(f"WHEN {format_expression(condition)} THEN {format_expression(result)}")
        if expression.else_result is not None:
            parts.append(f"ELSE {format_expression(expression.else_result)}")
        parts.append("END")
        return " ".join(parts)
    if isinstance(expression, ast.FuncCall):
        args = ", ".join(format_expression(arg) for arg in expression.args)
        distinct = "DISTINCT " if expression.distinct else ""
        return f"{expression.name}({distinct}{args})"
    if isinstance(expression, ast.Exists):
        keyword = "NOT EXISTS" if expression.negated else "EXISTS"
        return f"{keyword} ({_format_select(expression.subquery)})"
    if isinstance(expression, ast.ScalarSubquery):
        return f"({_format_select(expression.subquery)})"
    raise ValueError(f"cannot format expression of type {type(expression).__name__}")


_PRECEDENCE = {
    "OR": 1,
    "AND": 2,
    "=": 3,
    "<>": 3,
    "<": 3,
    "<=": 3,
    ">": 3,
    ">=": 3,
    "+": 4,
    "-": 4,
    "*": 5,
    "/": 5,
    "%": 5,
}


_COMPARISONS = frozenset({"=", "<>", "<", "<=", ">", ">="})


def _maybe_paren(
    expression: ast.Expression, parent_op: str, right_operand: bool = False
) -> str:
    text = format_expression(expression)
    # NOT binds looser than comparisons/arithmetic in the grammar, so as an
    # operand of any binary operator it must be parenthesized.
    if isinstance(expression, ast.UnaryOp) and expression.op == "NOT":
        return f"({text})"
    if isinstance(expression, ast.BinaryOp):
        if _PRECEDENCE[expression.op] < _PRECEDENCE[parent_op]:
            return f"({text})"
        # Comparisons are non-associative (a single grammar level): a
        # comparison operand of a comparison needs explicit parentheses.
        if parent_op in _COMPARISONS and expression.op in _COMPARISONS:
            return f"({text})"
        # The grammar is left-associative, so a same-precedence expression
        # in right-operand position needs explicit parentheses — both for
        # correctness under non-associative operators (-, /, %) and so the
        # rendered text reparses to the identical tree.
        if right_operand and _PRECEDENCE[expression.op] == _PRECEDENCE[parent_op]:
            return f"({text})"
    return text


def _format_select(select: ast.Select) -> str:
    parts = ["SELECT"]
    if select.top is not None:
        parts.append(f"TOP {format_expression(select.top)}")
    if select.distinct:
        parts.append("DISTINCT")
    items = []
    for item in select.items:
        text = format_expression(item.expression)
        if item.target_parameter:
            text = f"@{item.target_parameter} = {text}"
        elif item.alias:
            text = f"{text} AS {item.alias}"
        items.append(text)
    parts.append(", ".join(items))
    if select.from_clause is not None:
        parts.append("FROM " + _format_table_ref(select.from_clause))
    if select.where is not None:
        parts.append("WHERE " + format_expression(select.where))
    if select.group_by:
        parts.append("GROUP BY " + ", ".join(format_expression(e) for e in select.group_by))
    if select.having is not None:
        parts.append("HAVING " + format_expression(select.having))
    if select.order_by:
        entries = []
        for entry in select.order_by:
            text = format_expression(entry.expression)
            if entry.descending:
                text += " DESC"
            entries.append(text)
        parts.append("ORDER BY " + ", ".join(entries))
    if select.freshness is not None:
        seconds = select.freshness.max_staleness_seconds
        parts.append(f"WITH FRESHNESS {seconds:g} SECONDS")
    return " ".join(parts)


def _format_table_ref(ref: ast.TableRef) -> str:
    if isinstance(ref, ast.TableName):
        name = ".".join(ref.parts)
        return f"{name} AS {ref.alias}" if ref.alias else name
    if isinstance(ref, ast.DerivedTable):
        return f"({_format_select(ref.select)}) AS {ref.alias}"
    if isinstance(ref, ast.JoinRef):
        left = _format_table_ref(ref.left)
        right = _format_table_ref(ref.right)
        if ref.kind == "CROSS":
            return f"{left} CROSS JOIN {right}"
        condition = format_expression(ref.condition) if ref.condition else "1 = 1"
        keyword = "LEFT JOIN" if ref.kind == "LEFT" else "INNER JOIN"
        return f"{left} {keyword} {right} ON {condition}"
    raise ValueError(f"cannot format table ref of type {type(ref).__name__}")


def _format_insert(statement: ast.Insert) -> str:
    table = ".".join(statement.table.parts)
    columns = f" ({', '.join(statement.columns)})" if statement.columns else ""
    if statement.select is not None:
        return f"INSERT INTO {table}{columns} {_format_select(statement.select)}"
    rows = ", ".join(
        "(" + ", ".join(format_expression(value) for value in row) + ")"
        for row in statement.rows
    )
    return f"INSERT INTO {table}{columns} VALUES {rows}"


def _format_update(statement: ast.Update) -> str:
    table = ".".join(statement.table.parts)
    assignments = ", ".join(
        f"{name} = {format_expression(value)}" for name, value in statement.assignments
    )
    text = f"UPDATE {table} SET {assignments}"
    if statement.where is not None:
        text += f" WHERE {format_expression(statement.where)}"
    return text


def _format_delete(statement: ast.Delete) -> str:
    table = ".".join(statement.table.parts)
    text = f"DELETE FROM {table}"
    if statement.where is not None:
        text += f" WHERE {format_expression(statement.where)}"
    return text


def _format_execute(statement: ast.Execute) -> str:
    name = ".".join(statement.procedure)
    if not statement.arguments:
        return f"EXEC {name}"
    rendered = []
    for arg_name, value in statement.arguments:
        text = format_expression(value)
        if arg_name:
            text = f"@{arg_name} = {text}"
        rendered.append(text)
    return f"EXEC {name} {', '.join(rendered)}"
