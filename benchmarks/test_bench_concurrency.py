"""Concurrent-client benchmark: threaded TPC-W over the connection pool.

The virtual-time drivers measure *work*; this file measures *wall-clock*
behavior of the concurrent execution core: worker threads checking pooled
connections out per interaction, the engine serializing them through the
database latch and table locks. Two experiments:

1. Scaling: the same cache-enabled TPC-W deployment driven for the same
   wall time by 1 worker and by 4 workers. Think time is real, so workers
   overlap their sleeps; with locking correct and uncontended reads
   sharing the latch, 4 workers must deliver at least twice the
   single-worker throughput (the acceptance criterion — in practice it is
   close to 4x at this think-time/work ratio).
2. Isolation under contention: 8 workers hammer read-modify-write
   increments of one shared row through the pool, three seeded runs. A
   lost update — two increments interleaving between read and write —
   would leave the final total short. Locking makes each autocommit
   statement atomic, so the total must be exact and the error count zero.
"""

from __future__ import annotations

import sys

from repro.client import ConnectionPool, connect
from repro.engine.server import Server
from repro.tpcw.config import TPCWConfig
from repro.tpcw.driver import ThreadedLoadDriver
from repro.tpcw.setup import build_backend, enable_caching
from repro.tpcw.workload import MIXES

from benchmarks.conftest import emit

DURATION = 1.0
THINK_TIME = 0.02


def build_cached_env(tag: str):
    backend, config = build_backend(TPCWConfig(num_items=60, num_ebs=10))
    deployment, caches = enable_caching(backend, [f"conc_{tag}"], config)
    return deployment, caches[0], config


def run_threaded(workers: int, tag: str, seed: int = 17):
    deployment, cache, config = build_cached_env(tag)
    pool = ConnectionPool(
        lambda: connect(cache.server, database="tpcw"), size=workers
    )
    driver = ThreadedLoadDriver(
        pool,
        config,
        MIXES["Shopping"],
        workers=workers,
        think_time=THINK_TIME,
        deployment=deployment,
        seed=seed,
    )
    stats = driver.run(DURATION)
    pool.close()
    return stats


def test_bench_threaded_scaling(capsys):
    single = run_threaded(1, "w1")
    quad = run_threaded(4, "w4")

    emit(
        capsys,
        "Threaded TPC-W scaling (Shopping mix, cache-enabled, wall clock)",
        [
            f"{'workers':>8s} {'interactions':>13s} {'errors':>7s} {'ints/s':>8s}",
            f"{1:8d} {single.interactions:13d} {single.errors:7d} {single.throughput:8.1f}",
            f"{4:8d} {quad.interactions:13d} {quad.errors:7d} {quad.throughput:8.1f}",
        ],
    )

    assert single.errors == 0
    assert quad.errors == 0
    assert single.interactions > 0
    # Acceptance: 4 workers sustain at least 2x single-worker throughput.
    assert quad.throughput >= 2 * single.throughput


def test_bench_threaded_stress_no_lost_updates(capsys):
    workers = 8
    increments = 25
    old_interval = sys.getswitchinterval()
    sys.setswitchinterval(1e-4)  # force frequent preemption
    try:
        rows_report = []
        for seed in (3, 11, 42):
            backend = Server("stress")
            backend.create_database("bench")
            backend.execute(
                "CREATE TABLE counters (cid INT PRIMARY KEY, total INT NOT NULL)",
                database="bench",
            )
            backend.execute(
                "INSERT INTO counters (cid, total) VALUES (1, 0)", database="bench"
            )
            pool = ConnectionPool(
                lambda: connect(backend, database="bench"), size=workers
            )

            import threading

            def hammer(index: int) -> None:
                for step in range(increments):
                    with pool.connection() as connection:
                        cursor = connection.cursor()
                        cursor.execute(
                            "UPDATE counters SET total = total + 1 WHERE cid = 1"
                        )
                        if (index + step) % 3 == 0:
                            cursor.execute(
                                "SELECT total FROM counters WHERE cid = 1"
                            )
                            assert cursor.fetchone()[0] >= 1

            threads = [
                threading.Thread(target=hammer, args=(index,), daemon=True)
                for index in range(workers)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            total = backend.execute(
                "SELECT total FROM counters WHERE cid = 1", database="bench"
            ).scalar
            pool.close()
            rows_report.append(f"seed {seed:3d}: total={total} expected={workers * increments}")
            # A lost update would leave the counter short of exact.
            assert total == workers * increments
    finally:
        sys.setswitchinterval(old_interval)

    emit(
        capsys,
        f"Threaded stress: {workers} writers x {increments} increments, shared row",
        rows_report,
    )
