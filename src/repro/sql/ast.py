"""AST node classes for the T-SQL subset.

Nodes are plain dataclasses. Expression nodes and statement nodes share a
small base so visitors (binder, evaluator, formatter) can dispatch on type.
Table names carry up to four dot-separated parts, matching SQL Server's
``server.database.schema.object`` linked-server naming.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.common.types import SqlType


class Node:
    """Base class for every AST node."""


class Expression(Node):
    """Base class for expression nodes."""


class Statement(Node):
    """Base class for statement nodes."""


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Literal(Expression):
    """A constant: number, string, or NULL (``value is None``)."""

    value: Any


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A possibly qualified column reference like ``c.name``."""

    name: str
    qualifier: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class Parameter(Expression):
    """A run-time parameter or local variable marker, ``@name``."""

    name: str


@dataclass(frozen=True)
class Star(Expression):
    """``*`` or ``alias.*`` in a select list or COUNT(*)."""

    qualifier: Optional[str] = None


@dataclass(frozen=True)
class BinaryOp(Expression):
    """A binary operation: arithmetic, comparison, AND/OR."""

    op: str  # one of + - * / % = <> < <= > >= AND OR
    left: Expression
    right: Expression


@dataclass(frozen=True)
class UnaryOp(Expression):
    """NOT or unary minus."""

    op: str  # "NOT" or "-"
    operand: Expression


@dataclass(frozen=True)
class IsNull(Expression):
    """``expr IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False


@dataclass(frozen=True)
class InList(Expression):
    """``expr [NOT] IN (value, ...)``."""

    operand: Expression
    items: Tuple[Expression, ...]
    negated: bool = False


@dataclass(frozen=True)
class InSubquery(Expression):
    """``expr [NOT] IN (SELECT ...)``."""

    operand: Expression
    subquery: "Select"
    negated: bool = False


@dataclass(frozen=True)
class Between(Expression):
    """``expr [NOT] BETWEEN low AND high``."""

    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False


@dataclass(frozen=True)
class Like(Expression):
    """``expr [NOT] LIKE pattern`` with ``%`` and ``_`` wildcards."""

    operand: Expression
    pattern: Expression
    negated: bool = False


@dataclass(frozen=True)
class CaseWhen(Expression):
    """Searched CASE expression."""

    whens: Tuple[Tuple[Expression, Expression], ...]
    else_result: Optional[Expression] = None


@dataclass(frozen=True)
class FuncCall(Expression):
    """A function call: aggregate (COUNT/SUM/AVG/MIN/MAX) or scalar."""

    name: str  # uppercased
    args: Tuple[Expression, ...]
    distinct: bool = False

    @property
    def is_aggregate(self) -> bool:
        return self.name in AGGREGATE_FUNCTIONS


AGGREGATE_FUNCTIONS = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})


@dataclass(frozen=True)
class Exists(Expression):
    """``[NOT] EXISTS (SELECT ...)``."""

    subquery: "Select"
    negated: bool = False


@dataclass(frozen=True)
class ScalarSubquery(Expression):
    """A parenthesised subquery used as a scalar value."""

    subquery: "Select"


# ---------------------------------------------------------------------------
# Table references
# ---------------------------------------------------------------------------


class TableRef(Node):
    """Base class for FROM-clause items."""


@dataclass(frozen=True)
class TableName(TableRef):
    """A (possibly multi-part) table or view name with an optional alias.

    ``parts`` is 1-4 names; four parts means
    ``linked_server.database.schema.object``.
    """

    parts: Tuple[str, ...]
    alias: Optional[str] = None

    @property
    def object_name(self) -> str:
        return self.parts[-1]

    @property
    def server(self) -> Optional[str]:
        """The linked-server part when the name has four parts."""
        if len(self.parts) == 4:
            return self.parts[0]
        return None

    @property
    def binding_name(self) -> str:
        """The name other clauses use to refer to this table."""
        return self.alias or self.object_name

    def __str__(self) -> str:
        name = ".".join(self.parts)
        return f"{name} AS {self.alias}" if self.alias else name


@dataclass(frozen=True)
class DerivedTable(TableRef):
    """A parenthesised subquery in FROM, with a mandatory alias."""

    select: "Select"
    alias: str


@dataclass(frozen=True)
class JoinRef(TableRef):
    """An explicit join between two table references."""

    kind: str  # INNER, LEFT, CROSS
    left: TableRef
    right: TableRef
    condition: Optional[Expression] = None  # None only for CROSS


# ---------------------------------------------------------------------------
# SELECT machinery
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem(Node):
    """One select-list entry: an expression, optional alias, optional
    T-SQL assignment target (``SELECT @x = expr``)."""

    expression: Expression
    alias: Optional[str] = None
    target_parameter: Optional[str] = None


@dataclass(frozen=True)
class OrderItem(Node):
    """One ORDER BY entry."""

    expression: Expression
    descending: bool = False


@dataclass(frozen=True)
class FreshnessSpec(Node):
    """The paper's proposed freshness clause: result may be this stale."""

    max_staleness_seconds: float


@dataclass(frozen=True)
class Select(Statement):
    """A SELECT statement (also used as a subquery body)."""

    items: Tuple[SelectItem, ...]
    from_clause: Optional[TableRef] = None
    where: Optional[Expression] = None
    group_by: Tuple[Expression, ...] = ()
    having: Optional[Expression] = None
    order_by: Tuple[OrderItem, ...] = ()
    top: Optional[Expression] = None
    distinct: bool = False
    freshness: Optional[FreshnessSpec] = None


@dataclass(frozen=True)
class Explain(Statement):
    """``EXPLAIN <select>`` — return the optimizer's plan as text rows."""

    statement: "Select"
    costs: bool = False  # EXPLAIN WITH COSTS


@dataclass(frozen=True)
class UnionAll(Statement):
    """``select UNION ALL select [UNION ALL ...]`` (bag union).

    Branch select lists must have equal arity; the first branch names the
    output columns, as in T-SQL.
    """

    branches: Tuple[Select, ...]


# ---------------------------------------------------------------------------
# DML
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Insert(Statement):
    """INSERT ... VALUES or INSERT ... SELECT."""

    table: TableName
    columns: Tuple[str, ...] = ()
    rows: Tuple[Tuple[Expression, ...], ...] = ()
    select: Optional[Select] = None


@dataclass(frozen=True)
class Update(Statement):
    """UPDATE table SET col = expr, ... [WHERE]."""

    table: TableName
    assignments: Tuple[Tuple[str, Expression], ...]
    where: Optional[Expression] = None


@dataclass(frozen=True)
class Delete(Statement):
    """DELETE FROM table [WHERE]."""

    table: TableName
    where: Optional[Expression] = None


# ---------------------------------------------------------------------------
# DDL
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnDef(Node):
    """A column definition inside CREATE TABLE."""

    name: str
    sql_type: SqlType
    nullable: bool = True
    primary_key: bool = False
    default: Optional[Expression] = None


@dataclass(frozen=True)
class ForeignKeyDef(Node):
    """A table-level FOREIGN KEY constraint."""

    columns: Tuple[str, ...]
    ref_table: str
    ref_columns: Tuple[str, ...]


@dataclass(frozen=True)
class CreateTable(Statement):
    """CREATE TABLE with column and table-level constraints."""

    name: str
    columns: Tuple[ColumnDef, ...]
    primary_key: Tuple[str, ...] = ()
    foreign_keys: Tuple[ForeignKeyDef, ...] = ()


@dataclass(frozen=True)
class CreateIndex(Statement):
    """CREATE [UNIQUE] [CLUSTERED] INDEX name ON table (cols)."""

    name: str
    table: str
    columns: Tuple[str, ...]
    unique: bool = False
    clustered: bool = False


@dataclass(frozen=True)
class CreateView(Statement):
    """CREATE [MATERIALIZED|CACHED] VIEW name AS select.

    ``cached`` marks MTCache cached views; creating one on a cache server
    automatically provisions a replication subscription.
    """

    name: str
    select: Select
    materialized: bool = False
    cached: bool = False


@dataclass(frozen=True)
class ProcedureParam(Node):
    """A stored-procedure parameter declaration."""

    name: str
    sql_type: SqlType
    default: Optional[Expression] = None


@dataclass(frozen=True)
class CreateProcedure(Statement):
    """CREATE PROCEDURE name @p type, ... AS BEGIN body END."""

    name: str
    params: Tuple[ProcedureParam, ...]
    body: Tuple[Statement, ...]


@dataclass(frozen=True)
class DropObject(Statement):
    """DROP TABLE/INDEX/VIEW/PROCEDURE name."""

    kind: str  # TABLE, INDEX, VIEW, PROCEDURE
    name: str


@dataclass(frozen=True)
class Grant(Statement):
    """GRANT SELECT ON object TO principal (simplified permission model)."""

    permission: str
    object_name: str
    principal: str


# ---------------------------------------------------------------------------
# Procedural statements (T-SQL control flow)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Declare(Statement):
    """DECLARE @name type [= expr]."""

    name: str
    sql_type: SqlType
    initial: Optional[Expression] = None


@dataclass(frozen=True)
class SetVariable(Statement):
    """SET @name = expr."""

    name: str
    value: Expression


@dataclass(frozen=True)
class IfStatement(Statement):
    """IF cond BEGIN ... END [ELSE BEGIN ... END]."""

    condition: Expression
    then_body: Tuple[Statement, ...]
    else_body: Tuple[Statement, ...] = ()


@dataclass(frozen=True)
class WhileStatement(Statement):
    """WHILE cond BEGIN ... END."""

    condition: Expression
    body: Tuple[Statement, ...]


@dataclass(frozen=True)
class ReturnStatement(Statement):
    """RETURN [expr]."""

    value: Optional[Expression] = None


@dataclass(frozen=True)
class PrintStatement(Statement):
    """PRINT expr (diagnostics only)."""

    value: Expression


@dataclass(frozen=True)
class Execute(Statement):
    """EXEC proc [@p = expr | expr, ...]; proc may be multi-part."""

    procedure: Tuple[str, ...]
    arguments: Tuple[Tuple[Optional[str], Expression], ...] = ()


# ---------------------------------------------------------------------------
# Transactions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BeginTransaction(Statement):
    """BEGIN TRANSACTION."""


@dataclass(frozen=True)
class CommitTransaction(Statement):
    """COMMIT [TRANSACTION]."""


@dataclass(frozen=True)
class RollbackTransaction(Statement):
    """ROLLBACK [TRANSACTION]."""


def walk_expression(expression: Expression):
    """Yield ``expression`` and every expression nested beneath it."""
    stack = [expression]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, BinaryOp):
            stack.extend((node.left, node.right))
        elif isinstance(node, UnaryOp):
            stack.append(node.operand)
        elif isinstance(node, IsNull):
            stack.append(node.operand)
        elif isinstance(node, InList):
            stack.append(node.operand)
            stack.extend(node.items)
        elif isinstance(node, InSubquery):
            stack.append(node.operand)
        elif isinstance(node, Between):
            stack.extend((node.operand, node.low, node.high))
        elif isinstance(node, Like):
            stack.extend((node.operand, node.pattern))
        elif isinstance(node, CaseWhen):
            for condition, result in node.whens:
                stack.extend((condition, result))
            if node.else_result is not None:
                stack.append(node.else_result)
        elif isinstance(node, FuncCall):
            stack.extend(node.args)


def expression_parameters(expression: Expression) -> List[str]:
    """Return the names of all ``@parameters`` referenced by an expression."""
    return [
        node.name for node in walk_expression(expression) if isinstance(node, Parameter)
    ]


def expression_columns(expression: Expression) -> List[ColumnRef]:
    """Return all column references in an expression."""
    return [node for node in walk_expression(expression) if isinstance(node, ColumnRef)]


def walk_statement_expressions(statement: Statement):
    """Yield every expression anywhere in a statement.

    Unlike :func:`walk_expression`, this descends into subqueries
    (``IN (SELECT ...)``, ``EXISTS``, scalar subqueries), derived tables,
    UNION ALL branches and procedure/control-flow bodies — so parameter
    and column collection sees the whole statement, not just one level.
    """
    pending: List[Statement] = [statement]

    def deep(expression: Expression):
        for node in walk_expression(expression):
            yield node
            if isinstance(node, (InSubquery, Exists, ScalarSubquery)):
                pending.append(node.subquery)

    def table_refs(ref: Optional[TableRef]):
        if ref is None:
            return
        if isinstance(ref, JoinRef):
            if ref.condition is not None:
                yield from deep(ref.condition)
            yield from table_refs(ref.left)
            yield from table_refs(ref.right)
        elif isinstance(ref, DerivedTable):
            pending.append(ref.select)

    while pending:
        node = pending.pop()
        if isinstance(node, Select):
            for item in node.items:
                yield from deep(item.expression)
            if node.top is not None:
                yield from deep(node.top)
            yield from table_refs(node.from_clause)
            if node.where is not None:
                yield from deep(node.where)
            for expression in node.group_by:
                yield from deep(expression)
            if node.having is not None:
                yield from deep(node.having)
            for order in node.order_by:
                yield from deep(order.expression)
        elif isinstance(node, UnionAll):
            pending.extend(node.branches)
        elif isinstance(node, Explain):
            pending.append(node.statement)
        elif isinstance(node, Insert):
            for row in node.rows:
                for expression in row:
                    yield from deep(expression)
            if node.select is not None:
                pending.append(node.select)
        elif isinstance(node, Update):
            for _, expression in node.assignments:
                yield from deep(expression)
            if node.where is not None:
                yield from deep(node.where)
        elif isinstance(node, Delete):
            if node.where is not None:
                yield from deep(node.where)
        elif isinstance(node, Declare):
            if node.initial is not None:
                yield from deep(node.initial)
        elif isinstance(node, SetVariable):
            yield from deep(node.value)
        elif isinstance(node, IfStatement):
            yield from deep(node.condition)
            pending.extend(node.then_body)
            pending.extend(node.else_body)
        elif isinstance(node, WhileStatement):
            yield from deep(node.condition)
            pending.extend(node.body)
        elif isinstance(node, (ReturnStatement, PrintStatement)):
            if getattr(node, "value", None) is not None:
                yield from deep(node.value)
        elif isinstance(node, Execute):
            for _, expression in node.arguments:
                yield from deep(expression)
        elif isinstance(node, CreateView):
            pending.append(node.select)
        elif isinstance(node, CreateProcedure):
            pending.extend(node.body)


def statement_parameters(statement: Statement) -> List[str]:
    """Return the distinct ``@parameter`` names a statement references,
    in first-use order, descending into subqueries and nested bodies."""
    seen = []
    for node in walk_statement_expressions(statement):
        if isinstance(node, Parameter) and node.name not in seen:
            seen.append(node.name)
    return seen
