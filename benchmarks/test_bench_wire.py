"""E8 — wire protocol overhead and batched fetch.

Two measurements for the network front end:

* **Round-trip overhead**: the same point query executed in-process and
  over a real TCP loopback socket.  The wire adds serialization, framing
  and a socket round trip per statement; the bench records the absolute
  cost of both paths and their ratio so later transport work has a
  baseline to beat.  No gate — loopback latency is environmental — but
  the overhead factor is recorded in the trajectory.
* **Batched fetch vs row-at-a-time**: a large scan fetched over the wire
  with the default server batch size versus ``fetch_rows=1`` (one ROWS
  frame per row, the classic chatty-cursor anti-pattern the paper's
  mid-tier exists to avoid).  Gate: batching must be **at least 2x
  faster** end to end.
"""

from __future__ import annotations

import time

from benchmarks.conftest import emit
from repro.client import connect
from repro.engine import Server
from repro.net import ReproServer

SCAN_ROWS = 4_000
POINT_QUERY = "SELECT cid, cname FROM customer WHERE cid = @cid"
SCAN_QUERY = "SELECT cid, cname, segment FROM customer ORDER BY cid"


def _build_server() -> Server:
    server = Server("wirebench", observability=False)
    server.create_database("shop")
    server.execute(
        "CREATE TABLE customer (cid INT PRIMARY KEY, cname VARCHAR(40), "
        "segment VARCHAR(10))"
    )
    database = server.database("shop")
    database.bulk_load(
        "customer",
        [
            (i, f"cust{i}", "gold" if i % 7 == 0 else "retail")
            for i in range(1, SCAN_ROWS + 1)
        ],
    )
    database.analyze_all()
    return server


def _best_of(fn, repetitions: int, rounds: int = 3) -> float:
    """Best-of-rounds mean seconds per call, on a warmed path."""
    fn()  # warm plan cache / dialed socket
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        for _ in range(repetitions):
            fn()
        best = min(best, time.perf_counter() - started)
    return best / repetitions


def test_bench_wire_roundtrip_overhead(benchmark, capsys, bench_recorder):
    backend = _build_server()
    server = ReproServer.serve(backend)
    try:
        local = connect(backend, database="shop")
        remote = connect(server.dsn)

        params = {"cid": 42}
        expected = local.execute(POINT_QUERY, params).rows
        assert remote.execute(POINT_QUERY, params).rows == expected

        local_seconds = _best_of(lambda: local.execute(POINT_QUERY, params), 200)
        wire_seconds = _best_of(lambda: remote.execute(POINT_QUERY, params), 200)
        overhead = wire_seconds / local_seconds

        emit(
            capsys,
            "E8: wire round-trip overhead (point query, TCP loopback)",
            [
                f"in-process          {local_seconds * 1e6:10.1f} us/stmt",
                f"over the wire       {wire_seconds * 1e6:10.1f} us/stmt",
                f"overhead            {overhead:10.2f}x",
            ],
        )
        bench_recorder.record(
            "wire_roundtrip",
            in_process_us=round(local_seconds * 1e6, 2),
            wire_us=round(wire_seconds * 1e6, 2),
            overhead_factor=round(overhead, 3),
        )
        assert wire_seconds > 0 and local_seconds > 0

        benchmark(lambda: remote.execute(POINT_QUERY, params))
        remote.close()
        local.close()
    finally:
        server.stop()


def test_bench_wire_batched_fetch(capsys, bench_recorder):
    backend = _build_server()
    server = ReproServer.serve(backend)
    try:
        batched = connect(server.dsn)  # server default batch size
        chatty = connect(f"{server.dsn}?fetch_rows=1")  # one frame per row

        rows_batched = batched.execute(SCAN_QUERY).rows
        rows_chatty = chatty.execute(SCAN_QUERY).rows
        assert rows_batched == rows_chatty
        assert len(rows_batched) == SCAN_ROWS

        batched_seconds = _best_of(lambda: batched.execute(SCAN_QUERY), 5)
        chatty_seconds = _best_of(lambda: chatty.execute(SCAN_QUERY), 5)
        speedup = chatty_seconds / batched_seconds

        emit(
            capsys,
            "E8: batched fetch vs row-at-a-time (4k-row scan, TCP loopback)",
            [
                f"rows fetched        {SCAN_ROWS:10,d}",
                f"row-at-a-time       {chatty_seconds * 1e3:10.2f} ms/scan",
                f"batched frames      {batched_seconds * 1e3:10.2f} ms/scan",
                f"speedup             {speedup:10.2f}x  (gate: >= 2.0x)",
            ],
        )
        bench_recorder.record(
            "wire_batched_fetch",
            rows=SCAN_ROWS,
            row_at_a_time_ms=round(chatty_seconds * 1e3, 3),
            batched_ms=round(batched_seconds * 1e3, 3),
            speedup=round(speedup, 3),
        )
        assert speedup >= 2.0, (
            f"batched fetch must be at least 2x faster than row-at-a-time "
            f"over the wire, measured {speedup:.2f}x"
        )
        batched.close()
        chatty.close()
    finally:
        server.stop()
