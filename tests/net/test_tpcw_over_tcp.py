"""The TPC-W mix over TCP loopback is statement-for-statement identical
to the same mix run in-process.

Two independent, identically-seeded deployments execute the same
interaction sequence — one through the in-process connect() path, one
through a real ReproServer socket.  Every ``_exec`` call is recorded
(procedure, parameters, result rows) and the two transcripts must match
exactly: the wire adds transport, never semantics.  Checked plans are on
(conftest env), so cache-side plan validation also runs on both sides.
"""

from __future__ import annotations

import random

from repro.net import ReproServer, register_inproc, unregister_inproc
from repro.tpcw.application import TPCWApplication
from repro.tpcw.config import TPCWConfig
from repro.tpcw.setup import build_backend, enable_caching
from repro.tpcw.workload import MIXES

INTERACTIONS = 60


def _deployment():
    config = TPCWConfig(num_items=100, num_ebs=10)
    backend, config = build_backend(config)
    deployment, caches = enable_caching(backend, ["cache0"], config)
    # Let the log reader / subscription agents reach steady state once.
    deployment.clock.advance(2.0)
    deployment.tick()
    return deployment, caches[0], config


def _recorded(app):
    """Wrap ``app._exec`` to transcribe every database call it makes."""
    transcript = []
    original = app._exec

    def wrapped(procedure, **params):
        cursor = original(procedure, **params)
        # Read the underlying result directly: consuming the cursor here
        # would disturb the application's own fetch position.
        transcript.append(
            (procedure, tuple(sorted(params.items())), tuple(cursor.result.rows))
        )
        return cursor

    app._exec = wrapped
    return transcript


def _drive(app, deployment):
    """Run the same deterministic interaction sequence on ``app``."""
    mix = MIXES["Shopping"]
    rng = random.Random(4242)
    sessions = [app.new_session() for _ in range(4)]
    for step in range(INTERACTIONS):
        session = sessions[step % len(sessions)]
        interaction = mix.sample(rng)
        app.run(interaction, session)
        deployment.clock.advance(0.5)
        deployment.tick()


def test_tpcw_mix_identical_in_process_and_over_tcp():
    local_deployment, local_cache, local_config = _deployment()
    remote_deployment, remote_cache, remote_config = _deployment()

    register_inproc("t/tpcw-identity", local_cache)
    server = ReproServer.serve(remote_cache)
    try:
        local_app = TPCWApplication("inproc://t/tpcw-identity", local_config)
        remote_app = TPCWApplication(server.dsn, remote_config)
        local_log = _recorded(local_app)
        remote_log = _recorded(remote_app)

        _drive(local_app, local_deployment)
        _drive(remote_app, remote_deployment)

        assert len(local_log) == len(remote_log)
        assert local_log, "the mix must actually issue database calls"
        for index, (local_call, remote_call) in enumerate(
            zip(local_log, remote_log)
        ):
            assert local_call == remote_call, (
                f"statement {index} diverged over the wire:\n"
                f"  in-process: {local_call[:2]}\n"
                f"  over TCP:   {remote_call[:2]}"
            )
        assert local_app.db_calls == remote_app.db_calls
    finally:
        server.stop()
        unregister_inproc("t/tpcw-identity")
