"""Fixtures for the wire-protocol suite: a backend behind a TCP listener."""

from __future__ import annotations

import pytest

from repro.net import ReproServer
from tests.conftest import make_shop_backend


@pytest.fixture()
def wire_server():
    """A shop backend served over TCP on an ephemeral loopback port."""
    backend = make_shop_backend()
    server = ReproServer.serve(backend)
    try:
        yield backend, server
    finally:
        server.stop()
