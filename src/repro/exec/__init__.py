"""Execution layer: expression evaluation and Volcano-style operators."""

from repro.exec.expressions import ExpressionCompiler, compile_predicate, compile_scalar
from repro.exec.context import ExecutionContext, WorkCounters
from repro.exec.operators import (
    AggregateOp,
    DistinctOp,
    FilterOp,
    HashJoinOp,
    IndexLookupJoinOp,
    IndexRangeScanOp,
    IndexSeekOp,
    MergeJoinOp,
    NestedLoopJoinOp,
    PhysicalOperator,
    ProjectOp,
    RemoteQueryOp,
    SeqScanOp,
    SortOp,
    TopOp,
    UnionAllOp,
    ValuesOp,
)

__all__ = [
    "ExpressionCompiler",
    "compile_predicate",
    "compile_scalar",
    "ExecutionContext",
    "WorkCounters",
    "PhysicalOperator",
    "SeqScanOp",
    "IndexSeekOp",
    "IndexRangeScanOp",
    "FilterOp",
    "ProjectOp",
    "NestedLoopJoinOp",
    "HashJoinOp",
    "IndexLookupJoinOp",
    "MergeJoinOp",
    "AggregateOp",
    "SortOp",
    "TopOp",
    "DistinctOp",
    "UnionAllOp",
    "ValuesOp",
    "RemoteQueryOp",
]
