"""Dynamic plans: ChoosePlan construction, execution, pull-up, mixed results.

Covers the paper's Figures 2-4: the UnionAll + startup-predicate encoding,
run-time branch selection by parameter value, cost as a guard-frequency-
weighted average, pull-up above joins, and the mixed-result alternative
that is legal for regular materialized views but banned for cached views.
"""

import pytest

from repro import MTCacheDeployment
from repro.exec.operators import FilterOp, RemoteQueryOp, UnionAllOp

from tests.conftest import make_shop_backend


@pytest.fixture(scope="module")
def env():
    backend = make_shop_backend()
    deployment = MTCacheDeployment(backend, "shop")
    cache = deployment.add_cache_server("cache1")
    cache.create_cached_view(
        "CREATE CACHED VIEW Cust1000 AS "
        "SELECT cid, cname, caddress FROM customer WHERE cid <= 100"
    )
    # Orders cached in full so join branches can run locally (Figure 4's
    # setting: the guard-true branch joins the view with local orders).
    cache.create_cached_view(
        "CREATE CACHED VIEW OrdersAll AS SELECT oid, o_cid, total FROM orders"
    )
    return backend, deployment, cache


PARAM_QUERY = "SELECT cid, cname, caddress FROM customer WHERE cid <= @cid"


def choose_plans(planned):
    return [
        node
        for node in planned.root.walk()
        if isinstance(node, UnionAllOp) and node.choose_plan
    ]


class TestDynamicPlanShape:
    def test_parameterized_query_gets_chooseplan(self, env):
        _, _, cache = env
        planned = cache.plan(PARAM_QUERY)
        assert planned.is_dynamic
        plans = choose_plans(planned)
        assert len(plans) == 1

    def test_branches_have_opposite_startup_guards(self, env):
        _, _, cache = env
        planned = cache.plan(PARAM_QUERY)
        (cp,) = choose_plans(planned)
        assert len(cp.children) == 2
        assert all(
            isinstance(child, FilterOp) and child.startup_predicate is not None
            for child in cp.children
        )

    def test_one_branch_is_remote(self, env):
        _, _, cache = env
        planned = cache.plan(PARAM_QUERY)
        (cp,) = choose_plans(planned)
        remote_branches = [
            child
            for child in cp.children
            if any(isinstance(n, RemoteQueryOp) for n in child.walk())
        ]
        assert len(remote_branches) == 1

    def test_cost_is_weighted_average(self, env):
        _, _, cache = env
        planned = cache.plan(PARAM_QUERY)
        (cp,) = choose_plans(planned)
        local_cost = cp.children[0].children[0].estimated_cost
        remote_cost = cp.children[1].children[0].estimated_cost
        assert min(local_cost, remote_cost) <= planned.estimated_cost <= max(
            local_cost, remote_cost
        )


class TestDynamicPlanExecution:
    def test_local_branch_when_inside_view(self, env):
        backend, _, cache = env
        backend.reset_work()
        result = cache.execute(PARAM_QUERY, params={"cid": 50})
        assert len(result.rows) == 50
        # The backend saw no remote query: the cached view answered it.
        assert backend.total_work.rows_returned == 0

    def test_remote_branch_when_outside_view(self, env):
        backend, _, cache = env
        backend.reset_work()
        result = cache.execute(PARAM_QUERY, params={"cid": 150})
        assert len(result.rows) == 150
        assert backend.total_work.rows_returned > 0

    def test_boundary_value_uses_view(self, env):
        backend, _, cache = env
        backend.reset_work()
        result = cache.execute(PARAM_QUERY, params={"cid": 100})
        assert len(result.rows) == 100
        assert backend.total_work.rows_returned == 0

    def test_both_branches_return_identical_schema(self, env):
        _, _, cache = env
        low = cache.execute(PARAM_QUERY, params={"cid": 10})
        high = cache.execute(PARAM_QUERY, params={"cid": 110})
        assert low.schema.names == high.schema.names

    def test_null_parameter_falls_to_remote_branch_empty(self, env):
        """A NULL parameter makes both guards UNKNOWN: no rows, no crash
        (matches WHERE cid <= NULL semantics, which selects nothing)."""
        _, _, cache = env
        result = cache.execute(PARAM_QUERY, params={"cid": None})
        assert result.rows == []

    def test_plan_reused_across_calls(self, env):
        """The same (cached) plan must serve different parameters — that is
        the whole point of dynamic plans: no per-value re-optimization."""
        _, _, cache = env
        plan1 = cache.plan(PARAM_QUERY)
        plan2 = cache.plan(PARAM_QUERY)
        assert plan1 is plan2


class TestPullUp:
    JOIN_QUERY = (
        "SELECT c.cname, o.total FROM customer c JOIN orders o ON o.o_cid = c.cid "
        "WHERE c.cid <= @cid"
    )

    def test_chooseplan_pulled_above_join(self, env):
        _, _, cache = env
        planned = cache.plan(self.JOIN_QUERY)
        assert planned.is_dynamic
        (cp,) = choose_plans(planned)
        # Pull-up means the ChoosePlan is the plan root.
        assert planned.root is cp

    def test_pullup_branches_execute_equivalently(self, env):
        _, _, cache = env
        low = cache.execute(self.JOIN_QUERY, params={"cid": 20})
        high = cache.execute(self.JOIN_QUERY, params={"cid": 120})
        assert len(low.rows) == 40  # 2 orders per customer
        assert len(high.rows) == 240

    def test_no_pullup_keeps_chooseplan_at_leaf(self, env):
        backend, deployment, _ = env
        cache2 = deployment.add_cache_server(
            "cache_nopullup", optimizer_options={"pullup_chooseplan": False}
        )
        cache2.create_cached_view(
            "CREATE CACHED VIEW Cust1000b AS "
            "SELECT cid, cname, caddress FROM customer WHERE cid <= 100"
        )
        cache2.create_cached_view(
            "CREATE CACHED VIEW OrdersAllb AS SELECT oid, o_cid, total FROM orders"
        )
        planned = cache2.plan(self.JOIN_QUERY)
        (cp,) = choose_plans(planned)
        assert planned.root is not cp  # embedded under the join
        result = cache2.execute(self.JOIN_QUERY, params={"cid": 20})
        assert len(result.rows) == 40

    def test_dynamic_plans_disabled(self, env):
        backend, deployment, _ = env
        cache3 = deployment.add_cache_server(
            "cache_nodyn", optimizer_options={"enable_dynamic_plans": False}
        )
        cache3.create_cached_view(
            "CREATE CACHED VIEW Cust1000c AS "
            "SELECT cid, cname, caddress FROM customer WHERE cid <= 100"
        )
        planned = cache3.plan(PARAM_QUERY)
        assert not planned.is_dynamic
        result = cache3.execute(PARAM_QUERY, params={"cid": 50})
        assert len(result.rows) == 50


class TestMixedResults:
    """Figure 3: plans producing mixed results."""

    def test_cached_views_never_produce_mixed_results(self, env):
        _, _, cache = env
        planned = cache.plan(PARAM_QUERY)
        # A mixed plan would be a UnionAll WITHOUT the choose_plan marker
        # whose first branch is unguarded; for cached views we must see a
        # proper ChoosePlan instead.
        assert choose_plans(planned)

    def test_regular_matview_may_mix(self):
        """On a server where the matching view is a *regular* materialized
        view over a remote table, the optimizer may produce a mixed-result
        plan: view rows plus a guarded remote fetch of the remainder."""
        backend = make_shop_backend()
        deployment = MTCacheDeployment(backend, "shop")
        cache = deployment.add_cache_server("cache_mix")
        # Manufacture a *non-cached* materialized view on the cache server
        # whose contents mirror customer cid <= 100 (populated via the
        # backend link by hand).
        shadow = cache.database
        from repro.catalog.objects import ViewDef
        from repro.sql import parse as parse_sql

        create = parse_sql(
            "CREATE MATERIALIZED VIEW LocalCust AS "
            "SELECT cid, cname, caddress FROM customer WHERE cid <= 100"
        )
        rows = backend.execute(
            "SELECT cid, cname, caddress FROM customer WHERE cid <= 100",
            database="shop",
        ).rows
        from repro.common.schema import Column, Schema
        from repro.common.types import INT, VARCHAR

        schema = Schema(
            [
                Column("cid", INT, nullable=False),
                Column("cname", VARCHAR(40)),
                Column("caddress", VARCHAR(60)),
            ]
        )
        shadow.catalog.add_view(
            ViewDef("LocalCust", create.select, schema, materialized=True, cached=False)
        )
        shadow.create_view_storage("LocalCust", schema, primary_key=("cid",))
        for row in rows:
            shadow.storage_table("LocalCust").insert(row)
        shadow.analyze("LocalCust")
        shadow.bump_version()

        planned = cache.plan(PARAM_QUERY)
        mixed = [
            node
            for node in planned.root.walk()
            if isinstance(node, UnionAllOp) and not node.choose_plan
        ]
        if mixed:  # the mixed plan won on cost
            result_low = cache.execute(PARAM_QUERY, params={"cid": 50})
            result_high = cache.execute(PARAM_QUERY, params={"cid": 150})
            assert len(result_low.rows) == 50
            assert len(result_high.rows) == 150
        else:  # cost chose the dynamic plan; still must be correct
            assert choose_plans(planned)
