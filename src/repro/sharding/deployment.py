"""ShardedDeployment: N cache shards, each subscribing to a slice.

Builds on :class:`~repro.mtcache.deployment.MTCacheDeployment` — every
shard is an ordinary minimal-shadow cache server whose cached views of
the partitioned tables carry the shard's slice predicate, so the
existing replication pipeline (articles with row restrictions, log
reader, push agents) delivers each shard only its horizontal slice.
Broadcast views replicate in full to every shard.

The division of labor with the router:

* the **deployment** owns placement (the :class:`RangePartitioner`),
  provisioning, and rebalancing (boundary moves executed from
  :meth:`tick`, one per tick);
* the **router** (:meth:`router` / :meth:`connect`) owns statement
  routing, scatter-gather, and per-shard failover.

Correctness never rests on the router being current: a shard's slice
views are *predicated*, so the optimizer's dynamic plans serve owned
keys locally and transparently fetch unowned keys from the backend —
a misrouted or mid-rebalance statement is slower, not wrong.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.catalog.objects import ViewDef
from repro.mtcache.cache_server import CacheServer
from repro.mtcache.deployment import MTCacheDeployment
from repro.obs.metrics import MetricsRegistry
from repro.sharding.policy import ShardingPolicy, TablePartition
from repro.sharding.rebalance import Rebalancer
from repro.sharding.ring import RangePartitioner


class ShardedDeployment:
    """A partitioned cache tier over one backend."""

    def __init__(
        self,
        backend=None,
        config=None,
        shards: int = 8,
        policy: Optional[ShardingPolicy] = None,
        shard_names: Optional[List[str]] = None,
        logreader_interval: float = 0.25,
        agent_interval: float = 0.25,
    ):
        """With no ``backend``, builds and populates a TPC-W backend
        (``config`` may override :class:`~repro.tpcw.TPCWConfig`) — the
        quickstart path. ``policy`` defaults to the TPC-W policy."""
        if backend is None:
            from repro.tpcw.setup import build_backend

            backend, config = build_backend(config)
        if policy is None:
            from repro.sharding.policy import tpcw_sharding_policy
            from repro.tpcw.config import TPCWConfig

            policy = tpcw_sharding_policy(config or TPCWConfig())
        from repro.tpcw.setup import DATABASE_NAME

        self.backend = backend
        self.policy = policy
        self.database_name = DATABASE_NAME
        self.deployment = MTCacheDeployment(
            backend,
            self.database_name,
            logreader_interval=logreader_interval,
            agent_interval=agent_interval,
        )
        names = shard_names or [f"shard{index}" for index in range(shards)]
        low, high = policy.key_domain
        self.partitioner = RangePartitioner(names, low, high)
        self.metrics = MetricsRegistry(namespace="sharding")
        self.shards: Dict[str, CacheServer] = {}
        for name in names:
            self.shards[name] = self._provision_shard(name)
        self.rebalancer = Rebalancer(self)

    # -- conveniences ------------------------------------------------------

    @property
    def clock(self):
        return self.deployment.clock

    @property
    def cache_servers(self) -> List[CacheServer]:
        return self.deployment.cache_servers

    def shard(self, name: str) -> CacheServer:
        return self.shards[name]

    def attach_fault_injector(self, injector) -> None:
        self.deployment.attach_fault_injector(injector)

    # -- provisioning ------------------------------------------------------

    def _provision_shard(self, name: str) -> CacheServer:
        cache = self.deployment.add_cache_server(
            name, shadow_tables=list(self.policy.shadow_tables)
        )
        for broadcast in self.policy.broadcasts:
            cache.create_cached_view(broadcast.ddl)
        low, high = self.partitioner.slice(name)
        for partition in self.policy.partitions.values():
            cache.create_cached_view(partition.ddl(low, high))
        if self.policy.procedures:
            cache.copy_procedures(list(self.policy.procedures))
        return cache

    def add_shard(self, name: str) -> CacheServer:
        """Grow the tier by one shard: split the widest slice into it.

        The full rebalance choreography in one call: provision the new
        cache with the upper half of the donor's range (subscribe +
        snapshot populate it), cut the partitioner over, then narrow the
        donor (articles, view definitions, rows). Use
        ``rebalancer.schedule_add_shard`` to run it from ``tick`` instead.
        """
        donor = self.partitioner.widest_shard()
        keep, give = self.partitioner.plan_split(donor)
        # Drain first: commands produced before the predicate change must
        # land under the old slices; later commits are classified by the
        # log reader at poll time, against the updated predicates.
        self.deployment.sync()
        self.partitioner.add_shard(name, *give)
        cache = self._provision_shard(name)
        self.shards[name] = cache
        self._retarget(donor, *keep)
        self.partitioner.set_slice(donor, *keep)
        self.metrics.counter("shard.rebalance_moves").inc()
        return cache

    # -- rebalancing internals --------------------------------------------

    def _retarget(self, shard_name: str, low: int, high: int) -> int:
        """Re-slice an existing shard to ``[low, high]``.

        Updates, for every partitioned table: the publication article's
        predicate (future replicated commands), the shard's cached-view
        definition (so view matching sees the new slice), and the view's
        stored rows (copy gained keys from the backend, drop lost ones).
        Returns the number of rows moved in or out.

        The whole re-slice holds the shard database's latch exclusively —
        it is DDL plus a data move, and concurrent statements take the
        latch shared, so every query sees either the old slice with its
        old rows or the new slice with its new rows and a bumped catalog
        version (stale plans recompile). Without the latch a reader's
        cached plan could claim a key is local while its row is being
        deleted underneath it, answering with a silently empty result.
        """
        cache = self.shards[shard_name]
        database = cache.database
        moved = 0
        with database.latch.exclusive():
            for partition in self.policy.partitions.values():
                subscription = cache.subscriptions[partition.view.lower()]
                article = self.deployment.publication.article(
                    subscription.article_name
                )
                predicate = self.partitioner_predicate(partition, low, high)
                article.predicate = predicate
                article.bind(
                    self.deployment.backend_database.catalog.get_table(
                        partition.table
                    ).schema
                )
                view = database.catalog.get_view(partition.view)
                database.catalog.drop_view(partition.view)
                database.catalog.add_view(
                    replace(view, select=replace(view.select, where=predicate))
                )
                moved += self._resync_rows(database, partition, article, low, high)
                database.analyze(partition.view)
            database.bump_version()
        return moved

    @staticmethod
    def partitioner_predicate(partition: TablePartition, low: int, high: int):
        from repro.sql import ast

        return ast.Between(
            operand=ast.ColumnRef(name=partition.key_column),
            low=ast.Literal(low),
            high=ast.Literal(high),
        )

    def _resync_rows(
        self, database, partition: TablePartition, article, low: int, high: int
    ) -> int:
        """Make the view's stored rows exactly the backend rows in range.

        Idempotent set reconciliation rather than delta shipping: drop
        rows that left the slice, copy rows that joined it (skipping keys
        already present — replication may already have delivered them).
        """
        storage = database.storage_table(partition.view)
        key_position = storage.schema.resolve(partition.view_key())
        moved = 0
        stale = [
            rid
            for rid, row in storage.scan()
            if not (low <= row[key_position] <= high)
        ]
        for rid in stale:
            storage.delete_rid(rid)
        moved += len(stale)
        present = {row[key_position] for _, row in storage.scan()}
        source = self.deployment.backend_database.storage_table(partition.table)
        for _, row in source.scan():
            if article.row_matches(row):
                projected = article.project(row)
                if projected[key_position] not in present:
                    storage.insert(projected)
                    moved += 1
        return moved

    def move_boundary(self, left: str, right: str, new_cut: int) -> int:
        """Shift the boundary between two adjacent shards to ``new_cut``
        (the left shard's new inclusive high). Returns rows moved.

        The shard caches are re-sliced first — during that window the
        router still routes by the old cut, and a shard queried for keys
        it just lost answers through its dynamic plans' guards (slower,
        never wrong) — and only then does the partitioner cut over,
        atomically, so no reader ever observes a half-moved boundary.
        """
        left_low, left_high = self.partitioner.slice(left)
        right_low, right_high = self.partitioner.slice(right)
        if right_low != left_high + 1:
            raise ValueError(f"shards {left!r} and {right!r} are not adjacent")
        if not (left_low <= new_cut < right_high):
            raise ValueError(f"cut {new_cut} outside ({left_low}, {right_high})")
        self.deployment.sync()
        moved = 0
        if new_cut > left_high:  # left grows: widen it first, then shrink right
            moved += self._retarget(left, left_low, new_cut)
            moved += self._retarget(right, new_cut + 1, right_high)
        else:  # left shrinks: grow right first
            moved += self._retarget(right, new_cut + 1, right_high)
            moved += self._retarget(left, left_low, new_cut)
        self.partitioner.move_boundary(left, right, new_cut)
        self.metrics.counter("shard.rebalance_moves").inc()
        self.metrics.counter("shard.rebalance_rows").inc(moved)
        return moved

    # -- driving -----------------------------------------------------------

    def tick(self, advance: float = 0.0) -> Dict[str, int]:
        """Advance replication, then run at most one due rebalance move."""
        counters = self.deployment.tick(advance)
        counters["rebalance_moves"] = self.rebalancer.run_due(self.clock.now())
        return counters

    def sync(self) -> None:
        self.deployment.sync()

    def failover_connection(self, cache, principal: str = "dbo", probe_interval: float = 1.0):
        return self.deployment.failover_connection(
            cache, principal=principal, probe_interval=probe_interval
        )

    # -- the client tier ---------------------------------------------------

    def router(self, principal: str = "dbo", probe_interval: float = 1.0):
        """A :class:`~repro.client.ShardRouter` over per-shard failover."""
        from repro.client.shard_router import ShardRouter

        def target_factory(name: str):
            cache = self.shards.get(name)
            if cache is None:
                return None
            return self.deployment.failover_connection(
                cache, principal=principal, probe_interval=probe_interval
            )

        return ShardRouter(
            backend=self.backend,
            database=self.database_name,
            partitioner=self.partitioner,
            policy=self.policy,
            shard_targets={name: target_factory(name) for name in self.shards},
            registry=self.metrics,
            principal=principal,
            target_factory=target_factory,
        )

    def connect(self, principal: str = "dbo"):
        """A routed DBAPI connection (the README quickstart entrypoint)."""
        return self.router(principal=principal).connection()

    # -- observability -----------------------------------------------------

    def snapshot(self) -> Dict:
        """The deployment snapshot plus shard routing/placement state."""
        from repro.obs.export import deployment_snapshot

        snapshot = deployment_snapshot(self.deployment)
        snapshot["sharding"] = {
            "shards": {
                name: {"slice": list(self.partitioner.slice(name))}
                for name in self.partitioner.shards
            },
            "partitioner_version": self.partitioner.version,
            "metrics": self.metrics.snapshot(),
        }
        return snapshot

    def __repr__(self) -> str:
        return f"<ShardedDeployment shards={list(self.shards)}>"
