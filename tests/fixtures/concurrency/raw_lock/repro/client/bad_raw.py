"""Seeded violation: a raw threading primitive acquired outside the
chokepoints.

Expected finding: ``non-chokepoint-lock`` (the witness never sees this
lock, so nothing it nests against is checked).
"""

import threading


class BadPool:
    def __init__(self):
        self._raw = threading.Lock()
        self.idle = []

    def take(self):
        with self._raw:
            return self.idle.pop()
