"""CLI entry point tests (python -m repro)."""

import pytest

from repro.__main__ import main


def test_demo_runs(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "ChoosePlan" in out
    assert "RENAMED" in out


def test_tpcw_runs(capsys):
    assert main(["tpcw"]) == 0
    out = capsys.readouterr().out
    assert "cache work" in out
    assert "backend work" in out


def test_metrics_emits_json_snapshot(capsys):
    import json

    assert main(["metrics"]) == 0
    snapshot = json.loads(capsys.readouterr().out)
    assert snapshot["backend"]["metrics"]["counters"]
    assert snapshot["caches"][0]["server"] == "cache1"
    assert snapshot["replication"]["subscriptions"]
    for values in snapshot["replication"]["subscriptions"].values():
        assert "lag_seconds" in values


def test_analyze_self_runs_clean(capsys):
    assert main(["analyze", "--self"]) == 0
    out = capsys.readouterr().out
    assert "self: 0 diagnostic(s)" in out
    assert "analyze: clean" in out


def test_analyze_workload_runs_clean(capsys):
    assert main(["analyze", "--workload"]) == 0
    out = capsys.readouterr().out
    assert "workload: 0 diagnostic(s)" in out
    assert "analyze: clean" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["bogus"])
