"""DDL execution: CREATE/DROP TABLE, INDEX, VIEW, PROCEDURE; GRANT.

``CREATE CACHED VIEW`` is delegated to the MTCache layer through the
database's ``cached_view_handler`` hook — on a cache server it creates the
view's backing storage *and* the replication subscription that keeps it up
to date (paper §4).
"""

from __future__ import annotations

from typing import List

from repro.catalog.objects import ForeignKey, ProcedureDef, TableDef, ViewDef
from repro.common.schema import Column, Schema
from repro.engine.results import Result
from repro.errors import CatalogError, ExecutionError
from repro.sql import ast
from repro.sql.formatter import format_statement


def execute_create_table(database, statement: ast.CreateTable) -> Result:
    columns: List[Column] = []
    primary_key = list(statement.primary_key)
    for definition in statement.columns:
        columns.append(
            Column(
                name=definition.name,
                sql_type=definition.sql_type,
                nullable=definition.nullable and not definition.primary_key,
            )
        )
        if definition.primary_key:
            primary_key.append(definition.name)
    foreign_keys = tuple(
        ForeignKey(fk.columns, fk.ref_table, fk.ref_columns)
        for fk in statement.foreign_keys
    )
    table_def = TableDef(
        name=statement.name,
        schema=Schema(columns),
        primary_key=tuple(primary_key),
        foreign_keys=foreign_keys,
    )
    database.create_storage(table_def)
    return Result(messages=[f"table {statement.name} created"])


def execute_create_index(database, statement: ast.CreateIndex) -> Result:
    from repro.catalog.objects import IndexDef

    target = statement.table
    if not database.catalog.maybe_table(target) and not database.catalog.maybe_view(target):
        raise CatalogError(f"no table or view {target!r}")
    database.catalog.add_index(
        IndexDef(
            name=statement.name,
            table=target,
            columns=statement.columns,
            unique=statement.unique,
            clustered=statement.clustered,
        )
    )
    if database.has_storage(target):
        storage = database.storage_table(target)
        storage.create_index(statement.name, statement.columns, statement.unique)
    database.bump_version()
    return Result(messages=[f"index {statement.name} created"])


def execute_create_view(database, statement: ast.CreateView, select_runner=None) -> Result:
    """Create a view; materialized views are populated immediately.

    ``select_runner(select) -> (rows, schema)`` executes the defining query
    locally — available on a backend server; on a cache server, cached
    views are populated by replication instead.
    """
    if statement.cached:
        if database.cached_view_handler is None:
            raise ExecutionError(
                "CREATE CACHED VIEW requires an MTCache-enabled database"
            )
        database.cached_view_handler(statement)
        return Result(messages=[f"cached view {statement.name} created"])

    source_text = format_statement(statement)
    if not statement.materialized:
        schema = _derive_schema(database, statement.select)
        database.catalog.add_view(
            ViewDef(
                name=statement.name,
                select=statement.select,
                schema=schema,
                materialized=False,
                source_text=source_text,
            )
        )
        database.bump_version()
        return Result(messages=[f"view {statement.name} created"])

    if select_runner is None:
        raise ExecutionError("materialized view creation requires a select runner")
    rows, schema = select_runner(statement.select)
    database.catalog.add_view(
        ViewDef(
            name=statement.name,
            select=statement.select,
            schema=schema,
            materialized=True,
            source_text=source_text,
        )
    )
    storage = database.create_view_storage(statement.name, schema)
    for row in rows:
        storage.insert(row)
    database.analyze(statement.name)
    return Result(messages=[f"materialized view {statement.name} created ({len(rows)} rows)"])


def _derive_schema(database, select: ast.Select) -> Schema:
    from repro.optimizer.planner import Optimizer

    return Optimizer(database)._select_output_schema(select)


def execute_create_procedure(database, statement: ast.CreateProcedure) -> Result:
    database.catalog.add_procedure(
        ProcedureDef(
            name=statement.name,
            params=statement.params,
            body=statement.body,
        )
    )
    database.bump_version()
    return Result(messages=[f"procedure {statement.name} created"])


def execute_drop(database, statement: ast.DropObject) -> Result:
    kind = statement.kind
    name = statement.name
    if kind == "TABLE":
        database.catalog.drop_table(name)
        database.drop_storage(name)
    elif kind == "VIEW":
        view = database.catalog.get_view(name)
        database.catalog.drop_view(name)
        if view.materialized:
            database.drop_storage(name)
    elif kind == "INDEX":
        index = database.catalog.get_index(name)
        database.catalog.drop_index(name)
        if database.has_storage(index.table):
            storage = database.storage_table(index.table)
            if name in storage.indexes:
                storage.drop_index(name)
    elif kind == "PROCEDURE":
        database.catalog.drop_procedure(name)
    else:
        raise ExecutionError(f"cannot drop object kind {kind!r}")
    database.bump_version()
    return Result(messages=[f"{kind.lower()} {name} dropped"])


def execute_grant(database, statement: ast.Grant) -> Result:
    database.catalog.permissions.grant(
        statement.permission, statement.object_name, statement.principal
    )
    return Result(messages=["grant recorded"])
