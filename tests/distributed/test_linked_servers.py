"""Linked servers and distributed queries (paper §2.1)."""

import pytest

from repro import Server
from repro.errors import DistributedError



@pytest.fixture
def pair():
    """A local server with a linked 'PartServer', as in the paper's example."""
    local = Server("local")
    local.create_database("localdb")
    local.execute("CREATE TABLE orderline (id INT PRIMARY KEY, qty INT)")
    for i in range(1, 21):
        local.execute(f"INSERT INTO orderline VALUES ({i}, {i * 100})")

    part_server = Server("PartServer")
    part_server.create_database("catdb")
    part_server.execute(
        "CREATE TABLE part (id INT PRIMARY KEY, name VARCHAR(30), type VARCHAR(10))"
    )
    for i in range(1, 21):
        part_type = "Tire" if i % 2 == 0 else "Bolt"
        part_server.execute(f"INSERT INTO part VALUES ({i}, 'part{i}', '{part_type}')")
    part_server.database("catdb").analyze_all()
    local.database("localdb").analyze_all()
    local.linked_servers.register("PartServer", part_server, "catdb")
    return local, part_server


class TestRemoteQueries:
    def test_papers_distributed_join(self, pair):
        """The paper's §2.1 example: local orderline joined with remote part."""
        local, _ = pair
        result = local.execute(
            "SELECT ol.id, ps.name, ol.qty "
            "FROM orderline ol, PartServer.catdb.dbo.part ps "
            "WHERE ol.id = ps.id AND ol.qty > 500 AND ps.type = 'Tire'"
        )
        ids = sorted(row[0] for row in result.rows)
        assert ids == [6, 8, 10, 12, 14, 16, 18, 20]

    def test_remote_query_is_reoptimized_as_text(self, pair):
        local, part_server = pair
        before = part_server.statements_executed
        local.execute(
            "SELECT ps.name FROM PartServer.catdb.dbo.part ps WHERE ps.id = 3"
        )
        assert part_server.statements_executed > before

    def test_remote_dml_four_part_name(self, pair):
        local, part_server = pair
        local.execute(
            "UPDATE PartServer.catdb.dbo.part SET name = 'renamed' WHERE id = 3"
        )
        assert (
            part_server.execute("SELECT name FROM part WHERE id = 3").scalar
            == "renamed"
        )

    def test_remote_insert_and_delete(self, pair):
        local, part_server = pair
        local.execute(
            "INSERT INTO PartServer.catdb.dbo.part VALUES (99, 'new', 'Tire')"
        )
        assert part_server.execute("SELECT COUNT(*) FROM part").scalar == 21
        local.execute("DELETE FROM PartServer.catdb.dbo.part WHERE id = 99")
        assert part_server.execute("SELECT COUNT(*) FROM part").scalar == 20

    def test_remote_procedure_call(self, pair):
        local, part_server = pair
        part_server.execute(
            "CREATE PROCEDURE countParts AS BEGIN SELECT COUNT(*) AS n FROM part END"
        )
        result = local.execute("EXEC PartServer.catdb.dbo.countParts")
        assert result.scalar == 20

    def test_unknown_linked_server(self, pair):
        local, _ = pair
        with pytest.raises(DistributedError):
            local.execute("SELECT * FROM nowhere.db.dbo.t")

    def test_traffic_counters(self, pair):
        local, _ = pair
        link = local.linked_servers.get("PartServer")
        before = link.queries_shipped
        local.execute("SELECT ps.id FROM PartServer.catdb.dbo.part ps WHERE ps.id = 1")
        assert link.queries_shipped == before + 1
