"""ConnectionPool: bounded checkout, timeout, health-check failover."""

from __future__ import annotations

import threading
import time

import pytest

from repro.client import ConnectionPool, connect
from repro.errors import ClientError, PoolTimeoutError
from repro.obs.metrics import MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry()


def make_pool(backend, registry, **kwargs):
    kwargs.setdefault("size", 2)
    kwargs.setdefault("registry", registry)
    return ConnectionPool(lambda: connect(backend, database="shop"), **kwargs)


def test_checkout_and_release_cycle(backend, registry):
    pool = make_pool(backend, registry)
    connection = pool.acquire()
    assert pool.in_use == 1
    row = connection.cursor().execute("SELECT cid FROM customer WHERE cid = 1").fetchone()
    assert row == (1,)
    pool.release(connection)
    assert pool.in_use == 0
    assert pool.idle == 1
    # The same connection is reused, not recreated.
    assert pool.acquire() is connection


def test_pool_is_bounded(backend, registry):
    pool = make_pool(backend, registry, size=2, checkout_timeout=0.05)
    first = pool.acquire()
    second = pool.acquire()
    assert pool.in_use == 2
    with pytest.raises(PoolTimeoutError) as excinfo:
        pool.acquire()
    assert excinfo.value.transient
    assert registry.counter("client.checkout_timeouts").value == 1
    pool.release(first)
    pool.release(second)


def test_exhausted_checkout_unblocks_on_release(backend, registry):
    pool = make_pool(backend, registry, size=1, checkout_timeout=5.0)
    held = pool.acquire()
    got = []

    def waiter():
        connection = pool.acquire()
        got.append(connection)
        pool.release(connection)

    thread = threading.Thread(target=waiter, daemon=True)
    thread.start()
    time.sleep(0.05)
    assert not got  # still blocked on the exhausted pool
    pool.release(held)
    thread.join(timeout=5.0)
    assert got == [held]


def test_context_manager_releases_on_error(backend, registry):
    pool = make_pool(backend, registry, size=1)
    with pytest.raises(RuntimeError):
        with pool.connection():
            raise RuntimeError("interaction failed")
    assert pool.in_use == 0
    # The pool is usable again immediately.
    with pool.connection() as connection:
        assert connection.healthy()


def test_release_rolls_back_open_transaction(backend, registry):
    pool = make_pool(backend, registry, size=1)
    connection = pool.acquire()
    connection.begin()
    connection.cursor().execute("UPDATE customer SET cname = 'dirty' WHERE cid = 1")
    pool.release(connection)
    # Next checkout sees clean state and no held latch.
    fresh = pool.acquire()
    row = fresh.cursor().execute("SELECT cname FROM customer WHERE cid = 1").fetchone()
    assert row == ("cust1",)
    pool.release(fresh)


def test_health_check_replaces_unhealthy_connection(backend, registry):
    pool = make_pool(backend, registry, size=1)
    stale = pool.acquire()
    pool.release(stale)
    # The idle connection goes stale while the server bounces.
    backend.crash()
    backend.restart()
    stale.session.in_transaction = False
    stale_target = stale
    stale_target.closed = False
    # Simulate a connection whose probe fails even though the server is
    # back: force its healthy() to report False once.
    stale_target.healthy = lambda: False  # type: ignore[method-assign]
    fresh = pool.acquire()
    assert fresh is not stale_target
    assert fresh.healthy()
    assert registry.counter("client.unhealthy_checkouts").value == 1
    pool.release(fresh)


def test_unhealthy_checkout_hands_out_connection_when_target_down(backend, registry):
    pool = make_pool(backend, registry, size=1)
    connection = pool.acquire()
    pool.release(connection)
    backend.crash()
    # Both the idle connection and its replacement probe unhealthy: the
    # pool hands one out anyway so the caller sees the transient error.
    handed = pool.acquire()
    assert not handed.healthy()
    pool.release(handed)
    backend.restart()


def test_pool_metrics(backend, registry):
    pool = make_pool(backend, registry, size=2)
    gauge = registry.gauge("client.pool_in_use")
    connection = pool.acquire()
    assert gauge.value == 1.0
    with pool.connection():
        assert gauge.value == 2.0
    pool.release(connection)
    assert gauge.value == 0.0
    assert registry.counter("client.checkouts").value == 2
    histogram = registry.histogram("client.checkout_wait")
    assert histogram.count == 2


def test_closed_pool_rejects_acquire(backend, registry):
    pool = make_pool(backend, registry)
    connection = pool.acquire()
    pool.close()
    with pytest.raises(ClientError):
        pool.acquire()
    # Releasing after close closes the connection instead of pooling it.
    pool.release(connection)
    assert connection.closed
    assert pool.idle == 0


def test_failed_connect_releases_slot(backend, registry):
    calls = {"n": 0}

    def flaky_connect():
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("dns hiccup")
        return connect(backend, database="shop")

    pool = ConnectionPool(flaky_connect, size=1, registry=registry)
    with pytest.raises(RuntimeError):
        pool.acquire()
    # The reserved slot was returned: the next acquire succeeds.
    connection = pool.acquire(timeout=0.5)
    assert connection.healthy()
    pool.release(connection)


def test_pool_size_validation(backend, registry):
    with pytest.raises(ValueError):
        make_pool(backend, registry, size=0)
    with pytest.raises(ValueError):
        make_pool(backend, registry, max_waiters=-1)


def test_release_after_close_closes_connection_and_frees_slot(backend, registry):
    """Every connection checked out at close time must be closed on
    release AND give its slot back — no leaked connections, no phantom
    capacity (regression guard for the close/release race)."""
    pool = make_pool(backend, registry, size=2)
    first = pool.acquire()
    second = pool.acquire()
    pool.close()
    pool.release(first)
    pool.release(second)
    assert first.closed and second.closed
    assert pool.idle == 0
    assert pool.in_use == 0
    assert pool._created == 0


def test_release_of_closed_connection_frees_slot(backend, registry):
    """A connection the application closed itself must not be pooled as
    idle; its slot is recycled so the pool can mint a replacement."""
    pool = make_pool(backend, registry, size=1)
    connection = pool.acquire()
    connection.close()
    pool.release(connection)
    assert pool.idle == 0
    replacement = pool.acquire(timeout=0.5)
    assert replacement is not connection
    assert replacement.healthy()
    pool.release(replacement)


class TestMaxWaiters:
    def test_full_waiter_queue_sheds_with_overload_error(self, backend, registry):
        from repro.errors import OverloadError

        pool = make_pool(
            backend, registry, size=1, max_waiters=0, checkout_timeout=5.0
        )
        held = pool.acquire()
        started = time.perf_counter()
        with pytest.raises(OverloadError) as excinfo:
            pool.acquire()
        # Fail fast: shed immediately, not after the checkout timeout.
        assert time.perf_counter() - started < 1.0
        assert excinfo.value.transient
        assert pool.shed == 1
        assert registry.counter("overload.pool_shed").value == 1
        pool.release(held)
        # Capacity back: the next checkout is admitted normally.
        refreshed = pool.acquire()
        pool.release(refreshed)

    def test_waiters_below_the_bound_still_wait(self, backend, registry):
        pool = make_pool(
            backend, registry, size=1, max_waiters=1, checkout_timeout=5.0
        )
        held = pool.acquire()
        got = []

        def waiter():
            connection = pool.acquire()
            got.append(connection)
            pool.release(connection)

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        time.sleep(0.05)  # let the waiter enter the queue
        assert registry.gauge("overload.pool_waiters").value == 1.0
        pool.release(held)
        thread.join(timeout=5.0)
        assert got == [held]
        assert pool.shed == 0
        assert registry.gauge("overload.pool_waiters").value == 0.0


def test_admission_gate_guards_checkout(backend, registry):
    from repro.errors import OverloadError
    from repro.resilience import AdmissionController

    clock = backend.clock
    gate = AdmissionController(
        clock, rate=5.0, burst=1.0, queue_delay_target=0.05, name="pool"
    )
    pool = make_pool(backend, registry, size=4, admission=gate)
    # Hammer checkouts in zero virtual time: the gate sheds once its
    # virtual queue passes the hard bound.
    shed = 0
    for _ in range(100):
        try:
            connection = pool.acquire()
        except OverloadError:
            shed += 1
        else:
            pool.release(connection)
    assert shed > 0
    assert gate.shed == shed
