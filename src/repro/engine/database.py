"""A database: catalog + storage + statistics + WAL + transactions.

On a backend server, tables carry data. On an MTCache server, a *shadow
database* has the same catalog but its shadow tables are empty and marked
remote (``remote_tables``), with statistics adopted from the backend so
the optimizer costs them as if the data were here.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Set

from repro.catalog import Catalog
from repro.catalog.objects import TableDef
from repro.common.clock import SimulatedClock
from repro.common.schema import Schema
from repro.engine.locks import DatabaseLatch, TableLockManager
from repro.engine.transactions import TransactionManager
from repro.errors import CatalogError
from repro.storage.statistics import TableStatistics
from repro.storage.table import Table
from repro.storage.wal import WriteAheadLog


class Database:
    """One database on a server."""

    def __init__(self, name: str, clock: Optional[SimulatedClock] = None):
        self.name = name
        self.clock = clock or SimulatedClock()
        self.catalog = Catalog()
        self.tables: Dict[str, Table] = {}
        self.statistics: Dict[str, TableStatistics] = {}
        self.wal = WriteAheadLog()
        self.transactions = TransactionManager(self.wal, self.clock)
        # Concurrency control (see repro.engine.locks): statements take the
        # latch shared plus per-table locks; DDL and explicit transactions
        # take the latch exclusive.
        self.latch = DatabaseLatch()
        self.lock_manager = TableLockManager()
        # MTCache configuration: which catalog tables have no local data
        # (their queries must go to the backend), and the linked-server
        # name of that backend.
        self.remote_tables: Set[str] = set()
        self.backend_server: Optional[str] = None
        # Bumped by DDL so cached plans and the view matcher re-validate.
        self.version = 0
        # Installed by the MTCache layer: returns the current replication
        # staleness in seconds, for freshness-clause processing.
        self.staleness_provider: Optional[Callable[[], Optional[float]]] = None
        # Installed by the MTCache layer: intercepts CREATE CACHED VIEW.
        self.cached_view_handler: Optional[Callable] = None
        # Backlink to the owning server (set by Server.create_database);
        # used to resolve four-part linked-server names during planning.
        self.owner_server = None

    # -- storage ---------------------------------------------------------

    def create_storage(self, table_def: TableDef) -> Table:
        """Register a table definition and create its heap."""
        self.catalog.add_table(table_def)
        table = Table(table_def.name, table_def.schema, table_def.primary_key)
        self.tables[table_def.name.lower()] = table
        self.bump_version()
        return table

    def create_view_storage(self, name: str, schema: Schema, primary_key=()) -> Table:
        """Create the backing heap for a materialized view."""
        table = Table(name, schema, primary_key)
        self.tables[name.lower()] = table
        self.bump_version()
        return table

    def storage_table(self, name: str) -> Table:
        table = self.tables.get(name.lower())
        if table is None:
            raise CatalogError(f"no storage for {name!r} in database {self.name!r}")
        return table

    def has_storage(self, name: str) -> bool:
        return name.lower() in self.tables

    def drop_storage(self, name: str) -> None:
        self.tables.pop(name.lower(), None)
        self.statistics.pop(name.lower(), None)
        self.bump_version()

    def bulk_load(self, table_name: str, rows: Iterable) -> int:
        """Load rows directly into storage, bypassing the WAL.

        Intended for initial database population (before any subscriber
        exists); replicated environments snapshot after bulk load.
        """
        storage = self.storage_table(table_name)
        count = 0
        for row in rows:
            storage.insert(row)
            count += 1
        return count

    # -- statistics ---------------------------------------------------------

    def analyze(self, name: str) -> TableStatistics:
        """(Re)build statistics from local storage (the ANALYZE path)."""
        table = self.storage_table(name)
        stats = TableStatistics.build(
            name, table.schema.names, list(table.rows.values())
        )
        self.statistics[name.lower()] = stats
        self.bump_version()
        return stats

    def analyze_all(self) -> None:
        for name in list(self.tables):
            self.analyze(name)

    def set_statistics(self, name: str, stats: TableStatistics) -> None:
        """Adopt statistics computed elsewhere (shadow databases)."""
        self.statistics[name.lower()] = stats
        self.bump_version()

    def stats_for(self, name: str) -> Optional[TableStatistics]:
        return self.statistics.get(name.lower())

    # -- MTCache hooks ---------------------------------------------------------

    def is_remote_table(self, name: str) -> bool:
        return name.lower() in self.remote_tables

    def mark_remote(self, names: Iterable[str], backend_server: str) -> None:
        """Mark shadow tables as backend-resident."""
        self.remote_tables.update(name.lower() for name in names)
        self.backend_server = backend_server
        self.bump_version()

    def replication_staleness(self) -> Optional[float]:
        """Seconds the cached data may lag the backend (None = not a cache)."""
        if self.staleness_provider is None:
            return None
        return self.staleness_provider()

    def bump_version(self) -> None:
        self.version += 1

    def __repr__(self) -> str:
        kind = "shadow" if self.remote_tables else "base"
        return f"<Database {self.name} ({kind}) tables={len(self.tables)}>"
