"""E1d — §6.2.1 summary table: no-cache vs five web/cache servers.

Paper:

    Workload   No cache   Five web/cache servers
               WIPS       WIPS   Backend load
    Browsing     50        129    7.5 %
    Shopping     82        199   15.9 %
    Ordering    283        271   55.4 %

Shapes to reproduce: Browsing/Shopping improve substantially with five
cache servers while the backend coasts (low single/low double-digit load);
Ordering does NOT improve (cached ≈ or below baseline) and keeps the
backend heavily loaded relative to the read mixes.
"""

import pytest

from benchmarks.conftest import emit

PAPER = {
    "Browsing": (50, 129, 0.075),
    "Shopping": (82, 199, 0.159),
    "Ordering": (283, 271, 0.554),
}


def test_bench_summary_table(cached_model, nocache_model, benchmark, capsys):
    lines = [
        f"{'Workload':10s} {'no-cache':>9s} {'cached@5':>9s} {'b.load@5':>9s}"
        f"   paper: base/cached/load"
    ]
    measured = {}
    for mix in ("Browsing", "Shopping", "Ordering"):
        base = nocache_model.baseline_wips(mix)
        at5 = cached_model.point(mix, 5)
        measured[mix] = (base.wips, at5.wips, at5.backend_utilization)
        paper_base, paper_cached, paper_load = PAPER[mix]
        lines.append(
            f"{mix:10s} {base.wips:9.1f} {at5.wips:9.1f} {at5.backend_utilization:9.1%}"
            f"   {paper_base}/{paper_cached}/{paper_load:.1%}"
        )
    emit(capsys, "E1d: no-cache vs five web/cache servers", lines)

    # Who-wins shape checks.
    assert measured["Browsing"][1] > measured["Browsing"][0]  # caching wins
    assert measured["Shopping"][1] > measured["Shopping"][0]  # caching wins
    assert measured["Ordering"][1] <= measured["Ordering"][0] * 1.05  # no win
    # Backend-load ordering mirrors the paper's 7.5 < 15.9 < 55.4.
    assert (
        measured["Browsing"][2]
        < measured["Shopping"][2]
        < measured["Ordering"][2]
    )
    # Browsing/Shopping leave the backend mostly idle; Ordering does not.
    assert measured["Shopping"][2] < 0.25
    assert measured["Ordering"][2] > 0.35

    benchmark(lambda: cached_model.point("Browsing", 5))
