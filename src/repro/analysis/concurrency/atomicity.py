"""Atomicity checker: does every mutation path hold the locks it needs?

Three rule families, all double-entry checks — each verifies the locking
protocol with machinery *independent* of the code that implements it:

* **unclassified-statement** — every concrete :class:`repro.sql.ast.Statement`
  subclass must be classified by :func:`~repro.engine.locks.statement_lock_plan`
  (plan-producing, transaction control, procedure-body control flow, or a
  documented no-shared-state statement). A new statement class added to
  the grammar without a locking story fails here before it can race.
* **exec-span** / **missing-table-lock** — over a real provisioned
  catalog (backend + cache): ``EXEC`` of a writing procedure must take
  the latch exclusive for the whole call span; every other statement's
  plan must cover the tables an *independent* AST walk (a generic
  dataclass-field traversal, not the engine's ``_iter_table_names``)
  says it reads and writes — S or better for reads, X for writes.
* **rebalance-drain** / **boundary-move-window** — the sharding
  deployment's rebalance operations must drain replication (``sync()``)
  before touching slice state, and the boundary cutover must go through
  :meth:`RangePartitioner.move_boundary` — one atomic version bump, not
  a pair of ``set_slice`` calls a concurrent router could interleave.
"""

from __future__ import annotations

import ast as pyast
import dataclasses
import inspect
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.engine.locks import (
    LockMode,
    _procedure_writes,
    statement_lock_plan,
)
from repro.errors import AnalysisError
from repro.sql import ast as sqlast
from repro.sql import parse

#: Statement classes the dispatcher intentionally runs without a lock
#: plan, and why that is safe.
_NO_PLAN_STATEMENTS = {
    # Transaction control: _begin_transaction takes the latch exclusive
    # and holds it for the transaction's whole span; COMMIT/ROLLBACK
    # release it. The latch *is* the plan.
    "BeginTransaction",
    "CommitTransaction",
    "RollbackTransaction",
    # Procedure-body control flow: only reachable inside a procedure
    # body, which executes under the EXEC's plan (exclusive latch for
    # writers) or statement-at-a-time dispatch (read-only bodies).
    "IfStatement",
    "WhileStatement",
    "ReturnStatement",
}

#: Statement classes whose instances statement_lock_plan must classify.
_PLANNED_STATEMENTS = {
    "Select",
    "UnionAll",
    "Explain",
    "Insert",
    "Update",
    "Delete",
    "CreateTable",
    "CreateIndex",
    "CreateView",
    "CreateProcedure",
    "DropObject",
    "Grant",
    "Declare",
    "SetVariable",
    "PrintStatement",
    "Execute",
}


def check_statement_coverage(
    statements: Optional[Sequence[type]] = None,
) -> List[AnalysisError]:
    """Every concrete Statement subclass must have a locking story."""
    if statements is None:
        statements = [
            obj
            for obj in vars(sqlast).values()
            if inspect.isclass(obj)
            and issubclass(obj, sqlast.Statement)
            and obj is not sqlast.Statement
        ]
    diagnostics: List[AnalysisError] = []
    for cls in statements:
        if cls.__name__ in _PLANNED_STATEMENTS or cls.__name__ in _NO_PLAN_STATEMENTS:
            continue
        diagnostics.append(
            AnalysisError(
                "unclassified-statement",
                f"statement class {cls.__name__} is not classified by "
                "statement_lock_plan and has no documented no-plan story; "
                "a dispatcher running it would hold no locks",
                location=f"repro/sql/ast.py::{cls.__name__}",
            )
        )
    return diagnostics


# -- independent table walk -----------------------------------------------


def _walk_table_names(node: object) -> Iterator[sqlast.TableName]:
    """Every TableName reachable from a statement, via generic dataclass
    traversal — deliberately independent of the engine's own walker."""
    if isinstance(node, sqlast.TableName):
        yield node
        return
    if dataclasses.is_dataclass(node) and not isinstance(node, type):
        for field in dataclasses.fields(node):
            yield from _walk_table_names(getattr(node, field.name))
    elif isinstance(node, (list, tuple)):
        for item in node:
            yield from _walk_table_names(item)


def _expected_modes(
    statement: sqlast.Statement, catalog
) -> Dict[str, LockMode]:
    """Lowercase table -> the weakest acceptable lock mode, independently
    derived: DML target is a write, every other local name is a read,
    non-materialized views expand to their base tables."""
    modes: Dict[str, LockMode] = {}
    write_target: Optional[str] = None
    if isinstance(statement, (sqlast.Insert, sqlast.Update, sqlast.Delete)):
        if statement.table.server is None:
            write_target = statement.table.object_name.lower()
    expanded: Set[str] = set()
    pending: List[object] = [statement]
    while pending:
        node = pending.pop()
        for name in _walk_table_names(node):
            if name.server is not None:
                continue
            key = name.object_name.lower()
            view = catalog.maybe_view(key) if catalog is not None else None
            if view is not None and not view.materialized:
                if key not in expanded:
                    expanded.add(key)
                    pending.append(view.select)
                continue
            if modes.get(key) is not LockMode.EXCLUSIVE:
                modes[key] = LockMode.SHARED
    if write_target is not None:
        modes[write_target] = LockMode.EXCLUSIVE
    return modes


def _plan_covers(
    statement: sqlast.Statement,
    catalog,
    lock_plan: Callable,
    where: str,
) -> List[AnalysisError]:
    """Does the statement's lock plan cover its independent table walk?"""
    plan = lock_plan(statement, catalog)
    expected = _expected_modes(statement, catalog)
    if plan is None:
        if not expected:
            return []  # touches no shared state; no plan needed
        return [
            AnalysisError(
                "missing-table-lock",
                f"{type(statement).__name__} touches "
                f"{sorted(expected)} but has no lock plan",
                location=where,
            )
        ]
    if plan.latch is LockMode.EXCLUSIVE:
        return []  # exclusive latch subsumes every table lock
    granted = dict(plan.tables)
    diagnostics: List[AnalysisError] = []
    for table, needed in sorted(expected.items()):
        held = granted.get(table)
        if held is None or (needed is LockMode.EXCLUSIVE and held is not needed):
            diagnostics.append(
                AnalysisError(
                    "missing-table-lock",
                    f"{type(statement).__name__} needs {needed.value} on "
                    f"{table!r} but the plan grants {held.value if held else 'nothing'}",
                    location=where,
                )
            )
    return diagnostics


def _body_statements(
    body: Sequence[sqlast.Statement],
) -> Iterator[sqlast.Statement]:
    for statement in body:
        yield statement
        if isinstance(statement, sqlast.IfStatement):
            yield from _body_statements(statement.then_body)
            yield from _body_statements(statement.else_body)
        elif isinstance(statement, sqlast.WhileStatement):
            yield from _body_statements(statement.body)


def check_lock_plans(
    database,
    where: str,
    lock_plan: Callable = statement_lock_plan,
) -> List[AnalysisError]:
    """Verify plan coverage over one provisioned database's catalog.

    * every *writing* procedure's EXEC plan is an exclusive latch span;
    * every statement in every *read-only* procedure body individually
      covers its reads (those bodies dispatch statement-at-a-time);
    * a synthetic single-table DML per base table covers its write —
      the ad-hoc autocommit path.
    """
    catalog = database.catalog
    diagnostics: List[AnalysisError] = []
    for name, procedure in sorted(catalog.procedures.items()):
        writes = _procedure_writes(procedure.body, catalog, {name.lower()})
        exec_plan = lock_plan(parse(f"EXEC {procedure.name}"), catalog)
        if writes:
            if exec_plan is None or exec_plan.latch is not LockMode.EXCLUSIVE:
                diagnostics.append(
                    AnalysisError(
                        "exec-span",
                        f"procedure {procedure.name} writes, but EXEC's plan "
                        f"is {exec_plan!r} instead of an exclusive latch "
                        "span; two calls could interleave between its read "
                        "and its dependent write",
                        location=where,
                    )
                )
            continue  # the exclusive span subsumes per-statement checks
        for statement in _body_statements(procedure.body):
            if isinstance(
                statement,
                (
                    sqlast.IfStatement,
                    sqlast.WhileStatement,
                    sqlast.ReturnStatement,
                    sqlast.Execute,
                ),
            ):
                continue
            diagnostics += _plan_covers(
                statement, catalog, lock_plan, f"{where}::{procedure.name}"
            )
    for table in sorted(catalog.tables):
        diagnostics += _plan_covers(
            parse(f"DELETE FROM {table}"),
            catalog,
            lock_plan,
            f"{where}::<ad-hoc DML on {table}>",
        )
    return diagnostics


# -- the shard rebalance window (static, over deployment.py's AST) ---------

_SLICE_MUTATORS = {"set_slice", "add_shard", "remove_shard", "move_boundary"}


def _call_attr(node: pyast.AST) -> Optional[Tuple[str, str]]:
    """``("base.dotted.path", "method")`` for an attribute call."""
    if not (isinstance(node, pyast.Call) and isinstance(node.func, pyast.Attribute)):
        return None
    parts: List[str] = []
    value: pyast.AST = node.func.value
    while isinstance(value, pyast.Attribute):
        parts.append(value.attr)
        value = value.value
    if isinstance(value, pyast.Name):
        parts.append(value.id)
    return ".".join(reversed(parts)), node.func.attr


def check_rebalance_protocol(source: Optional[str] = None) -> List[AnalysisError]:
    """Static protocol check over ``sharding/deployment.py``.

    Every method that mutates partitioner slices must (a) drain
    replication with ``sync()`` *before* the first slice mutation or
    retarget (``rebalance-drain``), and (b) commit a boundary move via
    the atomic ``partitioner.move_boundary`` — two ``set_slice`` calls
    open a window where a concurrent router sees a torn boundary
    (``boundary-move-window``).
    """
    if source is None:
        from repro.sharding import deployment as deployment_module

        path = inspect.getsourcefile(deployment_module)
        assert path is not None
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    where = "repro/sharding/deployment.py"
    tree = pyast.parse(source)
    diagnostics: List[AnalysisError] = []
    for node in pyast.walk(tree):
        if not isinstance(node, pyast.FunctionDef):
            continue
        drained = False
        set_slice_calls = 0
        for call in pyast.walk(node):
            resolved = _call_attr(call)
            if resolved is None:
                continue
            base, method = resolved
            is_mutation = (
                base.endswith("partitioner") and method in _SLICE_MUTATORS
            ) or method == "_retarget"
            if method == "sync":
                drained = True
            elif is_mutation and not drained:
                diagnostics.append(
                    AnalysisError(
                        "rebalance-drain",
                        f"{node.name} mutates shard slices "
                        f"({base}.{method}) without draining replication "
                        "first; commands produced under the old slices "
                        "would classify against the new predicates",
                        location=f"{where}:{call.lineno}",
                    )
                )
                drained = True  # report once per function
            if base.endswith("partitioner") and method == "set_slice":
                set_slice_calls += 1
        if set_slice_calls >= 2:
            diagnostics.append(
                AnalysisError(
                    "boundary-move-window",
                    f"{node.name} commits a boundary move as "
                    f"{set_slice_calls} separate set_slice calls; use "
                    "partitioner.move_boundary so concurrent routers "
                    "never observe a torn boundary",
                    location=where,
                )
            )
    return diagnostics


def check_atomicity(
    backend=None,
    cache=None,
    lock_plan: Callable = statement_lock_plan,
) -> List[AnalysisError]:
    """Run all atomicity rules; corpus-driven rules run when given servers."""
    diagnostics = check_statement_coverage()
    diagnostics += check_rebalance_protocol()
    if backend is not None:
        for name, database in sorted(backend.databases.items()):
            diagnostics += check_lock_plans(
                database, f"{backend.name}:{name}", lock_plan
            )
    if cache is not None:
        diagnostics += check_lock_plans(
            cache.database, f"{cache.server.name}", lock_plan
        )
    return diagnostics
