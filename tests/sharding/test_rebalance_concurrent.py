"""ShardRouter under concurrent rebalancing: boundary moves mid-traffic.

Worker threads hammer single-key procedure calls through ONE shared
:class:`ShardRouter` while the main thread repeatedly moves the
partition boundary between the two shards. Every response is compared
against the backend's answer — a stale ownership guess mid-move must
degrade to the guarded-plan backend fetch, never to a wrong row — and
the shard hit/miss counters must account for every routed request
exactly. The whole test runs under the suite-wide lock witness, so any
ordering violation between the router's mutex, the partitioner's rmutex
and the engine locks fails the session gate.
"""

from __future__ import annotations

import sys
import threading
import time

import pytest

from repro.analysis.shardlint import check_partitioner
from repro.client.connection import connect
from repro.sharding import ShardedDeployment
from repro.tpcw import TPCWConfig

pytestmark = [pytest.mark.shard, pytest.mark.concurrency]

WORKERS = 4
#: Item ids probed by the workers, spread across the whole key domain so
#: every boundary move strands some of them on the "wrong" shard.
ITEMS = tuple(range(1, 101, 3))


@pytest.fixture(autouse=True)
def aggressive_preemption():
    old = sys.getswitchinterval()
    sys.setswitchinterval(1e-4)
    yield
    sys.setswitchinterval(old)


def _await(predicate, timeout=30.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "timed out waiting for traffic"
        time.sleep(0.005)


def test_boundary_moves_mid_traffic_stay_exact():
    sharded = ShardedDeployment(
        config=TPCWConfig(num_items=100, num_ebs=4, seed=29), shards=2
    )
    router = sharded.router()
    backend = connect(sharded.backend, database=sharded.database_name)
    expected = {
        item: backend.execute("EXEC getBook @i_id = @i_id", {"i_id": item}).rows
        for item in ITEMS
    }
    stock = {
        item: backend.execute("EXEC getStock @i_id = @i_id", {"i_id": item}).rows
        for item in ITEMS
    }

    barrier = threading.Barrier(WORKERS + 1)
    stop = threading.Event()
    failures = []
    counts = [0] * WORKERS

    def hammer(index: int) -> None:
        try:
            barrier.wait(timeout=10.0)
            mine = ITEMS[index::WORKERS]
            while not stop.is_set():
                for item in mine:
                    rows = router.execute(
                        "EXEC getBook @i_id = @i_id", {"i_id": item}
                    ).rows
                    assert rows == expected[item], f"getBook({item}) diverged"
                    rows = router.execute(
                        "EXEC getStock @i_id = @i_id", {"i_id": item}
                    ).rows
                    assert rows == stock[item], f"getStock({item}) diverged"
                    counts[index] += 2
        except BaseException as exc:  # pragma: no cover - only on regression
            failures.append(exc)
            stop.set()

    threads = [
        threading.Thread(target=hammer, args=(index,), daemon=True)
        for index in range(WORKERS)
    ]
    for thread in threads:
        thread.start()
    barrier.wait(timeout=10.0)

    left, right = sharded.partitioner.shards
    original = (sharded.partitioner.slice(left), sharded.partitioner.slice(right))
    issued = 0
    # Each move waits for fresh traffic first, so every cutover happens
    # with requests actually in flight. The deltas sum to zero: the tier
    # ends exactly where it started.
    for delta in (7, -11, 4, -3, 3):
        issued += 20
        _await(lambda: sum(counts) >= issued and not stop.is_set())
        if stop.is_set():
            break
        _, left_high = sharded.partitioner.slice(left)
        moved = sharded.move_boundary(left, right, left_high + delta)
        assert moved > 0
        sharded.sync()
        # The partitioner still tiles the domain after every move.
        assert check_partitioner(sharded.partitioner) == []

    stop.set()
    for thread in threads:
        thread.join(timeout=60.0)
    assert failures == []
    assert (
        sharded.partitioner.slice(left),
        sharded.partitioner.slice(right),
    ) == original

    # Exact accounting: every request the workers issued was answered
    # exactly once, either by the owning shard (hit) or by the backend
    # fallback (miss) — nothing dropped, nothing double-counted.
    total = sum(counts)
    assert total >= issued
    hits = sum(
        sharded.metrics.counter("shard.hits", labels={"shard": shard}).value
        for shard in sharded.partitioner.shards
    )
    misses = sharded.metrics.counter("shard.misses").value
    assert hits + misses == total
    assert hits > 0  # routing did not silently degrade to all-backend

    # Every latch quiesced on both tiers.
    for server in [sharded.backend] + [c.server for c in sharded.shards.values()]:
        for name in server.databases:
            latch = server.database(name).latch
            assert latch.readers == 0
            assert not latch.owns_exclusive()
