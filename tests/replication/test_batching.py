"""Replication batching: many pending transactions, one subscriber trip."""

import pytest

from repro import MTCacheDeployment

from tests.conftest import make_shop_backend


@pytest.fixture
def env():
    backend = make_shop_backend(customers=50, orders=100)
    deployment = MTCacheDeployment(backend, "shop")
    cache = deployment.add_cache_server("cache1")
    cache.create_cached_view(
        "CREATE CACHED VIEW vcust AS "
        "SELECT cid, cname, segment FROM customer WHERE cid <= 30"
    )
    return backend, deployment, cache


def view_rows(cache):
    return cache.execute("SELECT cid, cname, segment FROM vcust ORDER BY cid").rows


def agent_for(deployment, cache):
    return cache.agents["vcust"]


class TestBatchedApply:
    def test_backlog_applies_in_one_round_trip(self, env):
        backend, deployment, cache = env
        agent = agent_for(deployment, cache)
        trips_before = agent.round_trips
        for i in range(1, 6):
            backend.execute(
                f"UPDATE customer SET cname = 'batch{i}' WHERE cid = {i}",
                database="shop",
            )
        deployment.log_reader.poll()
        applied = agent.poll(deployment.clock.now())
        assert applied == 5
        assert agent.round_trips == trips_before + 1
        assert agent.round_trips_saved >= 4
        rows = view_rows(cache)
        for i in range(1, 6):
            assert (i, f"batch{i}", rows[i - 1][2]) in rows

    def test_savings_credited_to_subscriber_server(self, env):
        backend, deployment, cache = env
        before = cache.server.total_work.round_trips_saved
        for i in range(1, 4):
            backend.execute(
                f"UPDATE customer SET cname = 'w{i}' WHERE cid = 10", database="shop"
            )
        deployment.log_reader.poll()
        agent_for(deployment, cache).poll(deployment.clock.now())
        assert cache.server.total_work.round_trips_saved == before + 2

    def test_commit_order_preserved_within_batch(self, env):
        """Insert→update→delete of one row across three transactions can
        only converge if the batch replays them in commit order."""
        backend, deployment, cache = env
        backend.execute("DELETE FROM orders WHERE o_cid = 20", database="shop")
        backend.execute("DELETE FROM customer WHERE cid = 20", database="shop")
        backend.execute(
            "INSERT INTO customer VALUES (20, 'reborn', 'a', 'base')", database="shop"
        )
        backend.execute(
            "UPDATE customer SET cname = 'renamed' WHERE cid = 20", database="shop"
        )
        deployment.log_reader.poll()
        applied = agent_for(deployment, cache).poll(deployment.clock.now())
        assert applied >= 3
        rows = view_rows(cache)
        assert len(rows) == 30
        assert (20, "renamed", "base") in rows

    def test_interleaved_rows_stay_consistent(self, env):
        """A batch touching many rows leaves the view equal to the source."""
        backend, deployment, cache = env
        for i in range(1, 31):
            backend.execute(
                f"UPDATE customer SET segment = 'tier{i % 3}' WHERE cid = {i}",
                database="shop",
            )
        deployment.sync()
        source = backend.execute(
            "SELECT cid, cname, segment FROM customer WHERE cid <= 30 ORDER BY cid",
            database="shop",
        ).rows
        assert view_rows(cache) == source

    def test_latency_samples_per_transaction(self, env):
        """Batching must not collapse latency accounting: one sample per
        applied transaction, commit timestamps intact."""
        backend, deployment, cache = env
        subscription = cache.subscriptions["vcust"]
        samples_before = len(subscription.latency_samples)
        for i in range(1, 4):
            backend.execute(
                f"UPDATE customer SET cname = 'l{i}' WHERE cid = {i}", database="shop"
            )
            deployment.clock.advance(0.05)
        deployment.log_reader.poll()
        agent_for(deployment, cache).poll(deployment.clock.now())
        assert len(subscription.latency_samples) == samples_before + 3
        commits = [c for c, _ in subscription.latency_samples[-3:]]
        assert commits == sorted(commits)

    def test_empty_backlog_is_not_a_round_trip(self, env):
        _, deployment, cache = env
        agent = agent_for(deployment, cache)
        deployment.sync()
        trips = agent.round_trips
        assert agent.poll(deployment.clock.now()) == 0
        assert agent.round_trips == trips

    def test_batches_applied_counter(self, env):
        backend, deployment, cache = env
        subscription = cache.subscriptions["vcust"]
        before = subscription.batches_applied
        backend.execute(
            "UPDATE customer SET cname = 'x' WHERE cid = 2", database="shop"
        )
        backend.execute(
            "UPDATE customer SET cname = 'y' WHERE cid = 3", database="shop"
        )
        deployment.log_reader.poll()
        agent_for(deployment, cache).poll(deployment.clock.now())
        assert subscription.batches_applied == before + 1
