"""Cost-based optimizer with DataLocation, DataTransfer and dynamic plans.

This package implements the MTCache optimizer extensions described in
section 5 of the paper:

* every data source carries a **DataLocation** (Local or Remote);
* a **DataTransfer** enforcer converts Remote subplans to Local by shipping
  the subexpression to the backend as textual SQL (``RemoteQueryOp``) and
  charging a transfer cost proportional to the shipped volume;
* remote operator costs are multiplied by a configurable factor > 1 to
  favour local execution on a loaded backend;
* cached materialized views are matched against queries with full
  select-project containment checking, producing either unconditional
  matches or **parameter-guarded** matches;
* guarded matches become **dynamic plans** (ChoosePlan), implemented as a
  UnionAll whose branches carry startup predicates, with cost estimated as
  the guard-frequency-weighted average of the branches.
"""

from repro.optimizer.cost import CostModel
from repro.optimizer.planner import Optimizer, PlannedStatement

__all__ = ["CostModel", "Optimizer", "PlannedStatement"]
