"""``repro.obs`` — the unified observability subsystem.

Four pillars, one package:

* :mod:`repro.obs.metrics` — thread-safe metrics registry (counters,
  gauges, fixed-bucket histograms), cheap enough to be always-on. Every
  :class:`~repro.engine.server.Server` owns one; the old ``total_work``
  counters are a facade over it.
* :mod:`repro.obs.tracing` — structured trace spans with parent/child
  linkage, propagated across linked-server calls via context variables
  and exported through a bounded ring buffer.
* :mod:`repro.obs.profile` — opt-in per-operator execution profiles
  (actual rows / opens / wall time per plan operator), rendered as an
  annotated plan tree.
* :mod:`repro.obs.replication_metrics` — per-subscription replication lag
  gauges, apply-batch histograms and distribution-queue depth.

:mod:`repro.obs.export` snapshots all of it to JSON (also:
``python -m repro metrics``).
"""

from repro.obs.metrics import (
    Counter,
    CounterGroupView,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
)
from repro.obs.profile import ExecutionProfile, OperatorProfile, profiled
from repro.obs.tracing import (
    Span,
    SpanCollector,
    Tracer,
    active_span,
    format_trace,
    global_collector,
)

__all__ = [
    "Counter",
    "CounterGroupView",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "ExecutionProfile",
    "OperatorProfile",
    "profiled",
    "Span",
    "SpanCollector",
    "Tracer",
    "active_span",
    "format_trace",
    "global_collector",
]
