"""The TPC-W schema: eight benchmark tables plus shopping carts.

Matches the benchmark's logical design (trimmed to the columns the
fourteen interactions actually touch). Shopping carts are stored in the
database, as the paper notes is typical (session state must persist).
Indexes mirror a sensible production setup; the paper kept cache-server
indexes identical to the backend's.
"""

from __future__ import annotations

SCHEMA_SQL = """
CREATE TABLE country (
    co_id INT PRIMARY KEY,
    co_name VARCHAR(50) NOT NULL,
    co_currency VARCHAR(18),
    co_exchange FLOAT
);

CREATE TABLE author (
    a_id INT PRIMARY KEY,
    a_fname VARCHAR(20) NOT NULL,
    a_lname VARCHAR(20) NOT NULL,
    a_mname VARCHAR(20),
    a_bio VARCHAR(100)
);

CREATE TABLE address (
    addr_id INT PRIMARY KEY,
    addr_street1 VARCHAR(40),
    addr_street2 VARCHAR(40),
    addr_city VARCHAR(30),
    addr_state VARCHAR(20),
    addr_zip VARCHAR(10),
    addr_co_id INT NOT NULL
);

CREATE TABLE customer (
    c_id INT PRIMARY KEY,
    c_uname VARCHAR(20) NOT NULL,
    c_passwd VARCHAR(20) NOT NULL,
    c_fname VARCHAR(17) NOT NULL,
    c_lname VARCHAR(17) NOT NULL,
    c_addr_id INT NOT NULL,
    c_phone VARCHAR(18),
    c_email VARCHAR(50),
    c_since DATETIME,
    c_last_login DATETIME,
    c_login DATETIME,
    c_expiration DATETIME,
    c_discount FLOAT,
    c_balance FLOAT,
    c_ytd_pmt FLOAT
);

CREATE TABLE item (
    i_id INT PRIMARY KEY,
    i_title VARCHAR(60) NOT NULL,
    i_a_id INT NOT NULL,
    i_pub_date DATETIME,
    i_publisher VARCHAR(60),
    i_subject VARCHAR(20),
    i_desc VARCHAR(100),
    i_related1 INT,
    i_related2 INT,
    i_related3 INT,
    i_related4 INT,
    i_related5 INT,
    i_thumbnail VARCHAR(40),
    i_image VARCHAR(40),
    i_srp FLOAT,
    i_cost FLOAT,
    i_avail DATETIME,
    i_stock INT,
    i_isbn VARCHAR(13),
    i_page INT,
    i_backing VARCHAR(15),
    i_dimensions VARCHAR(25)
);

CREATE TABLE orders (
    o_id INT PRIMARY KEY,
    o_c_id INT NOT NULL,
    o_date DATETIME NOT NULL,
    o_sub_total FLOAT,
    o_tax FLOAT,
    o_total FLOAT,
    o_ship_type VARCHAR(10),
    o_ship_date DATETIME,
    o_bill_addr_id INT,
    o_ship_addr_id INT,
    o_status VARCHAR(15)
);

CREATE TABLE order_line (
    ol_id INT NOT NULL,
    ol_o_id INT NOT NULL,
    ol_i_id INT NOT NULL,
    ol_qty INT,
    ol_discount FLOAT,
    ol_comments VARCHAR(100),
    PRIMARY KEY (ol_o_id, ol_id)
);

CREATE TABLE cc_xacts (
    cx_o_id INT PRIMARY KEY,
    cx_type VARCHAR(10),
    cx_num VARCHAR(20),
    cx_name VARCHAR(30),
    cx_expire DATETIME,
    cx_auth_id VARCHAR(15),
    cx_xact_amt FLOAT,
    cx_xact_date DATETIME,
    cx_co_id INT
);

CREATE TABLE shopping_cart (
    sc_id INT PRIMARY KEY,
    sc_time DATETIME,
    sc_total FLOAT
);

CREATE TABLE shopping_cart_line (
    scl_sc_id INT NOT NULL,
    scl_i_id INT NOT NULL,
    scl_qty INT,
    PRIMARY KEY (scl_sc_id, scl_i_id)
);

CREATE INDEX ix_customer_uname ON customer (c_uname);
CREATE INDEX ix_item_subject ON item (i_subject);
CREATE INDEX ix_item_author ON item (i_a_id);
CREATE INDEX ix_orders_customer ON orders (o_c_id);
CREATE INDEX ix_orders_date ON orders (o_date);
CREATE INDEX ix_order_line_item ON order_line (ol_i_id);
CREATE INDEX ix_address_country ON address (addr_co_id);
"""


def create_schema(server, database: str) -> None:
    """Run the schema script on a server."""
    server.execute(SCHEMA_SQL, database=database)
