"""The per-database catalog: object registry plus permissions.

Provides the clone operation that powers MTCache shadow databases: every
table, view, index, procedure and grant is duplicated as metadata, while
data stays behind on the backend.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.catalog.objects import IndexDef, ProcedureDef, TableDef, ViewDef
from repro.catalog.permissions import PermissionSet
from repro.errors import CatalogError


class Catalog:
    """Name-keyed registry of database objects (case-insensitive)."""

    def __init__(self):
        self.tables: Dict[str, TableDef] = {}
        self.views: Dict[str, ViewDef] = {}
        self.indexes: Dict[str, IndexDef] = {}
        self.procedures: Dict[str, ProcedureDef] = {}
        self.permissions = PermissionSet()

    # -- tables --------------------------------------------------------------

    def add_table(self, table: TableDef) -> None:
        key = table.name.lower()
        if key in self.tables or key in self.views:
            raise CatalogError(f"object {table.name!r} already exists")
        self.tables[key] = table

    def get_table(self, name: str) -> TableDef:
        table = self.tables.get(name.lower())
        if table is None:
            raise CatalogError(f"no table {name!r}")
        return table

    def maybe_table(self, name: str) -> Optional[TableDef]:
        return self.tables.get(name.lower())

    def drop_table(self, name: str) -> None:
        if name.lower() not in self.tables:
            raise CatalogError(f"no table {name!r}")
        del self.tables[name.lower()]
        self.indexes = {
            key: index
            for key, index in self.indexes.items()
            if index.table.lower() != name.lower()
        }

    # -- views ---------------------------------------------------------------

    def add_view(self, view: ViewDef) -> None:
        key = view.name.lower()
        if key in self.views or key in self.tables:
            raise CatalogError(f"object {view.name!r} already exists")
        self.views[key] = view

    def get_view(self, name: str) -> ViewDef:
        view = self.views.get(name.lower())
        if view is None:
            raise CatalogError(f"no view {name!r}")
        return view

    def maybe_view(self, name: str) -> Optional[ViewDef]:
        return self.views.get(name.lower())

    def drop_view(self, name: str) -> None:
        if name.lower() not in self.views:
            raise CatalogError(f"no view {name!r}")
        del self.views[name.lower()]

    def materialized_views(self) -> List[ViewDef]:
        """All materialized views (cached views included)."""
        return [view for view in self.views.values() if view.materialized]

    def cached_views(self) -> List[ViewDef]:
        """Only MTCache cached views."""
        return [view for view in self.views.values() if view.cached]

    # -- indexes ---------------------------------------------------------------

    def add_index(self, index: IndexDef) -> None:
        key = index.name.lower()
        if key in self.indexes:
            raise CatalogError(f"index {index.name!r} already exists")
        self.indexes[key] = index

    def get_index(self, name: str) -> IndexDef:
        index = self.indexes.get(name.lower())
        if index is None:
            raise CatalogError(f"no index {name!r}")
        return index

    def drop_index(self, name: str) -> None:
        if name.lower() not in self.indexes:
            raise CatalogError(f"no index {name!r}")
        del self.indexes[name.lower()]

    def indexes_on(self, table_name: str) -> List[IndexDef]:
        """All index definitions on a table (or materialized view)."""
        return [
            index
            for index in self.indexes.values()
            if index.table.lower() == table_name.lower()
        ]

    # -- procedures --------------------------------------------------------------

    def add_procedure(self, procedure: ProcedureDef) -> None:
        key = procedure.name.lower()
        if key in self.procedures:
            raise CatalogError(f"procedure {procedure.name!r} already exists")
        self.procedures[key] = procedure

    def get_procedure(self, name: str) -> ProcedureDef:
        procedure = self.procedures.get(name.lower())
        if procedure is None:
            raise CatalogError(f"no procedure {name!r}")
        return procedure

    def maybe_procedure(self, name: str) -> Optional[ProcedureDef]:
        return self.procedures.get(name.lower())

    def drop_procedure(self, name: str) -> None:
        if name.lower() not in self.procedures:
            raise CatalogError(f"no procedure {name!r}")
        del self.procedures[name.lower()]

    # -- resolution & cloning -----------------------------------------------------

    def resolve_object(self, name: str) -> Optional[object]:
        """Return the TableDef or ViewDef for a name, or None."""
        return self.maybe_table(name) or self.maybe_view(name)

    def clone_for_shadow(self, include_procedures: bool = False) -> "Catalog":
        """Clone all metadata for an MTCache shadow database.

        Tables, views, indexes and permissions are always shadowed (needed
        for local parsing, view substitution and permission checks).
        Procedures are copied only on request: the paper leaves procedure
        placement to the DBA (``copy_procedure`` on the cache server).
        """
        shadow = Catalog()
        shadow.tables = dict(self.tables)
        shadow.views = {
            key: view for key, view in self.views.items() if not view.cached
        }
        shadow.indexes = dict(self.indexes)
        if include_procedures:
            shadow.procedures = dict(self.procedures)
        shadow.permissions = self.permissions.copy()
        return shadow
