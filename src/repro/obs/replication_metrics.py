"""Replication observability: per-subscription lag gauges and batch stats.

The paper's Experiment 3 measures replication latency; these gauges make
the same quantities continuously visible instead of post-hoc:

* ``replication.lag_transactions{subscription=...}`` — how many committed
  transactions the subscription still has to consume (the commit-sequence
  delta between the distribution database's frontier and the
  subscription's watermark; the repro's analogue of a commit-LSN delta).
* ``replication.lag_seconds{subscription=...}`` — the age of the cached
  data: now minus the newest point the subscription is known current as
  of (same formula the freshness clause uses).
* ``replication.batch_size{subscription=...}`` — histogram of transactions
  applied per subscriber round trip (the agent-batching win from PR 1).
* ``replication.distribution_queue_depth`` — transactions sitting in the
  distribution database, sampled at each agent poll.

Gauges land on the *subscriber* server's registry — the same attribution
the cluster simulator uses for apply CPU — so a cache server's snapshot
tells the whole story of its own staleness.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

#: Transactions applied in one subscriber round trip.
BATCH_SIZE_BUCKETS = (1, 2, 5, 10, 25, 50, 100, 250)
#: Replication lag age in seconds (sub-second to tens of seconds).
LAG_AGE_BUCKETS = (0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0)


def registry_for_subscription(subscription) -> Optional[Any]:
    """The subscriber server's metrics registry, if observability is on."""
    server = getattr(subscription.subscriber_database, "owner_server", None)
    if server is None or not getattr(server, "observability", False):
        return None
    return getattr(server, "metrics", None)


def _lag_values(agent, now: float) -> Dict[str, float]:
    subscription = agent.subscription
    frontier = agent.distributor.distribution_db.last_sequence
    synced = getattr(subscription, "synced_through", 0.0)
    current_as_of = max(subscription.last_applied_commit_ts, synced)
    return {
        "lag_transactions": max(0, frontier - subscription.last_sequence),
        "lag_seconds": max(0.0, now - current_as_of),
        "queue_depth": len(agent.distributor.distribution_db),
    }


def update_lag_gauges(agent, now: Optional[float] = None, registry=None) -> Dict[str, float]:
    """Refresh one agent's lag gauges; returns the sampled values."""
    subscription = agent.subscription
    if now is None:
        now = subscription.subscriber_database.clock.now()
    values = _lag_values(agent, now)
    if registry is None:
        registry = registry_for_subscription(subscription)
    if registry is not None:
        labels = {"subscription": subscription.name}
        registry.gauge("replication.lag_transactions", labels=labels).set(
            values["lag_transactions"]
        )
        registry.gauge("replication.lag_seconds", labels=labels).set(
            values["lag_seconds"]
        )
        registry.gauge("replication.distribution_queue_depth").set(
            values["queue_depth"]
        )
    return values


def record_batch(agent, batch_size: int, now: Optional[float] = None) -> None:
    """Record one applied batch on the subscriber's registry.

    Called by :class:`~repro.replication.agent.DistributionAgent` after a
    poll applies ``batch_size`` transactions in one round trip.
    """
    registry = registry_for_subscription(agent.subscription)
    if registry is None:
        return
    labels = {"subscription": agent.subscription.name}
    registry.histogram(
        "replication.batch_size", buckets=BATCH_SIZE_BUCKETS, labels=labels
    ).observe(batch_size)
    registry.counter("replication.transactions_applied", labels=labels).inc(batch_size)
    registry.counter("replication.round_trips", labels=labels).inc()
    update_lag_gauges(agent, now=now, registry=registry)


def sample(deployment) -> Dict[str, Dict[str, float]]:
    """Refresh and return lag for every agent of a deployment.

    Keys are subscription names; values the sampled lag dicts. Use this
    for on-demand reads (snapshots, the CLI) — between agent polls the
    ``lag_seconds`` gauge ages and this recomputes it.
    """
    samples: Dict[str, Dict[str, float]] = {}
    now = deployment.clock.now()
    for agent in deployment.distributor.agents:
        samples[agent.subscription.name] = update_lag_gauges(agent, now=now)
    return samples


def rollup(
    deployment, samples: Optional[Dict[str, Dict[str, float]]] = None, registry=None
) -> Dict[str, Any]:
    """Aggregate per-subscription lag across the whole cache tier.

    With one cache the per-subscription gauges are the whole story; a
    sharded tier has ``shards x views`` subscriptions and the question
    becomes "which shard is behind, and how far is the worst one?". This
    groups subscriptions by subscriber server and publishes tier-wide
    ``replication.tier_lag_*`` (max and mean) plus per-server
    ``replication.server_lag_seconds_max{server=...}`` gauges on the
    *publisher's* registry — the one place that sees every shard.
    """
    if samples is None:
        samples = sample(deployment)
    per_server: Dict[str, Dict[str, float]] = {}
    for agent in deployment.distributor.agents:
        values = samples.get(agent.subscription.name)
        if values is None:
            continue
        server = getattr(
            agent.subscription.subscriber_database, "owner_server", None
        )
        bucket = per_server.setdefault(
            getattr(server, "name", "unknown"),
            {"lag_seconds_max": 0.0, "lag_transactions_max": 0, "subscriptions": 0},
        )
        bucket["lag_seconds_max"] = max(
            bucket["lag_seconds_max"], values["lag_seconds"]
        )
        bucket["lag_transactions_max"] = max(
            bucket["lag_transactions_max"], values["lag_transactions"]
        )
        bucket["subscriptions"] += 1
    seconds = [values["lag_seconds"] for values in samples.values()]
    transactions = [values["lag_transactions"] for values in samples.values()]
    summary: Dict[str, Any] = {
        "lag_seconds_max": max(seconds, default=0.0),
        "lag_seconds_mean": sum(seconds) / len(seconds) if seconds else 0.0,
        "lag_transactions_max": max(transactions, default=0),
        "lag_transactions_mean": (
            sum(transactions) / len(transactions) if transactions else 0.0
        ),
        "servers": per_server,
    }
    if registry is None:
        backend = getattr(deployment, "backend", None)
        if backend is not None and getattr(backend, "observability", False):
            registry = getattr(backend, "metrics", None)
    if registry is not None:
        registry.gauge("replication.tier_lag_seconds_max").set(
            summary["lag_seconds_max"]
        )
        registry.gauge("replication.tier_lag_seconds_mean").set(
            summary["lag_seconds_mean"]
        )
        registry.gauge("replication.tier_lag_transactions_max").set(
            summary["lag_transactions_max"]
        )
        for server_name, bucket in per_server.items():
            registry.gauge(
                "replication.server_lag_seconds_max", labels={"server": server_name}
            ).set(bucket["lag_seconds_max"])
    return summary
