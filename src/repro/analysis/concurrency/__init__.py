"""Whole-program concurrency lint: lock order, atomicity, runtime witness.

Three cooperating passes over the repo's locking protocol:

* :mod:`repro.analysis.concurrency.lockorder` — a static analyzer that
  walks the package AST plus an intraprocedural call graph, extracts
  every acquisition of the :mod:`repro.common.locks` chokepoint
  primitives, builds the global lock-acquisition graph, and reports
  cycles, order inversions, non-chokepoint primitives, and blocking
  calls made while an engine latch is held;
* :mod:`repro.analysis.concurrency.atomicity` — verifies that
  :func:`~repro.engine.locks.statement_lock_plan` covers every statement
  class and that every mutation path (DML, EXEC of writing procedures,
  the shard boundary-move window) acquires the locks it requires;
* :mod:`repro.analysis.concurrency.witnesscheck` — asserts that the
  graph the runtime witness (:mod:`repro.common.witness`) observed
  during a test run embeds in the statically modeled hierarchy and that
  no violations fired.

All three are wired into ``python -m repro analyze --concurrency``.
"""

from repro.analysis.concurrency.atomicity import check_atomicity
from repro.analysis.concurrency.lockorder import LockOrderReport, analyze_lock_order
from repro.analysis.concurrency.witnesscheck import verify_witness

__all__ = [
    "LockOrderReport",
    "analyze_lock_order",
    "check_atomicity",
    "verify_witness",
]
