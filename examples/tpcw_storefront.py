"""TPC-W storefront: the paper's evaluation scenario in miniature.

Builds the TPC-W bookstore on a backend server, runs Shopping-mix traffic
directly against the backend, then enables MTCache (the paper's caching
strategy: projections of item/author/orders/order_line plus the
read-dominated stored procedures) and *redirects the application's ODBC
source* — no application change — and shows how much database work moved
to the cache tier.

The registry hands out DBAPI-style connections (``connection.cursor()``
works the same against either tier), which is what makes the redirect
invisible to application code.

Run:  python examples/tpcw_storefront.py
"""

import random

from repro.mtcache.odbc import OdbcSourceRegistry
from repro.tpcw import (
    MIXES,
    TPCWApplication,
    TPCWConfig,
    build_backend,
    enable_caching,
)

INTERACTIONS_TO_RUN = 300


def run_traffic(application, deployment=None, seed=7):
    rng = random.Random(seed)
    mix = MIXES["Shopping"]
    sessions = [application.new_session() for _ in range(8)]
    for step in range(INTERACTIONS_TO_RUN):
        application.run(mix.sample(rng), sessions[step % len(sessions)])
        if deployment is not None:
            deployment.tick(0.02)


def main() -> None:
    print("Building TPC-W backend (items, authors, customers, orders)...")
    backend, config = build_backend(TPCWConfig(num_items=200, num_ebs=40))

    registry = OdbcSourceRegistry()
    registry.register("tpcw", backend, "tpcw")

    # --- Phase 1: everything on the backend ---------------------------------
    connection = registry.connect("tpcw")
    application = TPCWApplication(connection, config)
    backend.reset_work()
    run_traffic(application)
    backend_only_work = backend.total_work.rows_processed
    print(f"\nPhase 1 (no cache): {INTERACTIONS_TO_RUN} Shopping interactions")
    print(f"  backend work: {backend_only_work:,} row touches")
    print(f"  db calls:     {application.db_calls}")

    # --- Phase 2: enable MTCache, redirect the DSN ---------------------------
    print("\nEnabling MTCache (cached views + copied procedures)...")
    deployment, caches = enable_caching(backend, ["cache1"], config)
    registry.redirect("tpcw", caches[0].server, "tpcw")

    connection = registry.connect("tpcw")  # the app code did not change
    application = TPCWApplication(connection, config)
    backend.reset_work()
    caches[0].server.reset_work()
    run_traffic(application, deployment)
    deployment.sync()

    backend_work = backend.total_work.rows_processed
    cache_work = caches[0].server.total_work.rows_processed
    print(f"\nPhase 2 (MTCache): same traffic through cache server")
    print(f"  backend work: {backend_work:,} row touches")
    print(f"  cache work:   {cache_work:,} row touches")
    offloaded = 1.0 - backend_work / max(1, backend_only_work)
    print(f"  backend load reduced by {offloaded:.0%}")
    latency = deployment.average_replication_latency()
    if latency is not None:
        print(f"  average replication latency: {latency:.2f}s")

    # --- The same cursor code works against either tier ----------------------
    cursor = registry.connect("tpcw").cursor()
    cursor.execute("SELECT i_title FROM item WHERE i_id = @id", {"id": 1})
    print("\nDBAPI cursor through the redirected source:", cursor.fetchone()[0])

    # --- Show a plan: the bestseller query runs on cached views --------------
    print("\nBestseller query plan on the cache server:")
    plan = caches[0].plan(
        "SELECT TOP 10 i.i_id, i.i_title, SUM(ol.ol_qty) AS sold "
        "FROM item i, order_line ol "
        "WHERE i.i_id = ol.ol_i_id AND i.i_subject = 'HISTORY' "
        "AND ol.ol_o_id IN (SELECT TOP 200 o_id FROM orders ORDER BY o_date DESC) "
        "GROUP BY i.i_id, i.i_title ORDER BY sold DESC"
    )
    print(plan.explain())


if __name__ == "__main__":
    main()
