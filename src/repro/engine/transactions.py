"""Transactions with WAL logging and undo-based rollback.

Changes apply to storage eagerly; each change appends a WAL record (the
replication log reader's food) and an undo entry. COMMIT stamps the WAL
with the virtual commit time — replication latency is measured from this
timestamp to the subscriber-side apply time.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.locks import mutex
from repro.errors import TransactionError
from repro.storage.table import Table
from repro.storage.wal import LogRecordType, WriteAheadLog


class Transaction:
    """One transaction: id, undo log, state."""

    _ids = itertools.count(1)

    def __init__(self, manager: "TransactionManager"):
        self.id = next(Transaction._ids)
        self.manager = manager
        self.active = True
        # Undo entries: ("insert", table, rid) | ("delete", table, rid, row)
        #             | ("update", table, rid, old_row)
        self._undo: List[Tuple] = []

    def record_insert(self, table: Table, rid: int) -> None:
        self._undo.append(("insert", table, rid))

    def record_delete(self, table: Table, rid: int, row: Tuple) -> None:
        self._undo.append(("delete", table, rid, row))

    def record_update(self, table: Table, rid: int, old_row: Tuple) -> None:
        self._undo.append(("update", table, rid, old_row))

    def undo_all(self) -> None:
        """Reverse every change, newest first."""
        for entry in reversed(self._undo):
            kind = entry[0]
            if kind == "insert":
                _, table, rid = entry
                table.delete_rid(rid)
            elif kind == "delete":
                # Restore under the original rid so later undo entries
                # referencing it stay valid.
                _, table, rid, row = entry
                table.insert_with_rid(rid, row)
            else:
                _, table, rid, old_row = entry
                table.update_rid(rid, old_row)
        self._undo.clear()


class TransactionManager:
    """Transaction manager for one database.

    Supports multiple concurrently active transactions (one per session
    or DTC participant); the engine's latch protocol decides which of
    them may actually run side by side. ``current`` is kept as a legacy
    accessor — the most recently begun still-active transaction — for
    call sites (DTC recovery, fault injection, single-session shims)
    that predate explicit transaction handles.
    """

    def __init__(self, wal: WriteAheadLog, clock):
        self.wal = wal
        self.clock = clock
        self._mutex = mutex()
        self._active: Dict[int, Transaction] = {}

    @property
    def current(self) -> Optional[Transaction]:
        """The most recently begun still-active transaction, if any."""
        with self._mutex:
            for transaction in reversed(list(self._active.values())):
                if transaction.active:
                    return transaction
            return None

    def active_transactions(self) -> List[Transaction]:
        """Every still-active transaction, oldest first (crash recovery)."""
        with self._mutex:
            return [t for t in self._active.values() if t.active]

    def begin(self) -> Transaction:
        transaction = Transaction(self)
        with self._mutex:
            self._active[transaction.id] = transaction
        self.wal.append(LogRecordType.BEGIN, transaction.id)
        return transaction

    def commit(self, transaction: Optional[Transaction] = None) -> float:
        """Commit; returns the virtual commit timestamp."""
        transaction = transaction or self.current
        if transaction is None or not transaction.active:
            raise TransactionError("no active transaction to commit")
        timestamp = self.clock.now()
        self.wal.append(LogRecordType.COMMIT, transaction.id, timestamp=timestamp)
        transaction.active = False
        with self._mutex:
            self._active.pop(transaction.id, None)
        return timestamp

    def rollback(self, transaction: Optional[Transaction] = None) -> None:
        transaction = transaction or self.current
        if transaction is None or not transaction.active:
            raise TransactionError("no active transaction to roll back")
        transaction.undo_all()
        self.wal.append(LogRecordType.ABORT, transaction.id)
        transaction.active = False
        with self._mutex:
            self._active.pop(transaction.id, None)

    # -- logged storage operations ---------------------------------------

    def logged_insert(self, transaction: Transaction, table: Table, values: Sequence) -> int:
        rid = table.insert(values)
        row = table.rows[rid]
        self.wal.append(
            LogRecordType.INSERT, transaction.id, table=table.name, new_row=row
        )
        transaction.record_insert(table, rid)
        return rid

    def logged_delete(self, transaction: Transaction, table: Table, rid: int) -> Tuple:
        old_row = table.delete_rid(rid)
        self.wal.append(
            LogRecordType.DELETE, transaction.id, table=table.name, old_row=old_row
        )
        transaction.record_delete(table, rid, old_row)
        return old_row

    def logged_update(
        self, transaction: Transaction, table: Table, rid: int, values: Sequence
    ) -> Tuple[Tuple, Tuple]:
        old_row, new_row = table.update_rid(rid, values)
        self.wal.append(
            LogRecordType.UPDATE,
            transaction.id,
            table=table.name,
            old_row=old_row,
            new_row=new_row,
        )
        transaction.record_update(table, rid, old_row)
        return old_row, new_row
