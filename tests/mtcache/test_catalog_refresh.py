"""Catalog refresh and minimal shadowing (paper §7 future work)."""

import pytest

from repro import MTCacheDeployment

from tests.conftest import make_shop_backend


@pytest.fixture
def env():
    backend = make_shop_backend(customers=50, orders=50)
    deployment = MTCacheDeployment(backend, "shop")
    return backend, deployment


class TestCatalogRefresh:
    def test_new_table_propagates(self, env):
        backend, deployment = env
        cache = deployment.add_cache_server("c1")
        backend.execute(
            "CREATE TABLE promo (pid INT PRIMARY KEY, blurb VARCHAR(50))",
            database="shop",
        )
        backend.execute("INSERT INTO promo VALUES (1, 'sale')", database="shop")
        backend.database("shop").analyze("promo")

        # Before the refresh the shadow cannot bind the new table.
        from repro.errors import BindError, CatalogError

        with pytest.raises((BindError, CatalogError)):
            cache.execute("SELECT blurb FROM promo")

        added = deployment.refresh_catalog()
        assert added["tables"] == 1
        # After: the query binds locally and routes to the backend.
        assert cache.execute("SELECT blurb FROM promo").rows == [("sale",)]
        assert cache.database.is_remote_table("promo")

    def test_new_index_propagates(self, env):
        backend, deployment = env
        cache = deployment.add_cache_server("c1")
        backend.execute(
            "CREATE INDEX ix_customer_name ON customer (cname)", database="shop"
        )
        added = deployment.refresh_catalog()
        assert added["indexes"] == 1
        assert "ix_customer_name" in cache.database.catalog.indexes

    def test_refresh_is_idempotent(self, env):
        backend, deployment = env
        deployment.add_cache_server("c1")
        backend.execute(
            "CREATE TABLE promo (pid INT PRIMARY KEY)", database="shop"
        )
        first = deployment.refresh_catalog()
        second = deployment.refresh_catalog()
        assert first["tables"] == 1
        assert second == {"tables": 0, "indexes": 0, "views": 0}

    def test_refresh_updates_statistics(self, env):
        backend, deployment = env
        cache = deployment.add_cache_server("c1")
        backend.execute("DELETE FROM customer WHERE cid > 10", database="shop")
        backend.database("shop").analyze("customer")
        deployment.refresh_catalog()
        assert cache.database.stats_for("customer").row_count == 10


class TestMinimalShadow:
    def test_only_requested_tables_shadowed(self, env):
        backend, deployment = env
        cache = deployment.add_cache_server("mini", shadow_tables=["customer"])
        assert cache.database.catalog.maybe_table("customer") is not None
        assert cache.database.catalog.maybe_table("orders") is None
        assert cache.minimal_shadow

    def test_cached_view_on_shadowed_table(self, env):
        backend, deployment = env
        cache = deployment.add_cache_server("mini", shadow_tables=["customer"])
        cache.create_cached_view(
            "CREATE CACHED VIEW mv AS SELECT cid, cname FROM customer WHERE cid <= 20"
        )
        assert cache.execute("SELECT COUNT(*) FROM mv").scalar == 20
        planned = cache.plan("SELECT cname FROM customer WHERE cid = 3")
        assert not planned.uses_remote

    def test_unshadowed_statement_forwards_whole(self, env):
        backend, deployment = env
        cache = deployment.add_cache_server("mini", shadow_tables=["customer"])
        # orders is not shadowed: binding fails locally, statement forwards.
        result = cache.execute("SELECT total FROM orders WHERE oid = 5")
        assert result.rows == [(7.5,)]
        assert cache.statements_forwarded == 1

    def test_unshadowed_dml_forwards_whole(self, env):
        backend, deployment = env
        cache = deployment.add_cache_server("mini", shadow_tables=["customer"])
        result = cache.execute("UPDATE orders SET status = 'X' WHERE oid = 1")
        assert result.rowcount == 1
        assert (
            backend.execute("SELECT status FROM orders WHERE oid = 1", database="shop").scalar
            == "X"
        )

    def test_full_shadow_still_raises_on_unknown(self, env):
        backend, deployment = env
        cache = deployment.add_cache_server("full")
        from repro.errors import BindError, CatalogError

        with pytest.raises((BindError, CatalogError)):
            cache.execute("SELECT x FROM never_existed")


class TestAgentModes:
    def test_pull_and_push_modes_apply_identically(self, env):
        backend, deployment = env
        cache = deployment.add_cache_server("c1")
        cache.create_cached_view(
            "CREATE CACHED VIEW vc AS SELECT cid, cname FROM customer WHERE cid <= 30"
        )
        agent = cache.agents["vc"]
        assert agent.mode == "push"  # our distributor pushes by default
        from repro.replication.agent import DistributionAgent

        pull = DistributionAgent(
            cache.subscriptions["vc"], deployment.distributor, 0.25, mode="pull"
        )
        assert pull.mode == "pull"
        with pytest.raises(ValueError):
            DistributionAgent(cache.subscriptions["vc"], deployment.distributor, 0.25, mode="x")

    def test_des_push_mode_loads_backend(self, env):
        from repro.simulation import DESConfig, calibrate, simulate_cluster
        from repro.tpcw import TPCWConfig

        calibration = calibrate(
            "cached", TPCWConfig(num_items=30, num_ebs=6), repetitions=2
        )
        pull = simulate_cluster(
            calibration,
            DESConfig(users=60, mix_name="Ordering", servers=2, duration=40, agent_mode="pull"),
        )
        push = simulate_cluster(
            calibration,
            DESConfig(users=60, mix_name="Ordering", servers=2, duration=40, agent_mode="push"),
        )
        # Moving apply work to the backend raises its utilization.
        assert push.backend_utilization > pull.backend_utilization
