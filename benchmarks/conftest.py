"""Shared benchmark fixtures.

Calibration is expensive relative to a single bench, so the calibrated
service demands (real executions of the TPC-W procedures on the repro
engine, backend-only and through MTCache) are computed once per session at
the bench scale and shared by every experiment.
"""

from __future__ import annotations

import pytest

from repro.simulation import ClusterModel, ClusterSpec, calibrate
from repro.tpcw import TPCWConfig

#: The bench scale: larger than unit tests so relative interaction costs
#: resemble the paper's (bestseller dominating the Browse class, etc.).
BENCH_CONFIG = dict(num_items=200, num_ebs=40, bestseller_window=200)


@pytest.fixture(scope="session")
def bench_config() -> TPCWConfig:
    return TPCWConfig(**BENCH_CONFIG)


@pytest.fixture(scope="session")
def cal_cached(bench_config):
    return calibrate("cached", TPCWConfig(**BENCH_CONFIG), repetitions=6)


@pytest.fixture(scope="session")
def cal_nocache(bench_config):
    return calibrate("nocache", TPCWConfig(**BENCH_CONFIG), repetitions=6)


@pytest.fixture(scope="session")
def spec() -> ClusterSpec:
    return ClusterSpec()


@pytest.fixture(scope="session")
def cached_model(cal_cached, spec) -> ClusterModel:
    return ClusterModel(cal_cached, spec)


@pytest.fixture(scope="session")
def nocache_model(cal_nocache, spec) -> ClusterModel:
    return ClusterModel(cal_nocache, spec, replication_enabled=False)


def emit(capsys, title: str, lines) -> None:
    """Print an experiment table straight to the terminal (uncaptured)."""
    with capsys.disabled():
        print(f"\n=== {title} ===")
        for line in lines:
            print(line)
