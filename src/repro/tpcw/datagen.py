"""TPC-W data generation (deterministic, scaled).

Bulk-loads all tables directly into storage (no WAL traffic — population
happens before any cache subscribes) and refreshes statistics afterwards,
which is what the shadow databases later adopt.
"""

from __future__ import annotations

import datetime
import random
from typing import List

from repro.tpcw.config import SUBJECTS, TITLE_WORDS, TPCWConfig

_BASE_DATE = datetime.datetime(2003, 1, 1)


def populate(server, database: str, config: TPCWConfig) -> None:
    """Fill a freshly created TPC-W schema with generated data."""
    rng = random.Random(config.seed)
    db = server.database(database)

    db.bulk_load(
        "country",
        [
            (co_id, f"Country{co_id}", "USD", 1.0 + co_id / 10.0)
            for co_id in range(1, config.num_countries + 1)
        ],
    )

    db.bulk_load(
        "author",
        [
            (
                a_id,
                f"First{a_id}",
                f"Last{a_id % max(1, config.num_authors // 2)}",
                None,
                f"Bio of author {a_id}",
            )
            for a_id in range(1, config.num_authors + 1)
        ],
    )

    db.bulk_load(
        "address",
        [
            (
                addr_id,
                f"{addr_id} Main St",
                None,
                f"City{addr_id % 50}",
                f"ST{addr_id % 20}",
                f"{10000 + addr_id}",
                rng.randint(1, config.num_countries),
            )
            for addr_id in range(1, config.num_addresses + 1)
        ],
    )

    customers: List[tuple] = []
    for c_id in range(1, config.num_customers + 1):
        since = _BASE_DATE - datetime.timedelta(days=rng.randint(1, 700))
        customers.append(
            (
                c_id,
                f"user{c_id}",
                f"pw{c_id}",
                f"Fn{c_id}",
                f"Ln{c_id % 97}",
                rng.randint(1, config.num_addresses),
                f"555-{1000 + c_id}",
                f"user{c_id}@example.com",
                since,
                since + datetime.timedelta(days=1),
                _BASE_DATE,
                _BASE_DATE + datetime.timedelta(hours=2),
                round(rng.uniform(0.0, 0.5), 2),
                round(rng.uniform(-100.0, 100.0), 2),
                round(rng.uniform(0.0, 10000.0), 2),
            )
        )
    db.bulk_load("customer", customers)

    items: List[tuple] = []
    for i_id in range(1, config.num_items + 1):
        word = TITLE_WORDS[rng.randrange(len(TITLE_WORDS))]
        related = [
            (i_id % config.num_items) + 1,
            ((i_id + 7) % config.num_items) + 1,
            ((i_id + 13) % config.num_items) + 1,
            ((i_id + 21) % config.num_items) + 1,
            ((i_id + 34) % config.num_items) + 1,
        ]
        srp = round(rng.uniform(5.0, 120.0), 2)
        items.append(
            (
                i_id,
                f"The {word} Book {i_id}",
                rng.randint(1, config.num_authors),
                _BASE_DATE - datetime.timedelta(days=rng.randint(0, 1500)),
                f"Publisher{i_id % 10}",
                SUBJECTS[i_id % len(SUBJECTS)],
                f"Description of item {i_id}",
                *related,
                f"img/thumb{i_id}.gif",
                f"img/image{i_id}.gif",
                srp,
                round(srp * rng.uniform(0.5, 0.9), 2),
                _BASE_DATE + datetime.timedelta(days=rng.randint(0, 7)),
                rng.randint(10, 30),
                f"{1000000000000 + i_id}",
                rng.randint(20, 9999),
                "HARDBACK" if i_id % 2 else "PAPERBACK",
                "8.5 x 11.0 x 1.5",
            )
        )
    db.bulk_load("item", items)

    orders: List[tuple] = []
    order_lines: List[tuple] = []
    cc_xacts: List[tuple] = []
    for o_id in range(1, config.num_orders + 1):
        c_id = rng.randint(1, config.num_customers)
        o_date = _BASE_DATE + datetime.timedelta(minutes=o_id)
        sub_total = 0.0
        lines = rng.randint(1, config.order_lines_per_order)
        for ol_id in range(1, lines + 1):
            i_id = rng.randint(1, config.num_items)
            qty = rng.randint(1, 5)
            sub_total += qty * 20.0
            order_lines.append(
                (ol_id, o_id, i_id, qty, round(rng.uniform(0.0, 0.3), 2), None)
            )
        tax = round(sub_total * 0.0825, 2)
        total = round(sub_total + tax + 3.0 + lines, 2)
        orders.append(
            (
                o_id,
                c_id,
                o_date,
                round(sub_total, 2),
                tax,
                total,
                rng.choice(["AIR", "UPS", "MAIL"]),
                o_date + datetime.timedelta(days=rng.randint(1, 7)),
                rng.randint(1, config.num_addresses),
                rng.randint(1, config.num_addresses),
                rng.choice(["PENDING", "PROCESSING", "SHIPPED"]),
            )
        )
        cc_xacts.append(
            (
                o_id,
                rng.choice(["VISA", "AMEX", "DISCOVER"]),
                f"{4000000000000000 + o_id}",
                f"Fn{c_id} Ln{c_id % 97}",
                _BASE_DATE + datetime.timedelta(days=400),
                f"AUTH{o_id}",
                total,
                o_date,
                rng.randint(1, config.num_countries),
            )
        )
    db.bulk_load("orders", orders)
    db.bulk_load("order_line", order_lines)
    db.bulk_load("cc_xacts", cc_xacts)

    db.analyze_all()
