"""Seeded violation: a leaf lock held while acquiring the latch.

Expected finding: ``lock-order-inversion`` (level 1 under level 3).
"""

from repro.common.locks import mutex


class BadCache:
    def __init__(self, database):
        self.database = database
        self._lock = mutex()

    def refresh(self, rows):
        with self._lock:
            # Wrong way up: the latch sits above every engine-internal
            # leaf lock; a dispatcher thread holding the latch and
            # wanting this cache's lock would deadlock against us.
            with self.database.latch.shared():
                self.rows = list(rows)
