"""CLI entry point tests (python -m repro)."""

import pytest

from repro.__main__ import main


def test_demo_runs(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "ChoosePlan" in out
    assert "RENAMED" in out


def test_tpcw_runs(capsys):
    assert main(["tpcw"]) == 0
    out = capsys.readouterr().out
    assert "cache work" in out
    assert "backend work" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["bogus"])
