"""Cluster simulation: reproducing the paper's performance experiments.

The paper measured an 11-machine cluster. This package substitutes a
simulated cluster whose *service demands are calibrated from real
executions* of the TPC-W procedures on the repro engine:

1. :mod:`repro.simulation.calibrate` runs every interaction against the
   real backend (and against a real cache server) and records how much
   engine work (operator row touches) lands on each tier, plus how many
   replication commands each interaction generates.
2. :mod:`repro.simulation.analytic` turns those demands into the
   bottleneck throughput model that produces Figure 6(a)/6(b): WIPS and
   backend CPU load as functions of the number of web/cache servers.
3. :mod:`repro.simulation.des` is a discrete-event simulator (users with
   think time, FCFS multi-server machines, replication agents) used for
   the latency-sensitive experiments (response times, Experiment 3).
"""

from repro.simulation.calibrate import (
    CalibrationResult,
    InteractionProfile,
    calibrate,
)
from repro.simulation.analytic import ClusterModel, ClusterSpec, ScaleoutPoint
from repro.simulation.des import ChaosSpec, DESConfig, DESResult, simulate_cluster

__all__ = [
    "InteractionProfile",
    "CalibrationResult",
    "calibrate",
    "ClusterSpec",
    "ClusterModel",
    "ScaleoutPoint",
    "ChaosSpec",
    "DESConfig",
    "DESResult",
    "simulate_cluster",
]
