"""Load driver tests."""

import pytest

from repro.mtcache.odbc import OdbcConnection
from repro.tpcw import (
    LoadDriver,
    MIXES,
    TPCWApplication,
    TPCWConfig,
    build_backend,
    enable_caching,
)


@pytest.fixture(scope="module")
def cached_env():
    backend, config = build_backend(TPCWConfig(num_items=40, num_ebs=8))
    deployment, caches = enable_caching(backend, ["drv"], config)
    return backend, config, deployment, caches[0]


def test_driver_runs_traffic(cached_env):
    backend, config, deployment, cache = cached_env
    application = TPCWApplication(OdbcConnection(cache.server, "tpcw", "dbo"), config)
    driver = LoadDriver(
        application, MIXES["Shopping"], users=5, deployment=deployment, seed=3
    )
    stats = driver.run(duration=20.0)
    assert stats.errors == 0
    assert stats.interactions > 50
    assert stats.db_calls >= stats.interactions
    # Think-time bound: each user completes ~1 interaction per second.
    assert stats.wips == pytest.approx(5.0, rel=0.25)


def test_driver_mix_matches_weights(cached_env):
    backend, config, deployment, cache = cached_env
    application = TPCWApplication(OdbcConnection(cache.server, "tpcw", "dbo"), config)
    driver = LoadDriver(
        application, MIXES["Browsing"], users=20, deployment=deployment, seed=4
    )
    stats = driver.run(duration=30.0)
    browse_share = sum(
        count
        for name, count in stats.by_interaction.items()
        if name in (
            "home", "new_products", "best_sellers",
            "product_detail", "search_request", "search_results",
        )
    ) / stats.interactions
    assert browse_share == pytest.approx(0.95, abs=0.05)


def test_driver_advances_replication(cached_env):
    backend, config, deployment, cache = cached_env
    application = TPCWApplication(OdbcConnection(cache.server, "tpcw", "dbo"), config)
    driver = LoadDriver(
        application, MIXES["Ordering"], users=5, deployment=deployment, seed=5
    )
    driver.run(duration=15.0)
    backend_orders = backend.execute("SELECT COUNT(*) FROM orders", database="tpcw").scalar
    cache_orders = cache.execute("SELECT COUNT(*) FROM cv_orders").scalar
    assert cache_orders == backend_orders


def test_driver_deterministic(cached_env):
    backend, config, deployment, cache = cached_env
    def run_once(seed):
        application = TPCWApplication(
            OdbcConnection(cache.server, "tpcw", "dbo"), config
        )
        driver = LoadDriver(
            application, MIXES["Browsing"], users=3, deployment=deployment, seed=seed
        )
        return driver.run(duration=10.0).by_interaction

    assert run_once(9) == run_once(9)
