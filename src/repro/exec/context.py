"""Execution context threaded through every operator.

Carries run-time parameter values (the ``@param`` bindings that make
dynamic plans choose a branch), access to the local database's storage,
the linked-server registry for remote subplans, the virtual clock, and
work counters the cluster simulator uses to calibrate CPU demands.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

#: Rows per chunk on the batch execution path. Large enough to amortize
#: per-batch dispatch, small enough to keep chunks cache-friendly.
DEFAULT_BATCH_ROWS = 256

_FALSY = {"", "0", "false", "off", "no"}


def batch_exec_default() -> bool:
    """Resolve the ``REPRO_BATCH_EXEC`` flag (vectorized mode, default on)."""
    return os.environ.get("REPRO_BATCH_EXEC", "1").strip().lower() not in _FALSY


@dataclass
class WorkCounters:
    """Accumulated work for one statement execution.

    ``rows_processed`` counts operator row touches (a CPU proxy),
    ``rows_returned`` the final result size, ``bytes_transferred`` the data
    shipped across DataTransfer boundaries, and ``remote_queries`` how many
    subexpressions were shipped to a linked server.

    The statement fast path adds three savings counters:
    ``parse_cache_hits`` (batches that skipped the lexer/parser),
    ``prepared_executions`` (remote statements executed by prepared
    handle instead of shipping text), and ``round_trips_saved``
    (extra round trips avoided by batching, e.g. multiple replicated
    transactions applied in one subscriber poll).
    """

    rows_processed: int = 0
    rows_returned: int = 0
    bytes_transferred: int = 0
    remote_queries: int = 0
    index_seeks: int = 0
    parse_cache_hits: int = 0
    prepared_executions: int = 0
    round_trips_saved: int = 0

    def merge(self, other: "WorkCounters") -> None:
        self.rows_processed += other.rows_processed
        self.rows_returned += other.rows_returned
        self.bytes_transferred += other.bytes_transferred
        self.remote_queries += other.remote_queries
        self.index_seeks += other.index_seeks
        self.parse_cache_hits += other.parse_cache_hits
        self.prepared_executions += other.prepared_executions
        self.round_trips_saved += other.round_trips_saved

    def inc(self, name: str, amount: int = 1) -> None:
        """Bump one counter by name.

        Same signature as ``CounterGroupView.inc`` so engine hot paths can
        increment a single field without caring whether the server's
        ``total_work`` is this dataclass or the registry facade.
        """
        setattr(self, name, getattr(self, name) + amount)


class ExecutionContext:
    """Per-execution state shared by all operators in a plan."""

    def __init__(
        self,
        database: Optional[object] = None,
        params: Optional[Dict[str, Any]] = None,
        linked_servers: Optional[object] = None,
        clock: Optional[object] = None,
        subquery_executor: Optional[Callable] = None,
        fastpath: bool = True,
        tracer: Optional[object] = None,
        batch_exec: Optional[bool] = None,
        batch_rows: int = DEFAULT_BATCH_ROWS,
    ):
        self.database = database
        self.params = dict(params or {})
        self.linked_servers = linked_servers
        self.clock = clock
        # Statement fast path: when False, RemoteQueryOp ships full text
        # instead of executing by prepared handle (benchmark ablation).
        self.fastpath = fastpath
        # Vectorized execution: when True the driver pulls row chunks via
        # execute_batches; None defers to the REPRO_BATCH_EXEC env flag.
        self.batch_exec = batch_exec_default() if batch_exec is None else batch_exec
        self.batch_rows = batch_rows
        # Batch-kernel memoization stats for this execution (drained into
        # the exec.compiled_cache_* metrics by the server).
        self.compiled_cache_hits = 0
        self.compiled_cache_misses = 0
        # Observability: the owning server's Tracer (None when disabled);
        # RemoteQueryOp opens client-side spans through it.
        self.tracer = tracer
        self.work = WorkCounters()
        # Callable(select_ast, params) -> list of rows; installed by the
        # engine so scalar/IN subqueries can run nested statements.
        self.subquery_executor = subquery_executor
        self._subquery_cache: Dict[int, list] = {}

    def param(self, name: str) -> Any:
        """Fetch a parameter value; missing parameters read as NULL."""
        return self.params.get(name)

    def run_subquery(self, select_ast: object) -> list:
        """Execute an uncorrelated subquery, caching by AST identity."""
        key = id(select_ast)
        if key not in self._subquery_cache:
            if self.subquery_executor is None:
                from repro.errors import ExecutionError

                raise ExecutionError("no subquery executor installed in context")
            self._subquery_cache[key] = self.subquery_executor(select_ast, self.params)
        return self._subquery_cache[key]

    def now(self) -> float:
        """Virtual current time (0.0 when no clock attached)."""
        if self.clock is None:
            return 0.0
        return self.clock.now()
