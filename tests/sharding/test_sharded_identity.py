"""Sharded vs unsharded TPC-W: statement-for-statement identity.

Two deployments over identically seeded backends — one cache server
subscribed to everything (the paper's setup) vs a four-shard partitioned
tier behind a ShardRouter — run the same interaction sequence from the
same RNG. Every statement the application issues must return exactly the
same rows in both, with checked plans on (the suite-wide default), so
partitioning is invisible at the application boundary: the transparency
claim, extended to the sharded tier.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.client.connection import connect
from repro.sharding import ShardedDeployment
from repro.tpcw import MIXES, TPCWApplication, TPCWConfig, build_backend, enable_caching
import pytest


pytestmark = pytest.mark.shard

CONFIG = dict(num_items=100, num_ebs=6, seed=29)
MIX_NAMES = ("Browsing", "Shopping")
INTERACTIONS_PER_MIX = 50

Trace = List[Tuple[str, List[tuple]]]


class _CapturingCursor:
    """Records every statement's rows, then serves them DBAPI-style."""

    def __init__(self, cursor, trace: Trace):
        self._cursor = cursor
        self._trace = trace
        self._rows: List[tuple] = []

    def execute(self, sql: str, params=None):
        self._cursor.execute(sql, params)
        self._rows = [tuple(row) for row in self._cursor.fetchall()]
        self._trace.append((sql, list(self._rows)))
        return self

    def fetchall(self) -> List[tuple]:
        rows, self._rows = self._rows, []
        return rows

    def fetchone(self):
        return self._rows.pop(0) if self._rows else None


class _CapturingConnection:
    def __init__(self, inner, trace: Trace):
        self._inner = inner
        self._trace = trace

    def cursor(self) -> _CapturingCursor:
        return _CapturingCursor(self._inner.cursor(), self._trace)


def _drive(connection, deployment) -> Trace:
    trace: Trace = []
    config = TPCWConfig(**CONFIG)
    application = TPCWApplication(
        _CapturingConnection(connection, trace), config, rng=random.Random(101)
    )
    for seed, mix_name in enumerate(MIX_NAMES, start=5):
        rng = random.Random(seed)
        sessions = [application.new_session() for _ in range(3)]
        mix = MIXES[mix_name]
        for step in range(INTERACTIONS_PER_MIX):
            application.run(mix.sample(rng), sessions[step % 3])
            deployment.tick(0.05)
        deployment.sync()
    return trace


def _unsharded_trace() -> Trace:
    backend, config = build_backend(TPCWConfig(**CONFIG))
    deployment, caches = enable_caching(backend, ["cache1"], config)
    assert backend.checked_plans and caches[0].server.checked_plans
    return _drive(connect(caches[0], database="tpcw"), deployment)


def _sharded_trace() -> Trace:
    backend, config = build_backend(TPCWConfig(**CONFIG))
    sharded = ShardedDeployment(backend=backend, config=config, shards=4)
    assert backend.checked_plans
    assert all(cache.server.checked_plans for cache in sharded.shards.values())
    return _drive(sharded.connect(), sharded)


def test_sharded_tpcw_is_statement_for_statement_identical():
    unsharded = _unsharded_trace()
    sharded = _sharded_trace()
    assert len(unsharded) == len(sharded), (
        f"deployments issued different statement counts "
        f"({len(unsharded)} vs {len(sharded)})"
    )
    mismatches: Dict[int, str] = {}
    for position, ((flat_sql, flat_rows), (shard_sql, shard_rows)) in enumerate(
        zip(unsharded, sharded)
    ):
        assert flat_sql == shard_sql, (
            f"statement {position} diverged: {flat_sql!r} vs {shard_sql!r}"
        )
        if flat_rows != shard_rows:
            mismatches[position] = flat_sql
    assert not mismatches, (
        f"{len(mismatches)} of {len(unsharded)} statements returned "
        f"different rows through the sharded tier: {mismatches}"
    )
    assert len(unsharded) > 150, "the run must actually exercise the workload"
