"""Seeded violation: an acquisition cycle hidden behind method calls.

Neither method nests two ``with`` blocks; the cycle only appears when
the call graph propagates each helper's acquisitions to its callers.
Expected finding: ``lock-cycle``.
"""

from repro.common.locks import mutex


class BadRegistry:
    def __init__(self):
        self._index = mutex()
        self._store = mutex()

    def _touch_store(self):
        with self._store:
            return len(self.items)

    def _touch_index(self):
        with self._index:
            return len(self.names)

    def lookup(self, name):
        with self._index:
            return self._touch_store()

    def insert(self, item):
        with self._store:
            return self._touch_index()
