"""Workload SQL lint (analysis pass 2).

Statically binds SQL — stored procedures, cached-view DDL, generated
shadow/grant scripts — against a catalog, with no execution. Reported
diagnostics:

* ``unknown-table`` / ``unknown-column`` / ``ambiguous-column`` — names
  that do not resolve against the catalog or the statement's scope;
* ``arity`` / ``insert-arity`` — select-list and INSERT row/column
  count mismatches;
* ``type-mismatch`` — comparisons, arithmetic and INSERT values whose
  operand types cannot widen to a common type;
* ``dml-target`` — DML against a view, in particular a cached article
  (cached views are maintained by replication and never updatable);
* ``undeclared-parameter`` — ``@name`` references never declared as a
  procedure parameter nor assigned by DECLARE/SET/SELECT-assignment;
* ``exec-args`` — EXEC calls with unknown procedures, unknown argument
  names, or missing required arguments;
* ``unknown-object`` — GRANT/CREATE INDEX targets that do not exist.

Scripts are linted in order with a catalog *overlay*: a CREATE TABLE
earlier in the script satisfies a CREATE INDEX later in it, so the
generated shadow script lints against an empty database exactly the way
it executes against one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.catalog.catalog import Catalog
from repro.catalog.objects import ProcedureDef, TableDef
from repro.common.schema import Column, Schema
from repro.common.types import (
    BOOLEAN,
    FLOAT,
    INT,
    VARCHAR,
    SqlType,
    common_type,
    is_numeric,
)
from repro.errors import AnalysisError, SqlError, TypeCheckError
from repro.sql import ast as sql_ast
from repro.sql import parse_statements

_COMPARISONS = ("=", "<>", "<", "<=", ">", ">=")
_ARITHMETIC = ("+", "-", "*", "/", "%")


def _compatible(left: Optional[SqlType], right: Optional[SqlType]) -> bool:
    """Lenient compatibility: unknown types pass, BIT mixes with numerics
    (the engine coerces 0/1 freely), everything else follows
    :func:`~repro.common.types.common_type` widening."""
    if left is None or right is None:
        return True
    if left.kind is BOOLEAN.kind and is_numeric(right):
        return True
    if right.kind is BOOLEAN.kind and is_numeric(left):
        return True
    try:
        common_type(left, right)
    except TypeCheckError:
        return False
    return True


def _literal_type(value: Any) -> Optional[SqlType]:
    if value is None:
        return None
    if isinstance(value, bool):
        return BOOLEAN
    if isinstance(value, int):
        return INT
    if isinstance(value, float):
        return FLOAT
    if isinstance(value, str):
        return VARCHAR(None)
    return None


@dataclass
class _Source:
    """One FROM-clause binding: alias plus column name -> type.

    ``opaque`` sources (unresolvable or remote four-part names) accept
    any column, so one unknown table does not cascade into a column
    diagnostic per reference.
    """

    alias: str
    columns: Dict[str, Optional[SqlType]] = field(default_factory=dict)
    opaque: bool = False


class _Scope:
    """Name resolution over the FROM-clause sources of one SELECT."""

    def __init__(self, sources: List[_Source]):
        self.sources = sources
        self.has_opaque = any(source.opaque for source in sources)

    def aliases(self) -> List[str]:
        return [source.alias for source in self.sources]

    def resolve(
        self, name: str, qualifier: Optional[str]
    ) -> Tuple[str, Optional[SqlType]]:
        """Return ("ok"|"unknown"|"ambiguous", type)."""
        key = name.lower()
        if qualifier is not None:
            for source in self.sources:
                if source.alias.lower() == qualifier.lower():
                    if source.opaque or key in source.columns:
                        return "ok", source.columns.get(key)
                    return "unknown", None
            return "unknown", None
        hits = [
            source.columns.get(key)
            for source in self.sources
            if not source.opaque and key in source.columns
        ]
        if len(hits) == 1:
            return "ok", hits[0]
        if len(hits) > 1:
            return "ambiguous", None
        if self.has_opaque:
            return "ok", None
        return "unknown", None


class SqlLinter:
    """Binds statements against a base catalog plus a script overlay."""

    def __init__(self, catalog: Optional[Catalog] = None):
        self.catalog = catalog
        self._overlay_tables: Dict[str, TableDef] = {}
        self._overlay_views: Dict[str, _Source] = {}
        self._overlay_procedures: Dict[str, sql_ast.CreateProcedure] = {}

    # -- entry points ----------------------------------------------------

    def lint_procedure(self, procedure: ProcedureDef) -> List[AnalysisError]:
        """Statically bind one stored procedure body."""
        location = f"procedure {procedure.name}"
        declared: Dict[str, Optional[SqlType]] = {
            param.name: param.sql_type for param in procedure.params
        }
        self._collect_assignments(procedure.body, declared)
        diagnostics: List[AnalysisError] = []
        for statement in procedure.body:
            self._lint_statement(statement, declared, diagnostics, location)
        return diagnostics

    def lint_sql(self, sql_text: str, location: str = "script") -> List[AnalysisError]:
        """Parse and bind a SQL script, building the overlay as it goes."""
        diagnostics: List[AnalysisError] = []
        try:
            statements = parse_statements(sql_text)
        except SqlError as exc:
            diagnostics.append(
                AnalysisError("parse", f"script does not parse: {exc}", location=location)
            )
            return diagnostics
        declared: Dict[str, Optional[SqlType]] = {}
        self._collect_assignments(statements, declared)
        for statement in statements:
            self._lint_statement(statement, declared, diagnostics, location)
        return diagnostics

    # -- declaration collection ------------------------------------------

    def _collect_assignments(
        self, statements, declared: Dict[str, Optional[SqlType]]
    ) -> None:
        """Record every variable a body declares or assigns, anywhere.

        A parameter is "declared" when it is a procedure parameter, a
        DECLARE, a SET target, or a SELECT @x = ... target; order is not
        enforced (mirrors the interpreter's single frame).
        """
        pending = list(statements)
        while pending:
            statement = pending.pop()
            if isinstance(statement, sql_ast.Declare):
                declared[statement.name] = statement.sql_type
            elif isinstance(statement, sql_ast.SetVariable):
                declared.setdefault(statement.name, None)
            elif isinstance(statement, sql_ast.Select):
                for item in statement.items:
                    if item.target_parameter is not None:
                        declared.setdefault(item.target_parameter, None)
            elif isinstance(statement, sql_ast.IfStatement):
                pending.extend(statement.then_body)
                pending.extend(statement.else_body)
            elif isinstance(statement, sql_ast.WhileStatement):
                pending.extend(statement.body)

    # -- object resolution ------------------------------------------------

    def _resolve_table(self, name: str) -> Optional[TableDef]:
        table = self._overlay_tables.get(name.lower())
        if table is not None:
            return table
        if self.catalog is not None:
            return self.catalog.maybe_table(name)
        return None

    def _resolve_view(self, name: str):
        view = self._overlay_views.get(name.lower())
        if view is not None:
            return view
        if self.catalog is not None:
            return self.catalog.maybe_view(name)
        return None

    def _object_exists(self, name: str) -> bool:
        if self._resolve_table(name) is not None or self._resolve_view(name) is not None:
            return True
        if name.lower() in self._overlay_procedures:
            return True
        return self.catalog is not None and self.catalog.maybe_procedure(name) is not None

    def _source_for(
        self,
        ref: sql_ast.TableName,
        diagnostics: List[AnalysisError],
        location: str,
    ) -> _Source:
        alias = ref.binding_name
        if ref.server is not None:
            # Four-part linked-server name: the remote catalog is not
            # visible here, accept any column.
            return _Source(alias, opaque=True)
        name = ref.object_name
        table = self._resolve_table(name)
        if table is not None:
            columns = {
                column.name.lower(): column.sql_type for column in table.schema
            }
            return _Source(alias, columns)
        view = self._resolve_view(name)
        if isinstance(view, _Source):
            return _Source(alias, dict(view.columns), opaque=view.opaque)
        if view is not None:
            columns = {
                column.name.lower(): column.sql_type for column in view.schema
            }
            return _Source(alias, columns)
        diagnostics.append(
            AnalysisError("unknown-table", f"unknown table or view {name!r}", location=location)
        )
        return _Source(alias, opaque=True)

    # -- statement dispatch ----------------------------------------------

    def _lint_statement(
        self,
        statement: sql_ast.Statement,
        declared: Dict[str, Optional[SqlType]],
        diagnostics: List[AnalysisError],
        location: str,
    ) -> None:
        if isinstance(statement, sql_ast.Select):
            self._lint_select(statement, declared, diagnostics, location)
        elif isinstance(statement, sql_ast.UnionAll):
            arities = set()
            for branch in statement.branches:
                self._lint_select(branch, declared, diagnostics, location)
                if not any(isinstance(i.expression, sql_ast.Star) for i in branch.items):
                    arities.add(len(branch.items))
            if len(arities) > 1:
                diagnostics.append(
                    AnalysisError(
                        "arity",
                        "UNION ALL branches select different column counts",
                        location=location,
                    )
                )
        elif isinstance(statement, sql_ast.Insert):
            self._lint_insert(statement, declared, diagnostics, location)
        elif isinstance(statement, sql_ast.Update):
            self._lint_update(statement, declared, diagnostics, location)
        elif isinstance(statement, sql_ast.Delete):
            self._lint_delete(statement, declared, diagnostics, location)
        elif isinstance(statement, sql_ast.Declare):
            if statement.initial is not None:
                self._check_expression(
                    statement.initial, _Scope([]), declared, diagnostics, location
                )
        elif isinstance(statement, sql_ast.SetVariable):
            self._check_expression(
                statement.value, _Scope([]), declared, diagnostics, location
            )
        elif isinstance(statement, sql_ast.IfStatement):
            self._check_expression(
                statement.condition, _Scope([]), declared, diagnostics, location
            )
            for child in statement.then_body + statement.else_body:
                self._lint_statement(child, declared, diagnostics, location)
        elif isinstance(statement, sql_ast.WhileStatement):
            self._check_expression(
                statement.condition, _Scope([]), declared, diagnostics, location
            )
            for child in statement.body:
                self._lint_statement(child, declared, diagnostics, location)
        elif isinstance(statement, (sql_ast.ReturnStatement, sql_ast.PrintStatement)):
            value = getattr(statement, "value", None)
            if value is not None:
                self._check_expression(value, _Scope([]), declared, diagnostics, location)
        elif isinstance(statement, sql_ast.Execute):
            self._lint_execute(statement, declared, diagnostics, location)
        elif isinstance(statement, sql_ast.CreateTable):
            self._register_table(statement, diagnostics, location)
        elif isinstance(statement, sql_ast.CreateIndex):
            self._lint_create_index(statement, diagnostics, location)
        elif isinstance(statement, sql_ast.CreateView):
            self._lint_create_view(statement, declared, diagnostics, location)
        elif isinstance(statement, sql_ast.CreateProcedure):
            self._overlay_procedures[statement.name.lower()] = statement
            body_declared: Dict[str, Optional[SqlType]] = {
                param.name: param.sql_type for param in statement.params
            }
            self._collect_assignments(statement.body, body_declared)
            for child in statement.body:
                self._lint_statement(
                    child, body_declared, diagnostics, f"{location}:{statement.name}"
                )
        elif isinstance(statement, sql_ast.Grant):
            if not self._object_exists(statement.object_name):
                diagnostics.append(
                    AnalysisError(
                        "unknown-object",
                        f"GRANT on unknown object {statement.object_name!r}",
                        location=location,
                    )
                )
        elif isinstance(statement, sql_ast.DropObject):
            self._overlay_tables.pop(statement.name.lower(), None)
            self._overlay_views.pop(statement.name.lower(), None)
            self._overlay_procedures.pop(statement.name.lower(), None)
        # Transactions / EXPLAIN etc.: nothing to bind.

    # -- SELECT -----------------------------------------------------------

    def _build_scope(
        self,
        from_clause: Optional[sql_ast.TableRef],
        declared: Dict[str, Optional[SqlType]],
        diagnostics: List[AnalysisError],
        location: str,
    ) -> Tuple[_Scope, List[sql_ast.Expression]]:
        sources: List[_Source] = []
        conditions: List[sql_ast.Expression] = []

        def visit(ref: Optional[sql_ast.TableRef]) -> None:
            if ref is None:
                return
            if isinstance(ref, sql_ast.JoinRef):
                visit(ref.left)
                visit(ref.right)
                if ref.condition is not None:
                    conditions.append(ref.condition)
            elif isinstance(ref, sql_ast.DerivedTable):
                self._lint_select(ref.select, declared, diagnostics, location)
                sources.append(
                    _Source(ref.alias, self._derive_columns(ref.select, declared))
                )
            elif isinstance(ref, sql_ast.TableName):
                sources.append(self._source_for(ref, diagnostics, location))

        visit(from_clause)
        return _Scope(sources), conditions

    def _derive_columns(
        self, select: sql_ast.Select, declared: Dict[str, Optional[SqlType]]
    ) -> Dict[str, Optional[SqlType]]:
        """Output columns of a subselect (for derived tables and views)."""
        scope, _ = self._build_scope(select.from_clause, declared, [], "")
        columns: Dict[str, Optional[SqlType]] = {}
        for item in select.items:
            expression = item.expression
            if isinstance(expression, sql_ast.Star):
                for source in scope.sources:
                    if expression.qualifier is not None and (
                        source.alias.lower() != expression.qualifier.lower()
                    ):
                        continue
                    columns.update(source.columns)
                continue
            name = item.alias
            if name is None and isinstance(expression, sql_ast.ColumnRef):
                name = expression.name
            if name is None:
                continue
            columns[name.lower()] = self._infer_type(expression, scope, declared)
        return columns

    def _lint_select(
        self,
        select: sql_ast.Select,
        declared: Dict[str, Optional[SqlType]],
        diagnostics: List[AnalysisError],
        location: str,
    ) -> None:
        scope, join_conditions = self._build_scope(
            select.from_clause, declared, diagnostics, location
        )
        for item in select.items:
            if isinstance(item.expression, sql_ast.Star):
                qualifier = item.expression.qualifier
                if qualifier is not None and qualifier.lower() not in (
                    alias.lower() for alias in scope.aliases()
                ):
                    diagnostics.append(
                        AnalysisError(
                            "unknown-table",
                            f"'{qualifier}.*' references no FROM-clause source",
                            location=location,
                        )
                    )
                continue
            self._check_expression(item.expression, scope, declared, diagnostics, location)
        for condition in join_conditions:
            self._check_expression(condition, scope, declared, diagnostics, location)
        if select.top is not None:
            self._check_expression(select.top, scope, declared, diagnostics, location)
        if select.where is not None:
            self._check_expression(select.where, scope, declared, diagnostics, location)
        for expression in select.group_by:
            self._check_expression(expression, scope, declared, diagnostics, location)
        if select.having is not None:
            self._check_expression(select.having, scope, declared, diagnostics, location)
        # ORDER BY may reference select-list output aliases (T-SQL scoping).
        output_aliases = {
            item.alias.lower() for item in select.items if item.alias is not None
        }
        for order in select.order_by:
            expression = order.expression
            if (
                isinstance(expression, sql_ast.ColumnRef)
                and expression.qualifier is None
                and expression.name.lower() in output_aliases
            ):
                continue
            self._check_expression(expression, scope, declared, diagnostics, location)

    # -- DML --------------------------------------------------------------

    def _dml_target(
        self,
        statement,
        verb: str,
        diagnostics: List[AnalysisError],
        location: str,
    ) -> Optional[TableDef]:
        """Resolve a DML target; reports view targets and unknown names."""
        table_ref: sql_ast.TableName = statement.table
        if table_ref.server is not None:
            return None  # forwarded to the owning server, not checkable here
        name = table_ref.object_name
        table = self._resolve_table(name)
        if table is not None:
            return table
        view = self._resolve_view(name)
        if view is not None:
            cached = bool(getattr(view, "cached", False))
            what = "cached article" if cached else "view"
            diagnostics.append(
                AnalysisError(
                    "dml-target",
                    f"{verb} against non-updatable {what} {name!r}"
                    + (" (cached views are maintained by replication)" if cached else ""),
                    location=location,
                )
            )
            return None
        diagnostics.append(
            AnalysisError("unknown-table", f"{verb} against unknown table {name!r}", location=location)
        )
        return None

    def _lint_insert(
        self,
        statement: sql_ast.Insert,
        declared: Dict[str, Optional[SqlType]],
        diagnostics: List[AnalysisError],
        location: str,
    ) -> None:
        table = self._dml_target(statement, "INSERT", diagnostics, location)
        target_types: List[Optional[SqlType]] = []
        if table is not None:
            schema = table.schema
            if statement.columns:
                for name in statement.columns:
                    position = schema.maybe_resolve(name)
                    if position is None:
                        diagnostics.append(
                            AnalysisError(
                                "unknown-column",
                                f"INSERT names unknown column {name!r} "
                                f"of table {table.name!r}",
                                location=location,
                            )
                        )
                        target_types.append(None)
                    else:
                        target_types.append(schema[position].sql_type)
            else:
                target_types = [column.sql_type for column in schema]
        width = len(target_types)
        scope = _Scope([])
        for row in statement.rows:
            if width and len(row) != width:
                diagnostics.append(
                    AnalysisError(
                        "insert-arity",
                        f"INSERT row has {len(row)} values for {width} columns",
                        location=location,
                    )
                )
            for position, expression in enumerate(row):
                self._check_expression(expression, scope, declared, diagnostics, location)
                if position < width:
                    value_type = self._infer_type(expression, scope, declared)
                    if not _compatible(target_types[position], value_type):
                        diagnostics.append(
                            AnalysisError(
                                "type-mismatch",
                                f"INSERT value {position + 1} has type {value_type}, "
                                f"column expects {target_types[position]}",
                                location=location,
                            )
                        )
        if statement.select is not None:
            self._lint_select(statement.select, declared, diagnostics, location)
            items = statement.select.items
            if width and not any(
                isinstance(item.expression, sql_ast.Star) for item in items
            ):
                if len(items) != width:
                    diagnostics.append(
                        AnalysisError(
                            "insert-arity",
                            f"INSERT ... SELECT provides {len(items)} columns "
                            f"for {width} targets",
                            location=location,
                        )
                    )

    def _lint_update(
        self,
        statement: sql_ast.Update,
        declared: Dict[str, Optional[SqlType]],
        diagnostics: List[AnalysisError],
        location: str,
    ) -> None:
        table = self._dml_target(statement, "UPDATE", diagnostics, location)
        scope = _Scope(
            [
                _Source(
                    statement.table.binding_name,
                    {c.name.lower(): c.sql_type for c in table.schema},
                )
            ]
            if table is not None
            else []
        )
        if table is None and statement.table.server is None:
            scope = _Scope([_Source(statement.table.binding_name, opaque=True)])
        for name, expression in statement.assignments:
            column_type: Optional[SqlType] = None
            if table is not None:
                position = table.schema.maybe_resolve(name)
                if position is None:
                    diagnostics.append(
                        AnalysisError(
                            "unknown-column",
                            f"UPDATE assigns unknown column {name!r} "
                            f"of table {table.name!r}",
                            location=location,
                        )
                    )
                else:
                    column_type = table.schema[position].sql_type
            self._check_expression(expression, scope, declared, diagnostics, location)
            value_type = self._infer_type(expression, scope, declared)
            if not _compatible(column_type, value_type):
                diagnostics.append(
                    AnalysisError(
                        "type-mismatch",
                        f"UPDATE assigns {value_type} to column {name!r} "
                        f"of type {column_type}",
                        location=location,
                    )
                )
        if statement.where is not None:
            self._check_expression(statement.where, scope, declared, diagnostics, location)

    def _lint_delete(
        self,
        statement: sql_ast.Delete,
        declared: Dict[str, Optional[SqlType]],
        diagnostics: List[AnalysisError],
        location: str,
    ) -> None:
        table = self._dml_target(statement, "DELETE", diagnostics, location)
        if table is not None:
            scope = _Scope(
                [
                    _Source(
                        statement.table.binding_name,
                        {c.name.lower(): c.sql_type for c in table.schema},
                    )
                ]
            )
        else:
            scope = _Scope([_Source(statement.table.binding_name, opaque=True)])
        if statement.where is not None:
            self._check_expression(statement.where, scope, declared, diagnostics, location)

    # -- EXEC / DDL --------------------------------------------------------

    def _lint_execute(
        self,
        statement: sql_ast.Execute,
        declared: Dict[str, Optional[SqlType]],
        diagnostics: List[AnalysisError],
        location: str,
    ) -> None:
        scope = _Scope([])
        for _, expression in statement.arguments:
            self._check_expression(expression, scope, declared, diagnostics, location)
        if len(statement.procedure) == 4:
            return  # remote EXEC: target catalog not visible here
        name = statement.procedure[-1]
        overlay = self._overlay_procedures.get(name.lower())
        if overlay is not None:
            params = overlay.params
        else:
            procedure = (
                self.catalog.maybe_procedure(name) if self.catalog is not None else None
            )
            if procedure is None:
                # Unknown locally: the engine forwards the call to the
                # backend, so absence is only reportable when there is a
                # catalog that should contain it.
                if self.catalog is not None:
                    diagnostics.append(
                        AnalysisError(
                            "exec-args",
                            f"EXEC of unknown procedure {name!r}",
                            severity="warning",
                            location=location,
                        )
                    )
                return
            params = procedure.params
        named = {arg_name for arg_name, _ in statement.arguments if arg_name is not None}
        positional = sum(1 for arg_name, _ in statement.arguments if arg_name is None)
        param_names = [param.name for param in params]
        for arg_name in named:
            if arg_name not in param_names:
                diagnostics.append(
                    AnalysisError(
                        "exec-args",
                        f"EXEC {name} passes unknown argument @{arg_name}",
                        location=location,
                    )
                )
        if positional > len(params):
            diagnostics.append(
                AnalysisError(
                    "exec-args",
                    f"EXEC {name} passes {positional} positional arguments "
                    f"for {len(params)} parameters",
                    location=location,
                )
            )
        for position, param in enumerate(params):
            provided = position < positional or param.name in named
            if not provided and param.default is None:
                diagnostics.append(
                    AnalysisError(
                        "exec-args",
                        f"EXEC {name} misses required argument @{param.name}",
                        location=location,
                    )
                )

    def _register_table(
        self,
        statement: sql_ast.CreateTable,
        diagnostics: List[AnalysisError],
        location: str,
    ) -> None:
        columns = [
            Column(column.name, column.sql_type, nullable=column.nullable)
            for column in statement.columns
        ]
        schema = Schema(columns)
        names = {column.name.lower() for column in columns}
        for key_column in statement.primary_key:
            if key_column.lower() not in names:
                diagnostics.append(
                    AnalysisError(
                        "unknown-column",
                        f"PRIMARY KEY names unknown column {key_column!r} "
                        f"of table {statement.name!r}",
                        location=location,
                    )
                )
        self._overlay_tables[statement.name.lower()] = TableDef(
            statement.name, schema, tuple(statement.primary_key)
        )

    def _lint_create_index(
        self,
        statement: sql_ast.CreateIndex,
        diagnostics: List[AnalysisError],
        location: str,
    ) -> None:
        table = self._resolve_table(statement.table)
        if table is None:
            # Materialized views also take indexes; accept view targets.
            if self._resolve_view(statement.table) is not None:
                return
            diagnostics.append(
                AnalysisError(
                    "unknown-object",
                    f"CREATE INDEX on unknown table {statement.table!r}",
                    location=location,
                )
            )
            return
        for name in statement.columns:
            if table.schema.maybe_resolve(name) is None:
                diagnostics.append(
                    AnalysisError(
                        "unknown-column",
                        f"index {statement.name!r} names unknown column {name!r} "
                        f"of table {table.name!r}",
                        location=location,
                    )
                )

    def _lint_create_view(
        self,
        statement: sql_ast.CreateView,
        declared: Dict[str, Optional[SqlType]],
        diagnostics: List[AnalysisError],
        location: str,
    ) -> None:
        self._lint_select(statement.select, declared, diagnostics, location)
        source = _Source(
            statement.name, self._derive_columns(statement.select, declared)
        )
        self._overlay_views[statement.name.lower()] = source

    # -- expressions -------------------------------------------------------

    def _check_expression(
        self,
        expression: sql_ast.Expression,
        scope: _Scope,
        declared: Dict[str, Optional[SqlType]],
        diagnostics: List[AnalysisError],
        location: str,
    ) -> None:
        for node in sql_ast.walk_expression(expression):
            if isinstance(node, sql_ast.ColumnRef):
                status, _ = scope.resolve(node.name, node.qualifier)
                if status == "unknown":
                    target = (
                        f"{node.qualifier}.{node.name}" if node.qualifier else node.name
                    )
                    diagnostics.append(
                        AnalysisError(
                            "unknown-column", f"unknown column {target!r}", location=location
                        )
                    )
                elif status == "ambiguous":
                    diagnostics.append(
                        AnalysisError(
                            "ambiguous-column",
                            f"ambiguous column {node.name!r}",
                            location=location,
                        )
                    )
            elif isinstance(node, sql_ast.Parameter):
                if node.name not in declared:
                    diagnostics.append(
                        AnalysisError(
                            "undeclared-parameter",
                            f"@{node.name} is never declared or assigned",
                            location=location,
                        )
                    )
            elif isinstance(node, (sql_ast.InSubquery, sql_ast.Exists, sql_ast.ScalarSubquery)):
                self._lint_select(node.subquery, declared, diagnostics, location)
            elif isinstance(node, sql_ast.BinaryOp) and node.op in (
                _COMPARISONS + _ARITHMETIC
            ):
                left = self._infer_type(node.left, scope, declared)
                right = self._infer_type(node.right, scope, declared)
                if not _compatible(left, right):
                    kind = "comparison" if node.op in _COMPARISONS else "arithmetic"
                    diagnostics.append(
                        AnalysisError(
                            "type-mismatch",
                            f"{kind} {node.op!r} between incompatible types "
                            f"{left} and {right}",
                            location=location,
                        )
                    )
            elif isinstance(node, sql_ast.Between):
                operand = self._infer_type(node.operand, scope, declared)
                for bound in (node.low, node.high):
                    bound_type = self._infer_type(bound, scope, declared)
                    if not _compatible(operand, bound_type):
                        diagnostics.append(
                            AnalysisError(
                                "type-mismatch",
                                f"BETWEEN bound type {bound_type} is incompatible "
                                f"with operand type {operand}",
                                location=location,
                            )
                        )

    def _infer_type(
        self,
        expression: sql_ast.Expression,
        scope: _Scope,
        declared: Dict[str, Optional[SqlType]],
    ) -> Optional[SqlType]:
        if isinstance(expression, sql_ast.Literal):
            return _literal_type(expression.value)
        if isinstance(expression, sql_ast.ColumnRef):
            status, sql_type = scope.resolve(expression.name, expression.qualifier)
            return sql_type if status == "ok" else None
        if isinstance(expression, sql_ast.Parameter):
            return declared.get(expression.name)
        if isinstance(expression, sql_ast.UnaryOp):
            if expression.op == "NOT":
                return BOOLEAN
            return self._infer_type(expression.operand, scope, declared)
        if isinstance(expression, sql_ast.BinaryOp):
            if expression.op in _COMPARISONS or expression.op in ("AND", "OR"):
                return BOOLEAN
            left = self._infer_type(expression.left, scope, declared)
            right = self._infer_type(expression.right, scope, declared)
            if left is None or right is None:
                return None
            try:
                return common_type(left, right)
            except TypeCheckError:
                return None
        if isinstance(
            expression,
            (sql_ast.IsNull, sql_ast.InList, sql_ast.InSubquery, sql_ast.Between,
             sql_ast.Like, sql_ast.Exists),
        ):
            return BOOLEAN
        if isinstance(expression, sql_ast.FuncCall):
            name = expression.name.upper()
            if name == "COUNT":
                return INT
            if name == "AVG":
                return FLOAT
            if name in ("SUM", "MIN", "MAX") and expression.args:
                return self._infer_type(expression.args[0], scope, declared)
            if name in ("COALESCE", "ISNULL"):
                for argument in expression.args:
                    inferred = self._infer_type(argument, scope, declared)
                    if inferred is not None:
                        return inferred
            return None
        if isinstance(expression, sql_ast.CaseWhen):
            for _, result in expression.whens:
                inferred = self._infer_type(result, scope, declared)
                if inferred is not None:
                    return inferred
            if expression.else_result is not None:
                return self._infer_type(expression.else_result, scope, declared)
            return None
        return None


def lint_workload(
    database: Any,
    scripts: Optional[Dict[str, str]] = None,
) -> List[AnalysisError]:
    """Lint every stored procedure in a database, plus optional scripts.

    ``scripts`` maps location labels to SQL text (e.g. the generated
    shadow and grant scripts, or the cached-view DDL); each script lints
    against the database's catalog with its own overlay.
    """
    diagnostics: List[AnalysisError] = []
    catalog = database.catalog
    for procedure in catalog.procedures.values():
        diagnostics.extend(SqlLinter(catalog).lint_procedure(procedure))
    for location, sql_text in (scripts or {}).items():
        diagnostics.extend(SqlLinter(catalog).lint_sql(sql_text, location=location))
    return diagnostics
