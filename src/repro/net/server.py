"""The network front end: an asyncio socket server over an engine target.

:class:`ReproServer` puts a real TCP listener in front of any execution
target — an engine :class:`~repro.engine.server.Server` or a
:class:`~repro.mtcache.cache_server.CacheServer` facade — speaking the
frame protocol of :mod:`repro.net.protocol`. The asyncio event loop runs
on a dedicated background thread; the calling thread gets a plain
blocking ``start()``/``stop()`` object (or ``serve_forever()`` for the
CLI), so the rest of the — entirely synchronous — codebase never sees a
coroutine.

Design points:

* **One worker thread per connection.** The engine's transaction control
  keys latch ownership to the OS thread that ran BEGIN (coarse 2PL, see
  ``Server._begin_transaction``), so all statements of one wire
  connection — and its disconnect-cleanup rollback — must run on one
  thread. Each connection owns a single-thread executor; the event loop
  thread itself never touches the engine.
* **Sessions live server-side.** The HELLO handshake creates the
  :class:`~repro.engine.session.Session`; variables and transaction
  state persist across that connection's statements exactly as they
  would in-process. The RESULT header echoes ``in_transaction`` so the
  client facade can mirror commit/rollback semantics.
* **Deadlines re-anchor.** A request's ``budget`` (remaining seconds) is
  turned into a fresh :class:`~repro.resilience.deadline.Deadline` on
  the engine's clock inside the worker thread, so PR 9 deadline scopes
  survive the hop without shared clocks.
* **Overload sheds at accept.** Connections beyond ``max_connections``
  get one ERROR frame carrying :class:`~repro.errors.OverloadError`
  (transient — the client may retry as load drains) and are closed,
  bounding the backlog instead of queueing unboundedly.
* **Faults are injectable on real frames.** A nullable ``injector``
  fires at ``net:<name>:request`` (before dispatch) and
  ``net:<name>:result`` (after execution, before the reply); a
  :class:`~repro.errors.LinkUnavailableError` from either site drops the
  transport abruptly — the wire-level analogue of a mid-frame network
  partition, surfacing client-side as a transient
  :class:`~repro.errors.ConnectionLostError`.
"""

from __future__ import annotations

import asyncio
import inspect
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional

from repro.engine.results import Result
from repro.engine.session import Session
from repro.errors import (
    HandshakeError,
    LinkUnavailableError,
    OverloadError,
    ProtocolError,
)
from repro.net import protocol
from repro.obs.tracing import propagated_trace


class _AbruptClose(Exception):
    """Internal signal: drop the transport without a reply (fault drop)."""


class _WireSession:
    """Server-side state of one accepted connection."""

    __slots__ = ("session", "executor", "handles", "fetch_rows", "peer")

    def __init__(self, peer: str):
        self.session: Optional[Session] = None
        # One thread for this connection's whole life: latch ownership is
        # per-thread, so BEGIN and the statements under it must share one.
        self.executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"repro-net-{peer}"
        )
        #: handle id -> statement text, for disconnect cleanup.
        self.handles: Dict[int, str] = {}
        self.fetch_rows: Optional[int] = None
        self.peer = peer


class ReproServer:
    """A TCP front end serving the wire protocol over an execution target."""

    def __init__(
        self,
        target: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        max_connections: int = 64,
        injector: Any = None,
    ):
        self.target = target
        #: The engine server behind the target (clock, metrics, databases).
        self.engine = getattr(target, "server", None) or target
        self.host = host
        self.port = port  # rebound to the real port once listening
        self.max_connections = max_connections
        self.injector = injector
        self.name = getattr(target, "name", None) or type(target).__name__
        execute_params = inspect.signature(target.execute).parameters
        self._accepts_session = "session" in execute_params
        self._accepts_database = "database" in execute_params
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._connections = 0
        self._handler_tasks: set = set()
        self._writers: set = set()
        metrics = self.engine.metrics
        self._m_accepted = metrics.counter("net.server.connections_accepted")
        self._m_shed = metrics.counter("net.server.connections_shed")
        self._m_active = metrics.gauge("net.server.connections_active")
        self._m_requests = metrics.counter("net.server.requests")
        self._m_errors = metrics.counter("net.server.request_errors")
        self._m_bytes_in = metrics.counter("net.server.bytes_in")
        self._m_bytes_out = metrics.counter("net.server.bytes_out")
        self._m_seconds = metrics.histogram("net.server.request_seconds")

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def serve(
        cls,
        target: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        **options: Any,
    ) -> "ReproServer":
        """Construct and start a server; returns once it is listening.

        ``port=0`` binds an ephemeral port; read ``server.port`` for the
        real one (the pattern every test and the CI job use).
        """
        server = cls(target, host=host, port=port, **options)
        server.start()
        return server

    @property
    def dsn(self) -> str:
        """The tcp DSN clients dial to reach this server's default database."""
        database = self.engine.default_database or ""
        return f"tcp://{self.host}:{self.port}/{database}"

    def start(self) -> None:
        """Start the listener on its background event-loop thread."""
        if self._thread is not None:
            raise ProtocolError("server already started")
        self._thread = threading.Thread(
            target=self._run_loop, name=f"repro-net-server-{self.name}", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            error = self._startup_error
            self._thread.join()
            self._thread = None
            self._startup_error = None
            raise error

    def stop(self) -> None:
        """Stop the listener and wait for the loop thread to exit."""
        loop, thread = self._loop, self._thread
        if loop is None or thread is None:
            return
        loop.call_soon_threadsafe(self._signal_stop)
        thread.join(timeout=10)
        self._thread = None
        self._loop = None

    def serve_forever(self) -> None:
        """Blocking serve (the ``python -m repro serve`` entry point)."""
        if self._thread is None:
            self.start()
        thread = self._thread
        assert thread is not None
        try:
            thread.join()
        except KeyboardInterrupt:
            self.stop()

    def __enter__(self) -> "ReproServer":
        if self._thread is None:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def _signal_stop(self) -> None:
        if self._stop_event is not None:
            self._stop_event.set()

    def _run_loop(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            listener = await asyncio.start_server(
                self._handle_connection, self.host, self.port
            )
        except OSError as exc:
            self._startup_error = exc
            self._started.set()
            return
        self.port = listener.sockets[0].getsockname()[1]
        self._started.set()
        async with listener:
            await self._stop_event.wait()
        # Graceful drain: close every client transport so its handler
        # falls out of readexactly on its own (no task cancellation — a
        # cancelled handler could skip its rollback cleanup), then wait.
        for writer in list(self._writers):
            writer.close()
        if self._handler_tasks:
            await asyncio.wait(self._handler_tasks, timeout=10)

    # -- connection handling ----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peername = writer.get_extra_info("peername")
        peer = f"{peername[0]}:{peername[1]}" if peername else "?"
        if self._connections >= self.max_connections:
            # Shed at accept: one ERROR frame, then close. The client's
            # pending HELLO gets OverloadError instead of WELCOME.
            self._m_shed.inc()
            await self._send(
                writer,
                protocol.OP_ERROR,
                protocol.error_payload(
                    OverloadError(
                        f"server {self.name!r} at connection limit "
                        f"({self.max_connections}); shedding {peer}"
                    )
                ),
            )
            writer.close()
            return
        self._connections += 1
        self._m_accepted.inc()
        self._m_active.set(self._connections)
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
        self._writers.add(writer)
        wire = _WireSession(peer)
        try:
            await self._serve_session(wire, reader, writer)
        except (_AbruptClose, ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections -= 1
            self._m_active.set(self._connections)
            self._writers.discard(writer)
            writer.close()
            await self._cleanup(wire)
            if task is not None:
                self._handler_tasks.discard(task)

    async def _cleanup(self, wire: _WireSession) -> None:
        """Disconnect hygiene, on the connection's own worker thread.

        An abandoned explicit transaction holds the database latch
        exclusively — rolling it back here is what keeps a dropped client
        from wedging every other session. Prepared handles the client
        created are dropped the way a closed in-process link would drop
        them.
        """
        def finish() -> None:
            session = wire.session
            if session is not None and session.in_transaction:
                self._execute_target("ROLLBACK", None, session)
            for handle_id in wire.handles:
                self.engine.close_prepared(handle_id)

        # submit (not run_in_executor) so the rollback runs to completion
        # on the worker thread even if this coroutine is cancelled while
        # awaiting it — a leaked exclusive latch wedges every session.
        future = wire.executor.submit(finish)
        try:
            await asyncio.wrap_future(future)
        except asyncio.CancelledError:
            future.result(timeout=10)
            raise
        finally:
            wire.executor.shutdown(wait=False)

    async def _serve_session(
        self, wire: _WireSession, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        loop = asyncio.get_running_loop()
        while True:
            try:
                prefix = await reader.readexactly(4)
            except (asyncio.IncompleteReadError, ConnectionError):
                return  # client went away
            length = protocol.check_frame_length(int.from_bytes(prefix, "big"))
            body = await reader.readexactly(length)
            self._m_bytes_in.inc(4 + length)
            opcode, payload = protocol.decode_body(body)
            if opcode == protocol.OP_BYE:
                return
            started = loop.time()
            self._m_requests.inc()
            try:
                self._on_fault("request", opcode)
                if opcode == protocol.OP_HELLO:
                    await self._send(writer, *self._do_hello(wire, payload or {}))
                elif opcode == protocol.OP_PING:
                    await self._send(writer, protocol.OP_PONG, {"server": self.name})
                elif wire.session is None:
                    raise ProtocolError(
                        f"{protocol.OP_NAMES.get(opcode, opcode)} before HELLO"
                    )
                elif opcode == protocol.OP_EXECUTE:
                    result = await loop.run_in_executor(
                        wire.executor, self._do_execute, wire, payload or {}
                    )
                    self._on_fault("result", opcode)
                    await self._send_result(writer, wire, payload or {}, result)
                elif opcode == protocol.OP_PREPARE:
                    handle_id = await loop.run_in_executor(
                        wire.executor, self._do_prepare, wire, payload or {}
                    )
                    await self._send(writer, protocol.OP_PREPARED, {"handle": handle_id})
                elif opcode == protocol.OP_EXECUTE_PREPARED:
                    result = await loop.run_in_executor(
                        wire.executor, self._do_execute_prepared, wire, payload or {}
                    )
                    self._on_fault("result", opcode)
                    await self._send_result(writer, wire, payload or {}, result)
                elif opcode == protocol.OP_CLOSE_PREPARED:
                    handle_id = int((payload or {}).get("handle", 0))
                    wire.handles.pop(handle_id, None)
                    self.engine.close_prepared(handle_id)
                    await self._send(writer, protocol.OP_PONG, {"closed": handle_id})
                else:
                    raise ProtocolError(
                        f"unexpected opcode 0x{opcode:02x} from client"
                    )
            except _AbruptClose:
                # Injected drop: a few bytes may already be on the wire
                # (a torn frame); the client sees EOF mid-read and maps it
                # to a transient ConnectionLostError.
                writer.close()
                raise
            except Exception as exc:  # noqa: BLE001 — every error becomes a frame
                self._m_errors.inc()
                await self._send(writer, protocol.OP_ERROR, protocol.error_payload(exc))
            finally:
                self._m_seconds.observe(loop.time() - started)

    def _on_fault(self, point: str, opcode: int) -> None:
        """Injector hook; LinkUnavailableError means: drop the transport."""
        if self.injector is None:
            return
        try:
            self.injector.on_call(
                f"net:{self.name}:{point}",
                opcode=protocol.OP_NAMES.get(opcode, str(opcode)),
            )
        except LinkUnavailableError as exc:
            raise _AbruptClose(str(exc)) from exc

    # -- request handlers (handshake on the loop, the rest on the worker) --

    def _do_hello(self, wire: _WireSession, payload: Dict[str, Any]):
        version = payload.get("protocol")
        if version != protocol.PROTOCOL_VERSION:
            raise HandshakeError(
                f"protocol version mismatch: client speaks {version!r}, "
                f"server {self.name!r} speaks {protocol.PROTOCOL_VERSION}"
            )
        database = payload.get("database") or None
        if database is not None:
            # Validate at handshake so a typo fails the connect, not the
            # first statement. CacheServer targets pin their own shadow
            # database; for them the client's choice must match the
            # engine's catalog all the same.
            from repro.errors import CatalogError

            try:
                self.engine.database(database)
            except CatalogError as exc:
                raise HandshakeError(
                    f"server {self.name!r} does not serve database "
                    f"{database!r}: {exc}"
                ) from exc
        principal = str(payload.get("principal") or "dbo")
        wire.session = Session(principal=principal, database=database)
        requested = payload.get("fetch_rows")
        wire.fetch_rows = int(requested) if requested else None
        return protocol.OP_WELCOME, {
            "protocol": protocol.PROTOCOL_VERSION,
            "server": self.name,
            "database": database or self.engine.default_database,
            "batch_rows": int(getattr(self.engine, "batch_rows", 0) or 0),
        }

    def _scoped(self, payload: Dict[str, Any], fn, *args):
        """Run ``fn`` under the request's propagated deadline and trace.

        Runs on the connection's worker thread. The budget re-anchors on
        the engine clock; the trace context parents this request's spans
        under the client's active span.
        """
        from repro.resilience.deadline import Deadline, deadline_scope

        budget = payload.get("budget")
        trace = payload.get("trace")
        deadline = (
            Deadline.after(self.engine.clock, float(budget)) if budget is not None else None
        )

        def run():
            with deadline_scope(deadline):
                return fn(*args)

        if trace:
            with propagated_trace(int(trace[0]), int(trace[1]), service=self.name):
                return run()
        return run()

    def _execute_target(
        self, sql: str, params: Optional[Dict[str, Any]], session: Session
    ) -> Result:
        kwargs: Dict[str, Any] = {"params": params}
        if self._accepts_session:
            kwargs["session"] = session
        if self._accepts_database and session.database is not None:
            kwargs["database"] = session.database
        return self.target.execute(sql, **kwargs)

    def _do_execute(self, wire: _WireSession, payload: Dict[str, Any]) -> Result:
        sql = str(payload.get("sql") or "")
        params = payload.get("params") or None
        assert wire.session is not None
        return self._scoped(payload, self._execute_target, sql, params, wire.session)

    def _do_prepare(self, wire: _WireSession, payload: Dict[str, Any]) -> int:
        sql = str(payload.get("sql") or "")
        assert wire.session is not None
        database = wire.session.database
        handle_id = self._scoped(
            payload, lambda: self.engine.prepare_sql(sql, database=database)
        )
        wire.handles[handle_id] = sql
        return handle_id

    def _do_execute_prepared(self, wire: _WireSession, payload: Dict[str, Any]) -> Result:
        handle_id = int(payload.get("handle", 0))
        params = payload.get("params") or None
        return self._scoped(
            payload, lambda: self.engine.execute_prepared(handle_id, params=params)
        )

    # -- replies -----------------------------------------------------------

    async def _send(self, writer: asyncio.StreamWriter, opcode: int, payload) -> None:
        frame = protocol.encode_frame(opcode, payload)
        writer.write(frame)
        self._m_bytes_out.inc(len(frame))
        await writer.drain()

    async def _send_result(
        self,
        writer: asyncio.StreamWriter,
        wire: _WireSession,
        payload: Dict[str, Any],
        result: Result,
    ) -> None:
        """RESULT header, then the rows in batches (fetch-in-batches).

        The batch size is the request's ``fetch_rows`` override, else the
        connection default from HELLO, else the engine's vectorized-
        execution chunk size — the wire hop streams rows at the same
        granularity :class:`~repro.exec.operators.BatchCursor` produced
        them.
        """
        session = wire.session
        in_transaction = bool(session is not None and session.in_transaction)
        await self._send(
            writer, protocol.OP_RESULT, protocol.result_header(result, in_transaction)
        )
        requested = payload.get("fetch_rows")
        batch = int(requested) if requested else wire.fetch_rows
        if not batch:
            batch = int(getattr(self.engine, "batch_rows", 0) or 0) or len(result.rows) or 1
        rows = result.rows
        if not rows:
            await self._send(writer, protocol.OP_ROWS, {"rows": [], "last": True})
            return
        for start in range(0, len(rows), batch):
            chunk = rows[start : start + batch]
            await self._send(
                writer,
                protocol.OP_ROWS,
                {"rows": list(chunk), "last": start + batch >= len(rows)},
            )

    def __repr__(self) -> str:
        state = "listening" if self._thread is not None else "stopped"
        return f"<ReproServer {self.name} {self.host}:{self.port} {state}>"
