"""TPC-W: the transactional web benchmark used in the paper's evaluation.

Implements the bookstore schema (items, authors, customers, addresses,
orders, order lines, credit-card transactions, plus shopping carts), a
scaled-down data generator, the fourteen web interactions as stored
procedures plus application logic, and the three benchmark mixes
(Browsing 95/5, Shopping 80/20, Ordering 50/50 Browse/Order).
"""

from repro.tpcw.config import SUBJECTS, TPCWConfig
from repro.tpcw.schema import SCHEMA_SQL, create_schema
from repro.tpcw.datagen import populate
from repro.tpcw.procedures import (
    CACHE_PROCEDURES,
    UPDATE_DOMINATED_PROCEDURES,
    install_procedures,
    procedure_definitions,
)
from repro.tpcw.workload import (
    BROWSE_INTERACTIONS,
    INTERACTIONS,
    MIXES,
    ORDER_INTERACTIONS,
    WorkloadMix,
    browse_order_split,
)
from repro.tpcw.application import TPCWApplication
from repro.tpcw.driver import DriverStats, LoadDriver, ThreadedLoadDriver
from repro.tpcw.setup import CACHED_VIEW_DDL, build_backend, enable_caching

__all__ = [
    "TPCWConfig",
    "SUBJECTS",
    "SCHEMA_SQL",
    "create_schema",
    "populate",
    "install_procedures",
    "procedure_definitions",
    "CACHE_PROCEDURES",
    "UPDATE_DOMINATED_PROCEDURES",
    "INTERACTIONS",
    "BROWSE_INTERACTIONS",
    "ORDER_INTERACTIONS",
    "MIXES",
    "WorkloadMix",
    "browse_order_split",
    "TPCWApplication",
    "LoadDriver",
    "ThreadedLoadDriver",
    "DriverStats",
    "build_backend",
    "enable_caching",
    "CACHED_VIEW_DDL",
]
