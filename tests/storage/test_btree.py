"""B+-tree unit and property-based tests."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.btree import BPlusTree, encode_key


class TestBasics:
    def test_empty(self):
        tree = BPlusTree()
        assert len(tree) == 0
        assert tree.get(encode_key((1,))) == []
        assert tree.min_key() is None
        assert tree.max_key() is None

    def test_insert_get(self):
        tree = BPlusTree()
        tree.insert(encode_key((5,)), "a")
        assert tree.get(encode_key((5,))) == ["a"]

    def test_duplicate_keys_accumulate(self):
        tree = BPlusTree()
        key = encode_key((5,))
        tree.insert(key, "a")
        tree.insert(key, "b")
        assert sorted(tree.get(key)) == ["a", "b"]
        assert len(tree) == 2

    def test_delete_specific_payload(self):
        tree = BPlusTree()
        key = encode_key((5,))
        tree.insert(key, "a")
        tree.insert(key, "b")
        assert tree.delete(key, "a")
        assert tree.get(key) == ["b"]

    def test_delete_missing_returns_false(self):
        tree = BPlusTree()
        assert not tree.delete(encode_key((1,)), "x")

    def test_clear(self):
        tree = BPlusTree()
        for i in range(100):
            tree.insert(encode_key((i,)), i)
        tree.clear()
        assert len(tree) == 0


class TestSplitsAndOrder:
    def test_many_inserts_stay_sorted(self):
        tree = BPlusTree(order=8)
        values = list(range(1000))
        random.Random(3).shuffle(values)
        for value in values:
            tree.insert(encode_key((value,)), value)
        scanned = [payload for _, payload in tree.scan()]
        assert scanned == list(range(1000))

    def test_min_max(self):
        tree = BPlusTree(order=8)
        for value in (5, 1, 9, 3):
            tree.insert(encode_key((value,)), value)
        assert tree.min_key() == encode_key((1,))
        assert tree.max_key() == encode_key((9,))

    def test_max_key_after_deleting_rightmost(self):
        tree = BPlusTree(order=4)
        for value in range(50):
            tree.insert(encode_key((value,)), value)
        for value in range(40, 50):
            assert tree.delete(encode_key((value,)), value)
        assert tree.max_key() == encode_key((39,))


class TestRangeScans:
    def make_tree(self):
        tree = BPlusTree(order=8)
        for value in range(0, 100, 2):  # evens
            tree.insert(encode_key((value,)), value)
        return tree

    def test_bounded_inclusive(self):
        tree = self.make_tree()
        result = [p for _, p in tree.scan(encode_key((10,)), encode_key((20,)))]
        assert result == [10, 12, 14, 16, 18, 20]

    def test_bounded_exclusive(self):
        tree = self.make_tree()
        result = [
            p
            for _, p in tree.scan(
                encode_key((10,)), encode_key((20,)), low_inclusive=False, high_inclusive=False
            )
        ]
        assert result == [12, 14, 16, 18]

    def test_open_low(self):
        tree = self.make_tree()
        result = [p for _, p in tree.scan(high=encode_key((6,)))]
        assert result == [0, 2, 4, 6]

    def test_open_high(self):
        tree = self.make_tree()
        result = [p for _, p in tree.scan(low=encode_key((94,)))]
        assert result == [94, 96, 98]

    def test_bounds_between_keys(self):
        tree = self.make_tree()
        result = [p for _, p in tree.scan(encode_key((11,)), encode_key((15,)))]
        assert result == [12, 14]

    def test_prefix_scan_composite(self):
        tree = BPlusTree()
        for a in range(3):
            for b in range(4):
                tree.insert(encode_key((a, b)), (a, b))
        result = [p for _, p in tree.scan_prefix(encode_key((1,)))]
        assert result == [(1, 0), (1, 1), (1, 2), (1, 3)]


class TestKeyEncoding:
    def test_null_sorts_first(self):
        tree = BPlusTree()
        tree.insert(encode_key((5,)), 5)
        tree.insert(encode_key((None,)), None)
        tree.insert(encode_key((1,)), 1)
        assert [p for _, p in tree.scan()] == [None, 1, 5]

    def test_mixed_int_float_compare(self):
        assert encode_key((1,)) < encode_key((1.5,)) < encode_key((2,))

    def test_strings_and_numbers_do_not_collide(self):
        tree = BPlusTree()
        tree.insert(encode_key(("a",)), "a")
        tree.insert(encode_key((1,)), 1)
        assert [p for _, p in tree.scan()] == [1, "a"]


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(-1000, 1000), st.integers(0, 5)),
        min_size=0,
        max_size=300,
    )
)
def test_property_scan_matches_sorted_insertion(pairs):
    """Full scan always yields entries in encoded-key order with the right
    multiplicity, regardless of insertion order."""
    tree = BPlusTree(order=6)
    for key_value, payload in pairs:
        tree.insert(encode_key((key_value,)), payload)
    scanned = [(key, payload) for key, payload in tree.scan()]
    expected = sorted(
        (encode_key((key_value,)), payload) for key_value, payload in pairs
    )
    # Payload order within a key is insertion order, so compare as multisets
    # per key while requiring global key order.
    assert [key for key, _ in scanned] == [key for key, _ in expected]
    assert sorted(scanned) == expected
    assert len(tree) == len(pairs)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(0, 200), min_size=1, max_size=200, unique=True),
    st.data(),
)
def test_property_deletes_remove_exactly(keys, data):
    tree = BPlusTree(order=6)
    for key_value in keys:
        tree.insert(encode_key((key_value,)), key_value)
    to_delete = data.draw(st.lists(st.sampled_from(keys), unique=True))
    for key_value in to_delete:
        assert tree.delete(encode_key((key_value,)), key_value)
    remaining = sorted(set(keys) - set(to_delete))
    assert [p for _, p in tree.scan()] == remaining
