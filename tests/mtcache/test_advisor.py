"""Cache design advisor tests (paper §7 future work)."""

import pytest

from repro import MTCacheDeployment
from repro.mtcache.advisor import CacheAdvisor, WorkloadStatement

from tests.conftest import make_shop_backend


@pytest.fixture
def backend():
    server = make_shop_backend()
    server.execute(
        """
        CREATE PROCEDURE readCustomer @id INT AS
        BEGIN
            SELECT cname, segment FROM customer WHERE cid = @id
        END
        """,
        database="shop",
    )
    server.execute(
        """
        CREATE PROCEDURE touchOrder @id INT AS
        BEGIN
            UPDATE orders SET status = 'TOUCHED' WHERE oid = @id
            SELECT status FROM orders WHERE oid = @id
        END
        """,
        database="shop",
    )
    return server


class TestViewRecommendations:
    def test_read_dominated_table_gets_view(self, backend):
        advisor = CacheAdvisor(backend, "shop")
        report = advisor.recommend(
            [
                WorkloadStatement("SELECT cname FROM customer WHERE cid = 5", 10),
                WorkloadStatement("UPDATE customer SET segment = 'x' WHERE cid = 5", 1),
            ]
        )
        tables = {view.table.lower() for view in report.views}
        assert "customer" in tables
        view = next(v for v in report.views if v.table.lower() == "customer")
        # Referenced column + the primary key for change application.
        assert "cname" in view.columns and "cid" in view.columns

    def test_write_dominated_table_excluded(self, backend):
        advisor = CacheAdvisor(backend, "shop")
        report = advisor.recommend(
            [
                WorkloadStatement("SELECT total FROM orders WHERE oid = 1", 1),
                WorkloadStatement("UPDATE orders SET total = 0 WHERE oid = 1", 10),
            ]
        )
        assert not any(view.table.lower() == "orders" for view in report.views)

    def test_horizontal_restriction_detected(self, backend):
        advisor = CacheAdvisor(backend, "shop")
        report = advisor.recommend(
            [
                WorkloadStatement("SELECT cname FROM customer WHERE cid <= 100", 5),
                WorkloadStatement("SELECT segment FROM customer WHERE cid <= 50", 5),
            ]
        )
        view = next(v for v in report.views if v.table.lower() == "customer")
        assert view.predicate == "cid <= 100"

    def test_no_restriction_when_some_reads_unconstrained(self, backend):
        advisor = CacheAdvisor(backend, "shop")
        report = advisor.recommend(
            [
                WorkloadStatement("SELECT cname FROM customer WHERE cid <= 100", 5),
                WorkloadStatement("SELECT COUNT(*) FROM customer", 5),
            ]
        )
        view = next(v for v in report.views if v.table.lower() == "customer")
        assert view.predicate is None

    def test_join_reads_attribute_to_both_tables(self, backend):
        advisor = CacheAdvisor(backend, "shop")
        report = advisor.recommend(
            [
                WorkloadStatement(
                    "SELECT c.cname, o.total FROM customer c "
                    "JOIN orders o ON o.o_cid = c.cid",
                    4,
                )
            ]
        )
        tables = {view.table.lower() for view in report.views}
        assert tables == {"customer", "orders"}

    def test_subquery_tables_counted(self, backend):
        advisor = CacheAdvisor(backend, "shop")
        report = advisor.recommend(
            [
                WorkloadStatement(
                    "SELECT cname FROM customer WHERE cid IN "
                    "(SELECT o_cid FROM orders WHERE total > 10)",
                    3,
                )
            ]
        )
        tables = {view.table.lower() for view in report.views}
        assert "orders" in tables


class TestProcedureRecommendations:
    def test_read_only_procedure_recommended(self, backend):
        advisor = CacheAdvisor(backend, "shop")
        report = advisor.recommend(
            [WorkloadStatement("EXEC readCustomer @id = 1", 5)]
        )
        assert "readCustomer" in report.procedures_to_copy

    def test_update_dominated_procedure_not_recommended(self, backend):
        advisor = CacheAdvisor(backend, "shop")
        report = advisor.recommend([WorkloadStatement("EXEC touchOrder @id = 1", 5)])
        assert "touchOrder" not in report.procedures_to_copy

    def test_procedure_body_reads_counted_for_views(self, backend):
        advisor = CacheAdvisor(backend, "shop")
        report = advisor.recommend(
            [WorkloadStatement("EXEC readCustomer @id = 1", 5)]
        )
        assert any(view.table.lower() == "customer" for view in report.views)


class TestApply:
    def test_report_applies_to_cache_server(self, backend):
        deployment = MTCacheDeployment(backend, "shop")
        cache = deployment.add_cache_server("advised")
        advisor = CacheAdvisor(backend, "shop")
        report = advisor.recommend(
            [
                WorkloadStatement("SELECT cname, segment FROM customer WHERE cid <= 150", 10),
                WorkloadStatement("EXEC readCustomer @id = 1", 10),
            ]
        )
        report.apply(cache)
        # The advised view answers the workload locally.
        planned = cache.plan("SELECT cname FROM customer WHERE cid = 7")
        assert not planned.uses_remote
        assert cache.database.catalog.maybe_procedure("readCustomer") is not None
        # And the advised procedure runs on the cache against cached data.
        backend.reset_work()
        assert cache.execute("EXEC readCustomer @id = 7").rows
        assert backend.total_work.rows_returned == 0

    def test_summary_renders(self, backend):
        advisor = CacheAdvisor(backend, "shop")
        report = advisor.recommend(
            [WorkloadStatement("SELECT cname FROM customer WHERE cid <= 10", 2)]
        )
        text = report.summary()
        assert "CREATE CACHED VIEW" in text
