"""Storage layer: B+-trees, heap tables, secondary indexes, WAL, statistics."""

from repro.storage.btree import BPlusTree, encode_key
from repro.storage.table import Table, SecondaryIndex
from repro.storage.wal import (
    LogRecord,
    LogRecordType,
    WriteAheadLog,
)
from repro.storage.statistics import ColumnStatistics, Histogram, TableStatistics

__all__ = [
    "BPlusTree",
    "encode_key",
    "Table",
    "SecondaryIndex",
    "LogRecord",
    "LogRecordType",
    "WriteAheadLog",
    "ColumnStatistics",
    "Histogram",
    "TableStatistics",
]
