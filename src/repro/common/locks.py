"""Lock primitives for the whole repository.

Every lock in the engine is created here. That single chokepoint is what
makes the locking hierarchy auditable: the ``selflint`` rule
``raw-threading-lock`` forbids calling ``threading.Lock``/``RLock``
directly anywhere else in the package, so grepping this module (and
:mod:`repro.engine.locks`, which composes these primitives into the
database latch and table lock manager) shows every synchronization
point in the system.

The primitives:

* :func:`mutex` / :func:`condition` — thin factories over the stdlib
  primitives, for leaf-level state protection (metric values, cache
  entries, WAL appends, pool bookkeeping).
* :class:`RWLock` — a writer-preferring reader/writer lock with
  per-thread exclusive reentrancy. Readers share; a waiting writer
  blocks new readers so a steady read stream cannot starve DDL or an
  explicit transaction.

Timeouts are wall-clock (they bound how long a *real* thread waits);
simulated time never appears here.
"""

from __future__ import annotations

import threading
from typing import Optional


def mutex() -> threading.Lock:
    """A plain mutual-exclusion lock (the only sanctioned way to get one)."""
    return threading.Lock()


def rmutex() -> threading.RLock:
    """A reentrant mutual-exclusion lock."""
    return threading.RLock()


def condition(lock: Optional[threading.Lock] = None) -> threading.Condition:
    """A condition variable (over ``lock``, or a fresh mutex)."""
    return threading.Condition(lock if lock is not None else mutex())


class RWLock:
    """A writer-preferring reader/writer lock.

    * ``acquire_shared`` admits any number of concurrent readers, but
      blocks while a writer holds the lock **or is waiting for it** —
      writer preference, so writers cannot starve under a continuous
      stream of readers.
    * ``acquire_exclusive`` waits for all readers to drain and is
      **reentrant per thread**: the owning thread may re-acquire (DDL
      executed inside an explicit transaction, nested statement
      dispatch), and a thread that owns the lock exclusively passes
      straight through ``acquire_shared``.
    """

    def __init__(self) -> None:
        self._cond = condition()
        self._readers = 0
        self._writer: Optional[int] = None  # owning thread ident
        self._writer_depth = 0
        self._writers_waiting = 0

    # -- shared (readers) ------------------------------------------------

    def acquire_shared(self, timeout: Optional[float] = None) -> bool:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                return True  # exclusive owner reads freely
            while self._writer is not None or self._writers_waiting:
                if not self._cond.wait(timeout):
                    return False
            self._readers += 1
            return True

    def release_shared(self) -> None:
        with self._cond:
            if self._writer == threading.get_ident():
                return  # matching no-op for the owner fast path
            if self._readers <= 0:
                raise RuntimeError("release_shared without a matching acquire")
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    # -- exclusive (writers) ---------------------------------------------

    def acquire_exclusive(self, timeout: Optional[float] = None) -> bool:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                return True
            self._writers_waiting += 1
            try:
                while self._writer is not None or self._readers:
                    if not self._cond.wait(timeout):
                        return False
            finally:
                self._writers_waiting -= 1
            self._writer = me
            self._writer_depth = 1
            return True

    def release_exclusive(self) -> None:
        with self._cond:
            if self._writer != threading.get_ident():
                raise RuntimeError("release_exclusive by a non-owning thread")
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = None
                self._cond.notify_all()

    # -- introspection ----------------------------------------------------

    def owns_exclusive(self) -> bool:
        """True when the calling thread holds the lock exclusively."""
        return self._writer == threading.get_ident()

    @property
    def readers(self) -> int:
        return self._readers

    # -- context managers --------------------------------------------------

    class _Shared:
        __slots__ = ("_lock",)

        def __init__(self, lock: "RWLock"):
            self._lock = lock

        def __enter__(self) -> "RWLock":
            self._lock.acquire_shared()
            return self._lock

        def __exit__(self, *exc) -> None:
            self._lock.release_shared()

    class _Exclusive:
        __slots__ = ("_lock",)

        def __init__(self, lock: "RWLock"):
            self._lock = lock

        def __enter__(self) -> "RWLock":
            self._lock.acquire_exclusive()
            return self._lock

        def __exit__(self, *exc) -> None:
            self._lock.release_exclusive()

    def shared(self) -> "RWLock._Shared":
        return RWLock._Shared(self)

    def exclusive(self) -> "RWLock._Exclusive":
        return RWLock._Exclusive(self)

    def __repr__(self) -> str:
        return (
            f"<RWLock readers={self._readers} writer={self._writer} "
            f"waiting={self._writers_waiting}>"
        )
