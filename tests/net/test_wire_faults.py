"""Fault injection on real frames: mid-frame disconnects and retry recovery.

The server's ``net:<name>:request`` / ``net:<name>:result`` sites let a
:class:`FaultInjector` sever the TCP transport at precise points — before
a statement runs (never executed) or after it runs but before the reply
(executed, reply lost).  The client must surface both as a *transient*
:class:`ConnectionLostError` so RetryPolicy / FailoverRouter recover.
"""

from __future__ import annotations

import pytest

from repro.client import connect
from repro.errors import ConnectionLostError, is_transient
from repro.faults import FaultInjector
from repro.net import ReproServer
from repro.resilience import RetryPolicy
from tests.conftest import make_shop_backend


@pytest.fixture()
def faulty_server():
    backend = make_shop_backend()
    injector = FaultInjector(backend.clock, seed=7)
    server = ReproServer.serve(backend, injector=injector)
    try:
        yield backend, server, injector
    finally:
        server.stop()


class TestMidFrameDisconnect:
    def test_reply_lost_is_a_transient_connection_error(self, faulty_server):
        backend, server, injector = faulty_server
        connection = connect(server.dsn)
        try:
            # Arm: sever the link after the NEXT statement executes, before
            # its reply frame is written.
            injector.rule(f"net:{server.name}:result", action="unavailable", count=1)
            with pytest.raises(ConnectionLostError) as info:
                connection.execute("SELECT cid FROM customer WHERE cid = 1")
            assert is_transient(info.value)
            # The very next call redials transparently and succeeds.
            generation = connection.target.generation
            rows = connection.execute("SELECT cid FROM customer WHERE cid = 1").rows
            assert rows == [(1,)]
            assert connection.target.generation == generation + 1
        finally:
            connection.close()

    def test_retry_policy_recovers_reads_exactly_once(self, faulty_server):
        backend, server, injector = faulty_server
        connection = connect(server.dsn)
        try:
            injector.rule(f"net:{server.name}:result", action="unavailable", count=2)
            policy = RetryPolicy(max_attempts=4, base_delay=0.01, max_delay=0.05)
            result = policy.run(
                lambda: connection.execute(
                    "SELECT cname FROM customer WHERE cid = @id", {"id": 5}
                ),
                clock=connection.target.clock,
            )
            assert result.rows == [("cust5",)]
            assert injector.injected == 2  # both armed faults actually fired
        finally:
            connection.close()

    def test_request_site_drop_means_statement_never_ran(self, faulty_server):
        backend, server, injector = faulty_server
        connection = connect(server.dsn)
        try:
            injector.rule(f"net:{server.name}:request", action="unavailable", count=1)
            with pytest.raises(ConnectionLostError):
                connection.execute(
                    "INSERT INTO customer (cid, cname) VALUES (9100, 'ghost')"
                )
            # Dropped BEFORE dispatch: the write must not have applied, so a
            # retry of the same INSERT is safe (no duplicate-key surprise).
            rows = backend.execute(
                "SELECT cid FROM customer WHERE cid = 9100", database="shop"
            ).rows
            assert rows == []
            connection.execute(
                "INSERT INTO customer (cid, cname) VALUES (9100, 'ghost')"
            )
            assert backend.execute(
                "SELECT cname FROM customer WHERE cid = 9100", database="shop"
            ).scalar == "ghost"
        finally:
            connection.close()

    def test_latency_fault_delays_but_completes(self, faulty_server):
        backend, server, injector = faulty_server
        # Latency rides the injector's clock; with the simulated backend
        # clock this is instantaneous wall-time but exercises the path.
        injector.rule(
            f"net:{server.name}:result", action="latency", latency=0.5, count=1
        )
        with connect(server.dsn) as connection:
            rows = connection.execute("SELECT cid FROM customer WHERE cid = 1").rows
            assert rows == [(1,)]
        assert injector.injected == 1
