"""The paper's user-ramp procedure and DES scale-out linearity."""

import pytest

from repro.simulation import DESConfig, calibrate, simulate_cluster
from repro.simulation.des import saturating_users
from repro.tpcw import TPCWConfig


@pytest.fixture(scope="module")
def calibration():
    return calibrate(
        "cached", TPCWConfig(num_items=60, num_ebs=10, bestseller_window=60), repetitions=3
    )


def test_saturating_users_respects_latency_limit(calibration):
    base = DESConfig(users=8, mix_name="Shopping", servers=1, duration=40, warmup=8)
    users, result = saturating_users(
        calibration, base, latency_limit=3.0, max_users=3000
    )
    assert users >= 8
    assert result.p90_latency <= 3.0
    # At the chosen point the web tier is working hard.
    assert result.web_utilization > 0.5


def test_saturating_users_scales_with_servers(calibration):
    base1 = DESConfig(users=8, mix_name="Shopping", servers=1, duration=40, warmup=8)
    base3 = DESConfig(users=8, mix_name="Shopping", servers=3, duration=40, warmup=8)
    users1, result1 = saturating_users(calibration, base1, max_users=3000)
    users3, result3 = saturating_users(calibration, base3, max_users=3000)
    # Three servers sustain substantially more users and throughput.
    assert users3 > users1
    assert result3.wips > result1.wips * 1.8


def test_des_scaleout_roughly_linear(calibration):
    """Figure 6(a) via the DES: with plentiful users, Shopping WIPS scales
    near-linearly in the number of web/cache servers."""
    wips = []
    for servers in (1, 2, 4):
        result = simulate_cluster(
            calibration,
            DESConfig(
                users=400 * servers,
                mix_name="Shopping",
                servers=servers,
                duration=50,
                warmup=10,
            ),
        )
        assert result.web_utilization > 0.9
        wips.append(result.wips)
    assert wips[1] / wips[0] == pytest.approx(2.0, rel=0.15)
    assert wips[2] / wips[0] == pytest.approx(4.0, rel=0.15)
