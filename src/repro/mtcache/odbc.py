"""ODBC-source-style redirection: the transparency mechanism.

In Windows, applications connect to a *logical* ODBC source name that maps
to an actual server. Enabling MTCache for an application is a pure
configuration change: redirect the source from the backend server to the
cache server (paper §4, "Rerouting the application's ODBC sources").

Applications written against :class:`OdbcConnection` never know which
server answers them — the definition of cache transparency.
:class:`OdbcConnection` is a thin subclass of the unified
:class:`repro.client.Connection`, so it speaks the full DBAPI-style
surface (``cursor()``, ``commit()``/``rollback()``) while keeping the
historical ``execute()``/``server``/``server_name`` attributes.

Redirecting a source *invalidates* its live connections: each one
re-resolves against the registry on its next execute — fresh target,
fresh session, any open transaction on the old target rolled back — so
an application holding a connection across the configuration change
transparently follows it. When the new server does not carry the
source's old database, the database is re-resolved from the target
(its shadow database for a cache facade, its default database
otherwise) instead of silently keeping a name the server cannot serve.
"""

from __future__ import annotations

import weakref
from typing import Any, Dict, Optional

from repro.client.connection import Connection
from repro.errors import DistributedError


class OdbcConnection(Connection):
    """A live connection through a logical source name.

    .. deprecated:: prefer ``repro.client.connect(...)`` for new code;
       this class remains the ODBC-source-shaped facade (and what
       :meth:`OdbcSourceRegistry.connect` hands out).
    """

    def __init__(self, server, database: Optional[str], principal: str = "dbo"):
        super().__init__(server, database=database, principal=principal)
        # Set by OdbcSourceRegistry.connect; a direct OdbcConnection is
        # not registry-managed and never goes stale.
        self._registry: Optional["OdbcSourceRegistry"] = None
        self._source_name: Optional[str] = None
        self._stale = False

    @property
    def server(self) -> Any:
        """The execution target exactly as handed to the constructor
        (historical contract; the base class would unwrap facades)."""
        return self.target

    @property
    def server_name(self) -> str:
        """Which physical server this connection reaches (diagnostics)."""
        return self.target.name

    # -- registry-driven re-resolution -------------------------------------

    def invalidate(self) -> None:
        """Mark the connection stale; it re-resolves on its next execute."""
        self._stale = True

    def _raw_execute(self, sql: str, params: Optional[Dict[str, Any]]):
        if self._stale:
            self._reresolve()
        return super()._raw_execute(sql, params)

    def _reresolve(self) -> None:
        self._stale = False
        if self._registry is None or self._source_name is None:
            return
        try:
            if self.session.in_transaction:
                # Abandon the old target's transaction (and its latch).
                super()._raw_execute("ROLLBACK", None)
        except Exception:
            pass  # the old target may already be gone; nothing to release
        server, database = self._registry._resolved_target(self._source_name)
        self.target = server
        self.database = database
        self._reset_session(database)
        self._bind_target(server)


class OdbcSourceRegistry:
    """Maps logical source names to physical servers."""

    def __init__(self):
        self._sources: Dict[str, Dict[str, Any]] = {}

    def register(self, name: str, server, database: Optional[str] = None) -> None:
        """Define a logical source (initially pointing at the backend)."""
        self._sources[name.lower()] = {
            "server": server,
            "database": database,
            "connections": [],
        }

    def redirect(self, name: str, server, database: Optional[str] = None) -> None:
        """Re-point a source at a different server — no app changes needed.

        Without an explicit ``database``, the old database is kept only
        when the new server actually has it; otherwise the target's own
        default is adopted. Live connections from this source are
        invalidated so they re-resolve on their next execute.
        """
        entry = self._sources.get(name.lower())
        if entry is None:
            raise DistributedError(f"no ODBC source {name!r}")
        if database is None:
            database = self._default_database(server, entry["database"])
        entry["server"] = server
        entry["database"] = database
        live = []
        for ref in entry["connections"]:
            connection = ref()
            if connection is not None:
                connection.invalidate()
                live.append(ref)
        entry["connections"] = live

    @staticmethod
    def _default_database(server, previous: Optional[str]) -> Optional[str]:
        """The database a redirected source should use on ``server``."""
        databases = getattr(server, "databases", None)
        if previous is not None and databases is not None and previous.lower() in databases:
            return previous
        shadow = getattr(server, "shadow_db_name", None)  # CacheServer facade
        if shadow is not None:
            return shadow
        return getattr(server, "default_database", None) or previous

    def _entry(self, name: str) -> Dict[str, Any]:
        entry = self._sources.get(name.lower())
        if entry is None:
            raise DistributedError(f"no ODBC source {name!r}")
        return entry

    def _resolved_target(self, name: str):
        entry = self._entry(name)
        return entry["server"], entry["database"]

    def connect(self, name: str, principal: str = "dbo") -> OdbcConnection:
        entry = self._entry(name)
        connection = OdbcConnection(entry["server"], entry["database"], principal)
        connection._registry = self
        connection._source_name = name.lower()
        entry["connections"].append(weakref.ref(connection))
        return connection

    def target_of(self, name: str) -> str:
        return self._entry(name)["server"].name
