"""End-to-end deadline propagation across the tiers.

The acceptance property: once a statement's budget is spent mid-chain,
no further remote hops happen — asserted through the fault injector's
fire count (it fires once per *actual* remote attempt, after the
deadline gate) — and retry backoff never advances the clock past the
deadline's expiry.
"""

import pytest

from repro.errors import DeadlineExceededError, LinkUnavailableError, OverloadError
from repro.faults import FaultInjector
from repro.resilience import Deadline, RetryPolicy, deadline_scope

pytestmark = pytest.mark.overload


@pytest.fixture
def injector(deployment):
    inj = FaultInjector(deployment.clock, seed=11)
    deployment.attach_fault_injector(inj)
    return inj


@pytest.fixture
def link(cache):
    return cache.server.linked_servers.get("backend")


class TestNoHopsPastTheDeadline:
    def test_budget_eaten_by_latency_stops_the_next_hop(
        self, injector, link, deployment
    ):
        # Every remote hop costs 2s of injected latency; the statement
        # has 1s of budget. The first hop's latency eats the budget, so
        # the *remote server's* admission gate rejects it on arrival
        # (the hop was already late when it landed); the second hop is
        # rejected at the link tier without reaching the remote side —
        # the injector fires exactly once across both calls.
        injector.wound_link(link, kind="query", action="latency", latency=2.0, count=None)
        deadline = Deadline.after(deployment.clock, 1.0)
        with deadline_scope(deadline):
            with pytest.raises(DeadlineExceededError) as excinfo:
                link.execute_remote_sql("SELECT COUNT(*) FROM customer")
            assert "backend" in str(excinfo.value)  # rejected server-side
            assert injector.injected == 1
            assert deadline.expired()
            with pytest.raises(DeadlineExceededError):
                link.execute_remote_sql("SELECT COUNT(*) FROM customer")
        # No second remote attempt was made: the injector never fired again.
        assert injector.injected == 1
        assert (
            cache_metrics(link).counter(
                "overload.deadline_misses", labels={"link": link.name}
            ).value
            == 1
        )

    def test_expired_deadline_rejects_before_the_first_hop(
        self, injector, link, deployment
    ):
        deadline = Deadline.after(deployment.clock, 0.5)
        deployment.clock.advance(0.5)
        with deadline_scope(deadline):
            with pytest.raises(DeadlineExceededError):
                link.execute_remote_sql("SELECT COUNT(*) FROM customer")
        assert injector.injected == 0

    def test_cursor_timeout_reaches_the_link_tier(
        self, injector, cache, deployment
    ):
        """The public surface: Cursor.execute(timeout=...) installs the
        deadline that the linked-server tier enforces."""
        from repro.client.connection import connect

        link = cache.server.linked_servers.get("backend")
        # Wound every call kind: uncached-table statements may ship as
        # whole-statement forwards rather than RemoteQueryOps.
        injector.wound_link(link, kind="*", action="latency", latency=3.0, count=None)
        connection = connect(cache)
        cursor = connection.cursor()
        # orders is uncached: the plan needs one remote hop per execute.
        cursor.execute("SELECT COUNT(*) FROM orders", timeout=10.0)
        assert cursor.fetchone() == (400,)
        fired = injector.injected
        assert fired >= 1
        with pytest.raises(DeadlineExceededError):
            # 1s budget, 3s first-hop latency: by the time the remote
            # result is due the budget is gone — and any further hop in
            # the same statement is rejected without firing.
            cursor.execute(
                "SELECT COUNT(*) FROM orders WHERE oid <= 100; "
                "SELECT COUNT(*) FROM orders WHERE oid > 100",
                timeout=1.0,
            )
        assert injector.injected <= fired + 1


class TestRetryNeverSleepsPastTheBudget:
    def test_link_backoff_clamped_to_remaining_budget(
        self, injector, link, deployment
    ):
        injector.wound_link(link, kind="query", count=None)
        deadline = Deadline.after(deployment.clock, 0.12)
        with deadline_scope(deadline):
            with pytest.raises((LinkUnavailableError, DeadlineExceededError)):
                link.execute_remote_sql("SELECT COUNT(*) FROM customer")
        # The whole retry dance, backoff included, stayed inside the
        # deadline: the clock never advanced past the expiry.
        assert deployment.clock.now() <= deadline.expires_at

    def test_policy_run_clamps_to_ambient_deadline(self, deployment):
        clock = deployment.clock
        policy = RetryPolicy(max_attempts=10, base_delay=0.4, deadline=100.0)
        calls = {"n": 0}

        def always_transient():
            calls["n"] += 1
            raise OverloadError("synthetic transient")

        deadline = Deadline.after(clock, 1.0)
        with deadline_scope(deadline):
            with pytest.raises((OverloadError, DeadlineExceededError)):
                policy.run(always_transient, clock)
        assert clock.now() <= deadline.expires_at
        # It gave up well before its own 10-attempt / 100s budget.
        assert calls["n"] < 10

    def test_next_delay_refuses_to_sleep_past_budget(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.2, jitter=0.0)
        assert policy.next_delay(1, 0.0, 0.0, budget=1.0) == pytest.approx(0.2)
        assert policy.next_delay(1, 0.0, 0.0, budget=0.1) is None
        # Exactly-equal is refused too: arriving at the deadline is late.
        assert policy.next_delay(1, 0.0, 0.0, budget=0.2) is None


def cache_metrics(link):
    """The metrics registry the link reports into."""
    return link._metrics
