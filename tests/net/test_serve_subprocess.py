"""Boot the real ``python -m repro serve`` process and talk to it.

Marked ``net``: this is the CI job's end-to-end check that the shipped
entry point binds a socket, prints its DSN, and serves the wire protocol
to an out-of-process client.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import pytest

from repro.client import connect

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


@pytest.mark.net
def test_serve_entry_point_over_a_real_socket():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["PYTHONUNBUFFERED"] = "1"
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--serve-workload",
            "shop",
            "--port",
            "0",
        ],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        dsn = None
        for _ in range(50):  # the banner is the first stdout line
            line = process.stdout.readline()
            if not line:
                break
            if line.startswith("serving "):
                dsn = line.split(None, 1)[1].strip()
                break
        assert dsn, "server process never printed its 'serving <dsn>' banner"
        assert dsn.startswith("tcp://")

        with connect(dsn, timeout=10) as connection:
            rows = connection.execute(
                "SELECT cid, cname FROM customer WHERE cid <= @n ORDER BY cid",
                {"n": 3},
            ).rows
            assert rows == [(1, "cust1"), (2, "cust2"), (3, "cust3")]
            connection.begin()
            connection.execute(
                "INSERT INTO customer (cid, cname) VALUES (5001, 'subproc')"
            )
            connection.commit()
            assert connection.execute(
                "SELECT cname FROM customer WHERE cid = 5001"
            ).scalar == "subproc"
    finally:
        process.terminate()
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(timeout=10)
