"""CircuitBreaker unit tests: the closed→open→half-open machine."""

import pytest

from repro.common.clock import SimulatedClock
from repro.obs.metrics import MetricsRegistry
from repro.resilience import CircuitBreaker


@pytest.fixture
def clock():
    return SimulatedClock()


def make_breaker(clock, registry=None):
    return CircuitBreaker(
        clock, failure_threshold=3, reset_timeout=2.0, name="backend", registry=registry
    )


def test_trips_after_consecutive_failures(clock):
    breaker = make_breaker(clock)
    for _ in range(2):
        breaker.record_failure()
    assert breaker.state == CircuitBreaker.CLOSED
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.OPEN
    assert not breaker.allow()
    assert breaker.rejections == 1


def test_success_resets_the_failure_count(clock):
    breaker = make_breaker(clock)
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.CLOSED


def test_half_open_probe_after_reset_timeout(clock):
    breaker = make_breaker(clock)
    for _ in range(3):
        breaker.record_failure()
    assert not breaker.allow()
    clock.advance(2.0)
    assert breaker.ready()
    assert breaker.allow()  # the half-open probe
    assert breaker.state == CircuitBreaker.HALF_OPEN
    breaker.record_success()
    assert breaker.state == CircuitBreaker.CLOSED


def test_half_open_failure_reopens(clock):
    breaker = make_breaker(clock)
    for _ in range(3):
        breaker.record_failure()
    clock.advance(2.0)
    assert breaker.allow()
    breaker.record_failure()  # probe failed
    assert breaker.state == CircuitBreaker.OPEN
    assert not breaker.allow()  # timeout restarted
    clock.advance(2.0)
    assert breaker.allow()


def test_ready_is_read_only(clock):
    breaker = make_breaker(clock)
    for _ in range(3):
        breaker.record_failure()
    clock.advance(2.0)
    assert breaker.ready()
    assert breaker.state == CircuitBreaker.OPEN  # ready() did not transition


@pytest.mark.concurrency
def test_half_open_admits_exactly_one_concurrent_probe(clock):
    """Many threads racing allow() on a just-expired breaker: exactly one
    wins the half-open probe slot; every loser is rejected (and would
    surface CircuitOpenError at the link layer). Without the probe slot,
    all racers would hit the possibly-still-broken target at once —
    a thundering herd exactly when the target is most fragile."""
    import threading

    breaker = make_breaker(clock)
    for _ in range(3):
        breaker.record_failure()
    clock.advance(2.0)
    assert breaker.ready()

    outcomes = []
    outcomes_mutex = threading.Lock()
    barrier = threading.Barrier(8)

    def racer():
        barrier.wait()
        admitted = breaker.allow()
        with outcomes_mutex:
            outcomes.append(admitted)

    threads = [threading.Thread(target=racer, daemon=True) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=5.0)

    assert sum(outcomes) == 1
    assert breaker.state == CircuitBreaker.HALF_OPEN
    assert breaker.rejections == 7
    # The probe's verdict settles the breaker for everyone.
    breaker.record_success()
    assert breaker.state == CircuitBreaker.CLOSED
    assert breaker.allow()


def test_half_open_probe_slot_frees_after_failure(clock):
    """A failed probe reopens the breaker AND releases the probe slot, so
    the next reset_timeout expiry gets a fresh probe (no stuck slot)."""
    breaker = make_breaker(clock)
    for _ in range(3):
        breaker.record_failure()
    clock.advance(2.0)
    assert breaker.allow()  # probe slot taken
    assert not breaker.allow()  # concurrent call rejected while probing
    breaker.record_failure()  # probe failed -> OPEN, slot released
    clock.advance(2.0)
    assert breaker.allow()  # a new probe is possible


def test_state_exported_as_gauge(clock):
    registry = MetricsRegistry(namespace="test")
    breaker = make_breaker(clock, registry=registry)
    gauge = registry.gauge("resilience.breaker_state", labels={"link": "backend"})
    assert gauge.value == 0.0
    for _ in range(3):
        breaker.record_failure()
    assert gauge.value == 2.0
    assert registry.counter("resilience.breaker_opens", labels={"link": "backend"}).value == 1
    clock.advance(2.0)
    breaker.allow()
    assert gauge.value == 1.0
    breaker.record_success()
    assert gauge.value == 0.0
