"""Seeded violation: a link round trip made while holding table locks.

Expected finding: ``blocking-under-latch`` (the remote call's latency --
and the remote tier's own locking -- happens under our table locks,
which is exactly the pattern the sanctioned forwarding sites must stay
the only instances of).
"""


class BadForwarder:
    def forward(self, database, plan, sql):
        with database.lock_manager.locking(plan.tables):
            return self.link.execute_statement_text(sql)
