"""E3 — §6.2.3 replication latency.

Paper (Ordering workload):

* light load: average commit-to-apply latency 0.55 s;
* backend and four of five web servers saturated: 1.67 s.

Shape: latency is sub-second under light load and grows by roughly 2-4x
under saturation — but stays within "a couple of seconds", acceptable for
web scenarios. Reproduced with the discrete-event simulator (replication
jobs queue behind saturated CPUs) using the calibrated demands.
"""


from repro.simulation import DESConfig, simulate_cluster

from benchmarks.conftest import emit


def _run(cal_cached, users, servers):
    return simulate_cluster(
        cal_cached,
        DESConfig(
            users=users,
            mix_name="Ordering",
            servers=servers,
            duration=90,
            warmup=15,
            logreader_interval=0.25,
            agent_interval=0.25,
        ),
    )


def test_bench_replication_latency(cal_cached, benchmark, capsys):
    light = _run(cal_cached, users=20, servers=5)
    # Heavy: enough users to saturate the web tier (the paper ran at the
    # point where latency requirements were barely met, not far beyond).
    heavy = _run(cal_cached, users=1100, servers=5)

    emit(
        capsys,
        "E3: update propagation latency (Ordering)",
        [
            f"light load : {light.replication_latency:6.3f} s "
            f"(web util {light.web_utilization:.0%}, backend {light.backend_utilization:.0%}) "
            f"  paper: 0.55 s",
            f"heavy load : {heavy.replication_latency:6.3f} s "
            f"(web util {heavy.web_utilization:.0%}, backend {heavy.backend_utilization:.0%}) "
            f"  paper: 1.67 s",
            f"ratio heavy/light: {heavy.replication_latency / light.replication_latency:.2f} "
            f"  paper: 3.0",
        ],
    )

    assert light.replication_samples > 10
    assert heavy.replication_samples > 10
    # Light-load latency is bounded by the polling pipeline (sub-second).
    assert light.replication_latency < 1.0
    # Saturation stretches latency, but it stays acceptable (< a few s).
    assert heavy.replication_latency > light.replication_latency
    assert heavy.replication_latency < 5.0

    benchmark.pedantic(
        lambda: _run(cal_cached, users=20, servers=2), rounds=1, iterations=1
    )
