"""Linked servers: SQL Server's mechanism for distributed queries.

A :class:`ServerLink` connects one server to another by name. Remote
subexpressions arrive as *textual SQL* (the optimizer's DataTransfer
boundary renders plan fragments back to text) and are re-parsed and
re-optimized by the target server — matching the paper's observation that
plans cannot be shipped, only text.

The statement fast path (paper §4.3, parameterized remote queries) adds a
prepare/execute protocol on top: :meth:`ServerLink.prepare` registers the
text on the target once and returns a :class:`RemoteStatementHandle`;
subsequent executions ship only the handle id and the parameter values.
Handles survive remote schema changes (the target re-prepares
transparently) and remote handle loss (the link re-prepares from its own
text copy).

The registry also tracks simple traffic counters (queries, statements,
prepares, prepared executions) used by tests and the cluster simulator.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.lru import LRUCache
from repro.common.witness import active_witness
from repro.engine.results import Result
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    DistributedError,
    PreparedStatementError,
    ReproError,
    is_transient,
)
from repro.obs.tracing import NULL_SPAN
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.deadline import current_deadline
from repro.resilience.overload import RetryBudget
from repro.resilience.retry import RetryPolicy, default_link_policy


class RemoteStatementHandle:
    """The client-side half of a prepared remote statement.

    Lazily binds to a server-side handle id on first execution, and
    re-binds transparently if the target reports the handle unknown
    (e.g. it was closed); schema-version staleness is handled on the
    target side, invisible to the client.
    """

    __slots__ = ("link", "sql", "handle_id", "prepares")

    def __init__(self, link: "ServerLink", sql: str):
        self.link = link
        self.sql = sql
        self.handle_id: Optional[int] = None
        self.prepares = 0

    def _ensure_prepared(self) -> int:
        if self.handle_id is None:
            self.handle_id = self.link.server.prepare_sql(self.sql, self.link.database)
            self.prepares += 1
            self.link.prepares += 1
        return self.handle_id

    def execute(self, params: Optional[Dict[str, Any]] = None) -> Result:
        """Execute by handle; returns the full result."""
        self.link.prepared_executions += 1
        with self.link._span("remote.prepared", handle=self.handle_id):
            return self.link._invoke("prepared", lambda: self._execute_once(params))

    def _execute_once(self, params: Optional[Dict[str, Any]]) -> Result:
        handle_id = self._ensure_prepared()
        try:
            return self.link.server.execute_prepared(handle_id, params)
        except PreparedStatementError:
            # The target lost the handle; re-prepare from our text copy.
            self.handle_id = None
            handle_id = self._ensure_prepared()
            return self.link.server.execute_prepared(handle_id, params)

    def execute_rows(self, params: Optional[Dict[str, Any]] = None) -> List[Tuple]:
        """Execute by handle; returns the result rows (RemoteQueryOp).

        Counts toward ``queries_shipped`` so traffic accounting matches
        the text path — a by-handle execution is still one round trip,
        just a much lighter one.
        """
        self.link.queries_shipped += 1
        return self.execute(params).rows

    def close(self) -> None:
        if self.handle_id is not None:
            self.link.server.close_prepared(self.handle_id)
            self.handle_id = None

    def __repr__(self) -> str:
        text = self.sql if len(self.sql) <= 40 else self.sql[:37] + "..."
        return f"<RemoteStatementHandle {self.link.name}:{self.handle_id} {text!r}>"


class ServerLink:
    """A named link to another server (possibly a specific database)."""

    def __init__(
        self,
        name: str,
        server,
        database: Optional[str] = None,
        tracer=None,
        clock=None,
        metrics=None,
    ):
        self.name = name
        self.server = server
        self.database = database
        self.tracer = tracer
        self.queries_shipped = 0
        self.statements_shipped = 0
        self.prepares = 0
        self.prepared_executions = 0
        self.retries = 0
        # Resilience wiring: retries and breaking only engage when the
        # owning server hands us its virtual clock (backoff must advance
        # it); without one the link behaves exactly as before.
        self.clock = clock
        self._metrics = metrics
        self.retry_policy: Optional[RetryPolicy] = (
            default_link_policy(name) if clock is not None else None
        )
        self.breaker: Optional[CircuitBreaker] = (
            CircuitBreaker(clock, name=name, registry=metrics) if clock is not None else None
        )
        # Retry budget (PR 9): each first attempt deposits ~10% of a
        # token, each retry spends one, so during a brownout retries are
        # capped at ~10% of live traffic instead of multiplying it.
        self.retry_budget: Optional[RetryBudget] = (
            RetryBudget() if clock is not None else None
        )
        # Fault-injection hook (repro.faults). None means every guard
        # below is a single attribute check — a true no-op.
        self.injector = None
        # sql text -> RemoteStatementHandle, so every caller preparing the
        # same text (RemoteQueryOps of cached plans, forwarded DML) shares
        # one remote handle. Evicted handles close their server-side half.
        self._handles: LRUCache = LRUCache(256, on_evict=lambda handle: handle.close())

    def _span(self, name: str, **attributes):
        """Client-side span for one remote call (no-op when untraced).

        The target server opens its own spans inside; because the call is
        in-process the context variable makes them children of this one,
        so one exported trace covers both tiers.
        """
        if self.tracer is None:
            return NULL_SPAN
        return self.tracer.span(name, target=self.name, **attributes)

    def _invoke(self, kind: str, fn: Callable[[], Any]) -> Any:
        """Run one remote call under the link's resilience machinery.

        Order matters: the deadline gates first (an exhausted budget must
        not spend a remote hop), the breaker next (an open breaker rejects
        without touching the target), the fault injector after that (so
        injected faults land *before* the remote call has any effect —
        the property that makes retrying non-idempotent statements safe),
        then the call itself. Transient failures back off on the virtual
        clock — clamped to the deadline's remaining budget and charged
        against the link's retry budget — and re-enter the loop;
        deterministic errors propagate untouched and leave the breaker
        alone.
        """
        policy = self.retry_policy
        breaker = self.breaker
        budget = self.retry_budget
        deadline = current_deadline()
        started = self.clock.now() if (policy is not None and self.clock is not None) else 0.0
        attempt = 1
        if budget is not None:
            budget.on_attempt()
        while True:
            if deadline is not None and deadline.expired():
                if self._metrics is not None:
                    self._metrics.counter(
                        "overload.deadline_misses", labels={"link": self.name}
                    ).inc()
                raise DeadlineExceededError(
                    f"deadline exceeded before remote {kind} call on link "
                    f"{self.name!r} (attempt {attempt})"
                )
            if breaker is not None and not breaker.allow():
                raise CircuitOpenError(f"circuit open for linked server {self.name!r}")
            try:
                if self.injector is not None:
                    self.injector.on_call(f"link:{self.name}:{kind}", link=self, kind=kind)
                witness = active_witness()
                if witness is None:
                    result = fn()
                else:
                    # Cross-server nesting: every lock the remote tier
                    # takes during this call sits strictly below the
                    # locks the calling tier already holds (the paper's
                    # one-directional cache -> backend flow).
                    with witness.nesting():
                        result = fn()
            except ReproError as exc:
                if not is_transient(exc):
                    raise
                if breaker is not None:
                    breaker.record_failure()
                delay = (
                    policy.next_delay(
                        attempt,
                        started,
                        self.clock.now(),
                        budget=deadline.remaining() if deadline is not None else None,
                    )
                    if policy is not None and self.clock is not None
                    else None
                )
                if delay is None:
                    raise
                if budget is not None and not budget.try_spend():
                    # Retry budget dry: retrying now would amplify the
                    # brownout; surface the transient error instead.
                    if self._metrics is not None:
                        self._metrics.counter(
                            "overload.retry_budget_exhausted", labels={"link": self.name}
                        ).inc()
                    raise
                self.retries += 1
                if self._metrics is not None:
                    self._metrics.counter(
                        "resilience.retries", labels={"link": self.name}
                    ).inc()
                self.clock.advance(delay)
                attempt += 1
                continue
            if breaker is not None:
                breaker.record_success()
            return result

    def execute_remote_sql(self, sql: str, params: Optional[Dict[str, Any]] = None) -> List[Tuple]:
        """Execute a query remotely; returns its rows.

        Used by RemoteQueryOp: the remote side re-parses and re-optimizes.
        """
        self.queries_shipped += 1
        with self._span("remote.sql"):
            result = self._invoke(
                "query",
                lambda: self.server.execute(sql, params=params, database=self.database),
            )
        return result.rows

    def execute_statement_text(
        self, sql: str, params: Optional[Dict[str, Any]] = None
    ) -> Result:
        """Execute a forwarded statement (DML / EXEC); returns full result."""
        self.statements_shipped += 1
        with self._span("remote.statement"):
            return self._invoke(
                "statement",
                lambda: self.server.execute(sql, params=params, database=self.database),
            )

    def prepare(self, sql: str) -> RemoteStatementHandle:
        """Return the (shared) prepared handle for ``sql`` on this link."""
        handle = self._handles.get(sql)
        if handle is None:
            handle = RemoteStatementHandle(self, sql)
            self._handles[sql] = handle
        return handle

    def peek_handle(self, sql: str) -> Optional[RemoteStatementHandle]:
        """The cached handle for ``sql``, if any (no allocation)."""
        return self._handles.get(sql)

    def close(self) -> None:
        """Close every prepared handle (releases the server-side halves)."""
        for handle in list(self._handles.values()):
            handle.close()
        self._handles.clear()


class LinkedServerRegistry:
    """The set of linked servers registered on one server."""

    def __init__(self, tracer=None, clock=None, metrics=None):
        self._links: Dict[str, ServerLink] = {}
        # The owning server's Tracer (None when observability is off);
        # handed to every link so remote calls get client-side spans.
        # Clock and metrics likewise flow to each link's retry policy,
        # breaker, and resilience counters.
        self.tracer = tracer
        self.clock = clock
        self.metrics = metrics

    def register(self, name: str, server, database: Optional[str] = None) -> ServerLink:
        """Register (or replace) a linked server under ``name``.

        Replacing closes the old link's prepared handles first —
        otherwise its LRU keeps the server-side halves alive with no
        client able to reach them (a handle leak on the target).
        """
        old = self._links.get(name.lower())
        if old is not None:
            old.close()
        link = ServerLink(
            name, server, database, tracer=self.tracer, clock=self.clock, metrics=self.metrics
        )
        self._links[name.lower()] = link
        return link

    def get(self, name: str) -> ServerLink:
        link = self._links.get(name.lower())
        if link is None:
            raise DistributedError(f"no linked server {name!r}")
        return link

    def names(self) -> List[str]:
        return list(self._links)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._links
