"""Differential testing: optimizer plans vs. the naive reference evaluator.

The optimizer is free to pick any plan — index seeks, hash or index-lookup
joins, aggregate rewrites, cached views, dynamic plans, full pushdown —
but its results must always equal brute-force evaluation. Hypothesis
generates structured queries over the shop schema and checks:

1. backend execution == reference evaluation;
2. cache-server execution == reference evaluation (after replication
   sync), i.e. the transparency invariant under every generated query.
"""

from collections import Counter

import pytest
from hypothesis import given, settings, HealthCheck
from hypothesis import strategies as st

from repro import MTCacheDeployment
from repro.exec.reference import evaluate_select
from repro.sql import parse

from tests.conftest import make_shop_backend

# ---------------------------------------------------------------------------
# Environment (built once; queries are read-only)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def env():
    backend = make_shop_backend(customers=80, orders=160)
    deployment = MTCacheDeployment(backend, "shop")
    cache = deployment.add_cache_server("diff_cache")
    cache.create_cached_view(
        "CREATE CACHED VIEW dv_cust AS "
        "SELECT cid, cname, segment FROM customer WHERE cid <= 60"
    )
    cache.create_cached_view(
        "CREATE CACHED VIEW dv_orders AS SELECT oid, o_cid, total FROM orders"
    )
    deployment.sync()
    return backend, cache


# ---------------------------------------------------------------------------
# Query generator
# ---------------------------------------------------------------------------

CUSTOMER_COLUMNS = ["cid", "cname", "segment"]
ORDER_COLUMNS = ["oid", "o_cid", "total", "status"]

comparisons = st.sampled_from(["=", "<", "<=", ">", ">=", "<>"])


@st.composite
def predicates(draw, alias, columns_numeric, columns_text):
    kind = draw(st.integers(0, 4))
    if kind == 0:
        column = draw(st.sampled_from(columns_numeric))
        op = draw(comparisons)
        value = draw(st.integers(1, 200))
        return f"{alias}.{column} {op} {value}"
    if kind == 1:
        column = draw(st.sampled_from(columns_numeric))
        low = draw(st.integers(1, 100))
        high = low + draw(st.integers(0, 100))
        return f"{alias}.{column} BETWEEN {low} AND {high}"
    if kind == 2:
        column = draw(st.sampled_from(columns_text))
        value = draw(st.sampled_from(["'gold'", "'base'", "'OPEN'", "'cust7'"]))
        return f"{alias}.{column} = {value}"
    if kind == 3:
        column = draw(st.sampled_from(columns_numeric))
        values = draw(st.lists(st.integers(1, 120), min_size=1, max_size=4))
        return f"{alias}.{column} IN ({', '.join(map(str, values))})"
    column = draw(st.sampled_from(columns_text))
    return f"{alias}.{column} LIKE '%{draw(st.sampled_from(['1', '5', 'gold', 'cust']))}%'"


@st.composite
def single_table_queries(draw):
    projection = draw(
        st.sampled_from(
            [
                "cid, cname",
                "cid, segment",
                "cname, segment, cid",
                "cid",
            ]
        )
    )
    where = ""
    if draw(st.booleans()):
        conjuncts = draw(
            st.lists(
                predicates("customer", ["cid"], ["cname", "segment"]),
                min_size=1,
                max_size=3,
            )
        )
        where = " WHERE " + " AND ".join(conjuncts)
    order = ""
    if draw(st.booleans()):
        order = " ORDER BY cid" + (" DESC" if draw(st.booleans()) else "")
    top = ""
    if order and draw(st.booleans()):
        top = f"TOP {draw(st.integers(1, 30))} "
    distinct = "DISTINCT " if draw(st.booleans()) and not top else ""
    return f"SELECT {top}{distinct}{projection} FROM customer{where}{order}"


@st.composite
def join_queries(draw):
    conjuncts = [
        draw(predicates("c", ["cid"], ["segment"])),
    ]
    if draw(st.booleans()):
        conjuncts.append(draw(predicates("o", ["oid", "o_cid"], ["status"])))
    where = " WHERE " + " AND ".join(conjuncts)
    order = " ORDER BY c.cid, o.oid"
    return (
        "SELECT c.cid, c.segment, o.oid, o.total FROM customer c "
        "JOIN orders o ON o.o_cid = c.cid" + where + order
    )


@st.composite
def derived_table_queries(draw):
    inner_where = ""
    if draw(st.booleans()):
        inner_where = f" WHERE cid <= {draw(st.integers(1, 90))}"
    outer_where = ""
    if draw(st.booleans()):
        op = draw(comparisons)
        outer_where = f" WHERE d.cid {op} {draw(st.integers(1, 90))}"
    aggregate = draw(st.booleans())
    projection = "COUNT(*)" if aggregate else "d.cid, d.segment"
    order = "" if aggregate else " ORDER BY d.cid"
    return (
        f"SELECT {projection} FROM "
        f"(SELECT cid, segment FROM customer{inner_where}) AS d"
        f"{outer_where}{order}"
    )


@st.composite
def aggregate_queries(draw):
    group_column = draw(st.sampled_from(["segment", "cname"]))
    aggregate = draw(
        st.sampled_from(
            ["COUNT(*)", "SUM(cid)", "MIN(cid)", "MAX(cid)", "AVG(cid)", "COUNT(DISTINCT segment)"]
        )
    )
    having = ""
    if draw(st.booleans()):
        having = f" HAVING COUNT(*) > {draw(st.integers(0, 5))}"
    where = ""
    if draw(st.booleans()):
        where = f" WHERE cid <= {draw(st.integers(1, 150))}"
    return (
        f"SELECT {group_column}, {aggregate} AS agg FROM customer{where} "
        f"GROUP BY {group_column}{having} ORDER BY {group_column}"
    )


def normalize(rows, ordered):
    if ordered:
        return list(rows)
    return Counter(rows)


def check(env, sql):
    backend, cache = env
    statement = parse(sql)
    ordered = bool(statement.order_by)
    _, expected = evaluate_select(backend.database("shop"), statement)
    backend_rows = backend.execute(sql, database="shop").rows
    cache_rows = cache.execute(sql).rows
    assert normalize(backend_rows, ordered) == normalize(expected, ordered), sql
    assert normalize(cache_rows, ordered) == normalize(expected, ordered), sql


SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@SETTINGS
@given(sql=single_table_queries())
def test_property_single_table(env, sql):
    check(env, sql)


@SETTINGS
@given(sql=join_queries())
def test_property_joins(env, sql):
    check(env, sql)


@SETTINGS
@given(sql=aggregate_queries())
def test_property_aggregates(env, sql):
    check(env, sql)


@SETTINGS
@given(sql=derived_table_queries())
def test_property_derived_tables(env, sql):
    check(env, sql)


@SETTINGS
@given(value=st.one_of(st.none(), st.integers(-10, 250)))
def test_property_dynamic_plan_parameter_sweep(env, value):
    """Every parameter value must produce identical results on the cache
    (which uses a dynamic plan over dv_cust) and the backend."""
    backend, cache = env
    sql = "SELECT cid, cname, segment FROM customer WHERE cid <= @v ORDER BY cid"
    backend_rows = backend.execute(sql, params={"v": value}, database="shop").rows
    cache_rows = cache.execute(sql, params={"v": value}).rows
    assert cache_rows == backend_rows


FIXED_CASES = [
    # Hand-picked regressions / tricky shapes.
    "SELECT COUNT(*) FROM customer WHERE cid IN (SELECT o_cid FROM orders WHERE total > 100)",
    "SELECT c.segment, COUNT(*) AS n FROM customer c GROUP BY c.segment ORDER BY n DESC, c.segment",
    "SELECT TOP 7 cid FROM customer WHERE segment = 'gold' ORDER BY cid DESC",
    "SELECT DISTINCT segment FROM customer WHERE cid BETWEEN 3 AND 70",
    "SELECT cname FROM customer WHERE cname LIKE 'cust1_'",
    "SELECT o.status, SUM(o.total) AS t FROM orders o GROUP BY o.status HAVING SUM(o.total) > 10 ORDER BY o.status",
    "SELECT c.cid, o.total FROM customer c LEFT JOIN orders o ON c.cid = o.oid ORDER BY c.cid, o.total",
    "SELECT COUNT(*) FROM (SELECT cid FROM customer WHERE segment = 'gold') AS g",
    # Outer predicate over a derived table (regression: the planner once
    # dropped conjuncts pushed onto derived leaves).
    "SELECT COUNT(*) FROM (SELECT cid FROM customer WHERE segment = 'gold') AS g WHERE g.cid <= 30",
    "SELECT d.cid FROM (SELECT cid, segment FROM customer) AS d WHERE d.segment = 'gold' AND d.cid <= 20 ORDER BY d.cid",
    "SELECT CASE WHEN cid < 10 THEN 'low' ELSE 'high' END AS bucket, COUNT(*) AS n "
    "FROM customer GROUP BY CASE WHEN cid < 10 THEN 'low' ELSE 'high' END ORDER BY bucket",
    "SELECT MAX(cid) FROM customer",
    "SELECT MIN(total), MAX(total), COUNT(*) FROM orders WHERE status = 'OPEN'",
]


@pytest.mark.parametrize("sql", FIXED_CASES)
def test_fixed_differential_cases(env, sql):
    check(env, sql)
