"""The deterministic fault injector.

Design rules (enforced by ``repro.analysis.selflint``):

* **No wall clock.** Triggers are call counts at instrumented sites and
  *virtual* timestamps fed in by the component that owns the
  :class:`~repro.common.clock.SimulatedClock` (``MTCacheDeployment.tick``
  calls :meth:`FaultInjector.tick`). Two runs with the same seed and the
  same schedule inject the same faults at the same points.
* **True no-op when idle.** Instrumented call sites guard with
  ``if injector is not None`` and :meth:`on_call` returns before touching
  the RNG when no rule matches, so an attached injector with an empty
  schedule perturbs nothing — not even the random stream.
* **Faults fire before effects.** Site hooks run before the guarded
  operation executes (a wounded link raises before shipping SQL, a
  wounded subscription raises before applying a command), which is what
  makes retry and re-delivery safe for non-idempotent work.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import LinkUnavailableError, ReplicationError


class FaultRule:
    """One fault armed at one instrumented site.

    ``site`` is an exact site string (``"link:backend:statement"``) or a
    prefix pattern ending in ``*`` (``"link:backend:*"``). The rule lets
    ``skip`` matching calls through untouched, then fires on the next
    ``count`` calls (``count=None`` means every call until removed).
    ``chance`` below 1.0 makes firing probabilistic via the injector's
    seeded RNG; at the default 1.0 the RNG is never consulted.
    """

    __slots__ = ("site", "action", "skip", "count", "latency", "chance", "seen", "fired")

    def __init__(
        self,
        site: str,
        action: Any = "unavailable",
        skip: int = 0,
        count: Optional[int] = 1,
        latency: float = 0.0,
        chance: float = 1.0,
    ):
        self.site = site
        self.action = action
        self.skip = skip
        self.count = count
        self.latency = latency
        self.chance = chance
        self.seen = 0
        self.fired = 0

    def matches(self, site: str) -> bool:
        if self.site.endswith("*"):
            return site.startswith(self.site[:-1])
        return site == self.site

    @property
    def exhausted(self) -> bool:
        return self.count is not None and self.fired >= self.count


class FaultInjector:
    """Seeded, virtual-time fault injector for the distributed stack.

    Components expose a nullable ``injector`` attribute and call
    :meth:`on_call` at their failure points; the injector decides — from
    armed :class:`FaultRule`\\ s — whether to raise, delay, or do nothing.
    Structural faults (crash a server, stall an agent, abort a 2PC
    participant) are methods invoked directly or via the virtual-time
    chaos schedule (:meth:`at` + :meth:`tick`).
    """

    def __init__(self, clock: Any, seed: int = 0):
        self.clock = clock
        self.rng = random.Random(seed)
        self.rules: List[FaultRule] = []
        self.enabled = True
        self.injected = 0
        self.log: List[Tuple[float, str, str]] = []
        self._schedule: List[Tuple[float, int, Callable[..., Any], tuple, dict]] = []
        self._seq = itertools.count()

    # ------------------------------------------------------------------
    # Rules and the instrumented-site hook
    # ------------------------------------------------------------------
    def add_rule(self, rule: FaultRule) -> FaultRule:
        self.rules.append(rule)
        return rule

    def rule(self, site: str, **kwargs: Any) -> FaultRule:
        """Arm and return a new :class:`FaultRule` for ``site``."""
        return self.add_rule(FaultRule(site, **kwargs))

    def clear_rules(self) -> None:
        self.rules = []

    def on_call(self, site: str, **context: Any) -> None:
        """Hook invoked by instrumented call sites before they act.

        Hot path: returns immediately when disabled or no rules are
        armed, without consulting the RNG or the clock.
        """
        if not self.enabled or not self.rules:
            return
        for rule in self.rules:
            if rule.exhausted or not rule.matches(site):
                continue
            rule.seen += 1
            if rule.seen <= rule.skip:
                continue
            if rule.chance < 1.0 and self.rng.random() >= rule.chance:
                continue
            rule.fired += 1
            self._fire(rule, site, context)

    def _fire(self, rule: FaultRule, site: str, context: dict) -> None:
        self.injected += 1
        action = rule.action
        label = action if isinstance(action, str) else getattr(action, "__name__", "callable")
        self.log.append((self.clock.now(), site, label))
        if callable(action):
            action(self, site, context)
            return
        if rule.latency > 0.0:
            # Injected latency is virtual: the shared clock advances, so
            # downstream timestamps (lag gauges, deadlines) see the delay.
            self.clock.advance(rule.latency)
        if action == "latency":
            return
        if action == "unavailable":
            raise LinkUnavailableError(f"injected fault: {site} unavailable")
        if action == "apply-error":
            raise ReplicationError(f"injected fault: apply failed at {site}")
        raise ValueError(f"unknown fault action {action!r}")

    # ------------------------------------------------------------------
    # Link wounding
    # ------------------------------------------------------------------
    def wound_link(
        self,
        link: Any,
        kind: str = "*",
        action: Any = "unavailable",
        skip: int = 0,
        count: Optional[int] = 1,
        latency: float = 0.0,
        chance: float = 1.0,
    ) -> FaultRule:
        """Arm a fault on one of a link's call paths.

        ``kind`` selects the path: ``"query"`` (``execute_remote_sql``),
        ``"statement"`` (``execute_statement_text``), ``"prepared"``
        (prepared execution), or ``"*"`` for all of them. ``skip=n,
        count=1`` fails exactly the (n+1)-th call.
        """
        link.injector = self
        return self.rule(
            f"link:{link.name}:{kind}",
            action=action,
            skip=skip,
            count=count,
            latency=latency,
            chance=chance,
        )

    def heal_link(self, link: Any) -> None:
        """Disarm every rule targeting ``link`` (the wound heals)."""
        prefix = f"link:{link.name}:"
        self.rules = [r for r in self.rules if not r.site.startswith(prefix)]

    def drop_prepared_handle(self, link: Any, sql: str) -> bool:
        """Close a remote prepared handle out from under ``link``.

        Models the target server discarding a prepared statement (memory
        pressure, failover) while the client still holds the handle id.
        The next prepared execution raises ``PreparedStatementError`` and
        the link transparently re-prepares. Returns True if a live handle
        was dropped.
        """
        handle = link.peek_handle(sql)
        if handle is None or handle.handle_id is None:
            return False
        self.log.append((self.clock.now(), f"link:{link.name}:prepared", "drop_handle"))
        link.server.close_prepared(handle.handle_id)
        self.injected += 1
        return True

    # ------------------------------------------------------------------
    # Server crash / restart
    # ------------------------------------------------------------------
    def crash_server(self, server: Any) -> None:
        self.log.append((self.clock.now(), f"server:{server.name}", "crash"))
        self.injected += 1
        server.crash()

    def restart_server(self, server: Any) -> None:
        self.log.append((self.clock.now(), f"server:{server.name}", "restart"))
        server.restart()

    def crash_cache(self, cache: Any) -> None:
        """Crash a cache server and stall its distribution agents.

        The agents' subscriber is gone, so they stop applying (watermark
        frozen, lag gauges climb) until :meth:`restart_cache`.
        """
        self.crash_server(cache.server)
        for agent in cache.agents.values():
            agent.stall()

    def restart_cache(self, cache: Any) -> None:
        """Restart a crashed cache; stalled agents resume from watermark."""
        self.restart_server(cache.server)
        for agent in cache.agents.values():
            agent.resume()

    # ------------------------------------------------------------------
    # Distribution agents
    # ------------------------------------------------------------------
    def stall_agent(self, agent: Any) -> None:
        self.log.append((self.clock.now(), f"agent:{agent.subscription.name}", "stall"))
        self.injected += 1
        agent.stall()

    def resume_agent(self, agent: Any) -> None:
        self.log.append((self.clock.now(), f"agent:{agent.subscription.name}", "resume"))
        agent.resume()

    def kill_agent(self, agent: Any) -> None:
        """Remove an agent from its distributor entirely (process death).

        The subscription object — and crucially its ``last_sequence``
        watermark — survives; :meth:`restart_agent` builds a fresh agent
        around it, which resumes from the watermark.
        """
        self.log.append((self.clock.now(), f"agent:{agent.subscription.name}", "kill"))
        self.injected += 1
        if agent in agent.distributor.agents:
            agent.distributor.agents.remove(agent)

    def restart_agent(self, agent: Any) -> Any:
        """Replace a killed agent with a fresh one on the same subscription."""
        from repro.replication.agent import DistributionAgent

        self.log.append((self.clock.now(), f"agent:{agent.subscription.name}", "restart"))
        replacement = DistributionAgent(
            agent.subscription,
            agent.distributor,
            poll_interval=agent.poll_interval,
            mode=agent.mode,
        )
        agent.distributor.register_agent(replacement)
        return replacement

    def wound_subscription(
        self, subscription: Any, skip: int = 0, count: Optional[int] = 1
    ) -> FaultRule:
        """Make ``subscription.apply`` fail mid-batch.

        ``skip`` counts *commands* (not transactions) let through first,
        so the fault can land in the middle of a multi-command
        transaction — the crash-mid-batch recovery case.
        """
        subscription.injector = self
        return self.rule(
            f"subscription:{subscription.name}:apply",
            action="apply-error",
            skip=skip,
            count=count,
        )

    # ------------------------------------------------------------------
    # Two-phase commit
    # ------------------------------------------------------------------
    def abort_participant_between_phases(self, coordinator: Any, index: int = 0) -> None:
        """Abort one participant after prepare succeeds, before commit.

        Installs a one-shot hook on the coordinator that rolls the
        participant's local transaction back in the window between the
        prepare and commit phases — the classic in-doubt scenario. The
        coordinator's commit phase then fails on that participant.
        """

        def abort(coordinator: Any) -> None:
            database, transaction = coordinator.participants[index]
            self.log.append(
                (self.clock.now(), f"dtc:{database.name}", "abort_between_phases")
            )
            self.injected += 1
            if transaction.active:
                database.transactions.rollback(transaction)

        coordinator.on_before_commit_phase = abort

    # ------------------------------------------------------------------
    # Virtual-time chaos schedule
    # ------------------------------------------------------------------
    def at(self, when: float, action: Any, *args: Any, **kwargs: Any) -> None:
        """Schedule ``action`` to run at virtual time ``when``.

        ``action`` is a callable or the name of an injector method
        (``"crash_cache"``). Fired by :meth:`tick`, which the deployment
        calls as its clock advances; ties break in insertion order.
        """
        if isinstance(action, str):
            action = getattr(self, action)
        heapq.heappush(self._schedule, (when, next(self._seq), action, args, kwargs))

    def tick(self, now: float) -> int:
        """Fire every scheduled action due at or before ``now``."""
        fired = 0
        while self._schedule and self._schedule[0][0] <= now:
            _, _, action, args, kwargs = heapq.heappop(self._schedule)
            action(*args, **kwargs)
            fired += 1
        return fired

    @property
    def pending(self) -> int:
        return len(self._schedule)
