"""A small bounded LRU cache with hit/miss/eviction accounting.

Shared by the statement fast path: the server's SQL-text parse cache,
the plan cache, and the linked-server prepared-handle caches all need
the same thing — a dict with an eviction policy and counters the
benchmarks can read. Derived artifacts (parse trees, plans, handles)
are cheap to rebuild, so least-recently-used eviction is safe: an
evicted entry just pays one extra miss.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Iterator, Optional

from repro.common.locks import rmutex


@dataclass
class CacheStats:
    """Cumulative counters for one cache (survive ``clear()``)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }


class LRUCache:
    """Bounded mapping with least-recently-used eviction.

    ``get`` counts a hit or miss and refreshes recency; ``peek`` does
    neither (for tests and introspection). Setting an existing key
    refreshes recency without counting anything.

    Every operation runs under one internal reentrant mutex, so the
    parse/plan/prepared-handle caches can be shared by concurrent worker
    threads without external locking. The mutex is reentrant because
    ``on_evict`` callbacks (e.g. closing a remote prepared handle) may
    touch the cache again.
    """

    def __init__(self, capacity: int = 512, on_evict: Optional[Any] = None):
        if capacity < 1:
            raise ValueError(f"LRU capacity must be >= 1, not {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()
        # Called with the evicted value (capacity evictions only, not
        # invalidations) — e.g. closing a remote prepared handle.
        self.on_evict = on_evict
        self._entries: "OrderedDict[Any, Any]" = OrderedDict()
        self._lock = rmutex()

    def get(self, key: Any, default: Any = None, valid: Optional[Any] = None) -> Any:
        """Look up ``key``; optionally validate the entry before counting.

        ``valid`` is a predicate on the stored value (e.g. a schema-version
        check). A present-but-invalid entry is dropped and counted as an
        invalidation plus a miss — never a hit.
        """
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.stats.misses += 1
                return default
            if valid is not None and not valid(value):
                del self._entries[key]
                self.stats.invalidations += 1
                self.stats.misses += 1
                return default
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value

    def peek(self, key: Any, default: Any = None) -> Any:
        with self._lock:
            return self._entries.get(key, default)

    def __setitem__(self, key: Any, value: Any) -> None:
        with self._lock:
            if key in self._entries:
                self._entries[key] = value
                self._entries.move_to_end(key)
                return
            if len(self._entries) >= self.capacity:
                _, evicted = self._entries.popitem(last=False)
                self.stats.evictions += 1
                if self.on_evict is not None:
                    self.on_evict(evicted)
            self._entries[key] = value

    def pop(self, key: Any, default: Any = None) -> Any:
        with self._lock:
            return self._entries.pop(key, default)

    def invalidate(self, key: Any) -> bool:
        """Drop one entry, counting it as an invalidation."""
        with self._lock:
            if self._entries.pop(key, _MISSING) is _MISSING:
                return False
            self.stats.invalidations += 1
            return True

    def clear(self) -> None:
        with self._lock:
            self.stats.invalidations += len(self._entries)
            self._entries.clear()

    def __contains__(self, key: Any) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __iter__(self) -> Iterator[Any]:
        with self._lock:
            return iter(list(self._entries))

    def keys(self):
        with self._lock:
            return list(self._entries.keys())

    def values(self):
        with self._lock:
            return list(self._entries.values())

    def items(self):
        with self._lock:
            return list(self._entries.items())

    def __repr__(self) -> str:
        return (
            f"<LRUCache {len(self._entries)}/{self.capacity} "
            f"hits={self.stats.hits} misses={self.stats.misses} "
            f"evictions={self.stats.evictions}>"
        )


_MISSING = object()
