"""Metrics registry: counters, gauges, histograms, the work facade."""

import threading

from repro.obs.metrics import (
    Counter,
    CounterGroupView,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
)


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_reset(self):
        counter = Counter("c")
        counter.inc(3)
        counter.reset()
        assert counter.value == 0


class TestGauge:
    def test_set_add(self):
        gauge = Gauge("g")
        gauge.set(2.5)
        gauge.add(-1.0)
        assert gauge.value == 1.5


class TestHistogram:
    def test_bucketing(self):
        histogram = Histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 0.7, 5.0, 100.0):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["count"] == 4
        assert snap["buckets"]["1.0"] == 2
        assert snap["buckets"]["10.0"] == 1
        assert snap["buckets"]["+Inf"] == 1
        assert snap["sum"] == 106.2

    def test_mean_and_reset(self):
        histogram = Histogram("h", buckets=(1.0,))
        histogram.observe(2.0)
        histogram.observe(4.0)
        assert histogram.mean == 3.0
        histogram.reset()
        assert histogram.count == 0
        assert histogram.mean == 0.0


class TestRegistry:
    def test_get_or_create_identity(self):
        registry = MetricsRegistry("test")
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_labels_distinguish_metrics(self):
        registry = MetricsRegistry("test")
        plain = registry.counter("hits")
        labeled = registry.counter("hits", labels={"table": "customer"})
        assert plain is not labeled
        labeled.inc()
        assert plain.value == 0
        snap = registry.snapshot()
        assert snap["counters"]["hits{table=customer}"] == 1

    def test_label_order_is_canonical(self):
        registry = MetricsRegistry("test")
        one = registry.counter("m", labels={"a": 1, "b": 2})
        two = registry.counter("m", labels={"b": 2, "a": 1})
        assert one is two

    def test_snapshot_shape(self):
        registry = MetricsRegistry("srv")
        registry.counter("engine.statements").inc(7)
        registry.gauge("replication.lag_seconds").set(0.5)
        registry.histogram("engine.seconds", buckets=(1.0,)).observe(0.1)
        snap = registry.snapshot()
        assert snap["namespace"] == "srv"
        assert snap["counters"]["engine.statements"] == 7
        assert snap["gauges"]["replication.lag_seconds"] == 0.5
        assert snap["histograms"]["engine.seconds"]["count"] == 1

    def test_reset_with_prefix(self):
        registry = MetricsRegistry("test")
        registry.counter("engine.a").inc()
        registry.counter("optimizer.b").inc()
        registry.reset(prefix="engine.")
        assert registry.counter("engine.a").value == 0
        assert registry.counter("optimizer.b").value == 1

    def test_global_registry_is_shared(self):
        assert global_registry() is global_registry()


class FakeWork:
    def __init__(self, **values):
        self.__dict__.update(values)


class TestCounterGroupView:
    def test_attribute_reads_and_writes(self):
        registry = MetricsRegistry("test")
        view = CounterGroupView(registry, "work", ("rows", "seeks"))
        view.rows = 5
        view.rows += 2
        assert view.rows == 7
        assert registry.snapshot()["counters"]["work.rows"] == 7

    def test_merge_adds_nonzero_fields(self):
        registry = MetricsRegistry("test")
        view = CounterGroupView(registry, "work", ("rows", "seeks"))
        view.merge(FakeWork(rows=3, seeks=0))
        view.merge(FakeWork(rows=2, seeks=1))
        assert view.snapshot() == {"rows": 5, "seeks": 1}

    def test_inc(self):
        registry = MetricsRegistry("test")
        view = CounterGroupView(registry, "work", ("rows",))
        view.inc("rows")
        view.inc("rows", 4)
        assert view.rows == 5

    def test_registry_snapshot_flushes_pending_deltas(self):
        registry = MetricsRegistry("test")
        view = CounterGroupView(registry, "work", ("rows",))
        view.inc("rows", 9)
        # No facade read in between: the registry must flush on its own.
        assert registry.snapshot()["counters"]["work.rows"] == 9

    def test_unknown_field_raises(self):
        registry = MetricsRegistry("test")
        view = CounterGroupView(registry, "work", ("rows",))
        try:
            view.bogus = 1
        except AttributeError:
            pass
        else:
            raise AssertionError("expected AttributeError")

    def test_reset(self):
        registry = MetricsRegistry("test")
        view = CounterGroupView(registry, "work", ("rows",))
        view.inc("rows", 3)
        view.reset()
        assert view.rows == 0
        assert registry.snapshot()["counters"]["work.rows"] == 0


class TestThreadSafety:
    def test_concurrent_increments_are_not_lost(self):
        registry = MetricsRegistry("test")
        counter = registry.counter("c")
        histogram = registry.histogram("h", buckets=(0.5,))
        view = CounterGroupView(registry, "work", ("rows",))
        threads = 8
        per_thread = 10_000

        def worker():
            for _ in range(per_thread):
                counter.inc()
                view.inc("rows")
            histogram.observe(0.1)

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert counter.value == threads * per_thread
        assert view.rows == threads * per_thread
        assert histogram.count == threads
