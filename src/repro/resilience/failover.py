"""Transparent cache→backend failover at the application tier.

The paper's availability claim is that a mid-tier cache is an
*optimization*, never a single point of failure: every cached table and
view also exists on the backend, so any statement a cache can run, the
backend can run too. :class:`FailoverRouter` operationalizes that — it
wraps the application's connection (duck-compatible with
``OdbcConnection``: ``execute(sql, params=...)``) and routes each
statement to the primary (a cache) while healthy, to the fallback (the
backend) while not.

State machine::

    NORMAL --(transient failure from primary)--> FAILED_OVER
    FAILED_OVER --(failback_threshold consecutive healthy probes,
                   one per probe_interval)--> NORMAL

Failback has hysteresis: a single passing probe is not proof of
recovery (a flapping link passes one probe per flap and would bounce
traffic between targets on every cycle), so the router requires
``failback_threshold`` *consecutive* healthy probes — each a full
``probe_interval`` apart — before routing traffic back. One unhealthy
probe resets the streak.

Failures that trigger failover are exactly the reroutable ones: the
primary server is down (``ServerUnavailableError``), its link to the
backend cannot be reached even after retries (``LinkUnavailableError``),
or the link's breaker is open (``CircuitOpenError``). All three are
raised *before* any statement effects, so re-running the statement on
the fallback executes it exactly once. Deterministic errors (constraint
violations, parse errors) propagate to the caller unchanged from
whichever target ran the statement.

Probing is virtual-time based: while failed over, at most one health
check per ``probe_interval``; a passing check routes traffic back (where
the link breaker's half-open machinery takes over if the recovery was
illusory).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.errors import CircuitOpenError, LinkUnavailableError, ServerUnavailableError

_REROUTE_ERRORS = (LinkUnavailableError, ServerUnavailableError, CircuitOpenError)


class FailoverRouter:
    NORMAL = "normal"
    FAILED_OVER = "failed_over"

    def __init__(
        self,
        primary: Any,
        fallback: Any,
        clock: Any,
        primary_database: Optional[str] = None,
        fallback_database: Optional[str] = None,
        probe_interval: float = 1.0,
        failback_threshold: int = 2,
        principal: str = "dbo",
        registry: Optional[Any] = None,
        health: Optional[Callable[[], bool]] = None,
    ):
        from repro.client.connection import Connection

        self.primary = primary
        self.fallback = fallback
        self.clock = clock
        self.probe_interval = probe_interval
        if failback_threshold < 1:
            raise ValueError(f"failback_threshold must be >= 1, not {failback_threshold}")
        self.failback_threshold = failback_threshold
        self._healthy_probes = 0
        self.health = health if health is not None else self._default_health
        # Each target gets its own client Connection (and therefore its
        # own session), so principal and session variables survive a
        # mid-conversation reroute on both sides. Connections also adapt
        # to the target's execute signature (CacheServer facades supply
        # their own shadow database).
        self._connections: Dict[int, Connection] = {
            id(primary): Connection(
                primary, database=primary_database, principal=principal
            ),
            id(fallback): Connection(
                fallback, database=fallback_database, principal=principal
            ),
        }
        # A connection over the router itself, so applications written
        # against the DBAPI cursor surface can drive a router directly.
        self._facade = Connection(self)
        self.state = self.NORMAL
        self.failovers = 0
        self.failbacks = 0
        self.rerouted_statements = 0
        self._next_probe = 0.0
        self._registry = registry
        self._gauge = None
        if registry is not None:
            self._gauge = registry.gauge("resilience.failover_state")
            self._gauge.set(0.0)

    # ------------------------------------------------------------------
    @property
    def server(self) -> Any:
        """The engine server behind the primary.

        The TPC-W driver binds its metrics registry and tracer through
        ``connection.server``; anchoring that to the primary keeps one
        coherent observability stream across failovers.
        """
        inner = getattr(self.primary, "server", None)
        return inner if inner is not None else self.primary

    def _default_health(self) -> bool:
        """Primary is healthy when its server is up and no link breaker
        is open (an open-but-timed-out breaker counts as healthy: the
        half-open probe happens on the first routed call)."""
        server = self.server
        if not getattr(server, "available", True):
            return False
        links = getattr(server, "linked_servers", None)
        if links is not None:
            for name in links.names():
                breaker = getattr(links.get(name), "breaker", None)
                if breaker is not None and not breaker.ready():
                    return False
        return True

    # ------------------------------------------------------------------
    def _run(self, target: Any, sql: str, params: Optional[Dict[str, Any]]) -> Any:
        return self._connections[id(target)]._raw_execute(sql, params)

    def execute(self, sql: str, params: Optional[Dict[str, Any]] = None) -> Any:
        from repro.resilience.deadline import check_deadline

        check_deadline("failover routing")
        if self.state == self.FAILED_OVER:
            now = self.clock.now()
            if now >= self._next_probe:
                if self.health():
                    self._healthy_probes += 1
                    if self._healthy_probes >= self.failback_threshold:
                        self._fail_back()
                else:
                    self._healthy_probes = 0
                self._next_probe = now + self.probe_interval
        if self.state == self.NORMAL:
            try:
                return self._run(self.primary, sql, params)
            except _REROUTE_ERRORS:
                self._fail_over()
        self.rerouted_statements += 1
        return self._run(self.fallback, sql, params)

    def cursor(self):
        """A DBAPI-style cursor; each execute still reroutes as above."""
        return self._facade.cursor()

    # ------------------------------------------------------------------
    def _fail_over(self) -> None:
        self.state = self.FAILED_OVER
        self.failovers += 1
        self._healthy_probes = 0
        self._next_probe = self.clock.now() + self.probe_interval
        if self._registry is not None:
            self._registry.counter("resilience.failovers").inc()
        if self._gauge is not None:
            self._gauge.set(1.0)

    def _fail_back(self) -> None:
        self.state = self.NORMAL
        self.failbacks += 1
        self._healthy_probes = 0
        if self._registry is not None:
            self._registry.counter("resilience.failbacks").inc()
        if self._gauge is not None:
            self._gauge.set(0.0)

    def __repr__(self) -> str:
        return f"<FailoverRouter {self.state} failovers={self.failovers}>"
