"""A naive reference evaluator for SELECT statements.

Executes a SELECT AST by brute force — full scans, nested-loop joins, no
indexes, no views-as-data, no optimizer — directly against a database's
storage. It exists as a *test oracle*: the optimizer may pick any plan it
likes (index seeks, hash joins, dynamic plans, remote pushdown), but its
results must match this evaluator row-for-row (as multisets; ordered when
the query has ORDER BY).

Supported surface mirrors the planner's: inner/left/cross joins, WHERE,
GROUP BY / HAVING, aggregates (with DISTINCT), ORDER BY (including select
aliases), TOP, DISTINCT, derived tables, uncorrelated IN/EXISTS/scalar
subqueries, parameters.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.common.schema import Column, Schema
from repro.common.types import FLOAT
from repro.errors import ExecutionError
from repro.exec.context import ExecutionContext
from repro.exec.expressions import ExpressionCompiler
from repro.sql import ast


def evaluate_select(
    database,
    select: ast.Select,
    params: Optional[Dict[str, Any]] = None,
) -> Tuple[Schema, List[Tuple]]:
    """Evaluate a SELECT naively; returns (schema, rows)."""
    evaluator = _ReferenceEvaluator(database, params or {})
    return evaluator.select(select)


class _ReferenceEvaluator:
    def __init__(self, database, params: Dict[str, Any]):
        self.database = database
        self.ctx = ExecutionContext(database=database, params=params)
        self.ctx.subquery_executor = self._run_subquery

    def _run_subquery(self, select: ast.Select, params: Dict[str, Any]) -> List[Tuple]:
        _, rows = _ReferenceEvaluator(self.database, params).select(select)
        return rows

    # -- FROM ------------------------------------------------------------------

    def table_ref(self, ref: ast.TableRef) -> Tuple[Schema, List[Tuple]]:
        if isinstance(ref, ast.TableName):
            return self._table_name(ref)
        if isinstance(ref, ast.DerivedTable):
            schema, rows = self.select(ref.select)
            return schema.with_qualifier(ref.alias), rows
        assert isinstance(ref, ast.JoinRef)
        left_schema, left_rows = self.table_ref(ref.left)
        right_schema, right_rows = self.table_ref(ref.right)
        combined = left_schema.concat(right_schema)
        condition = (
            ExpressionCompiler(combined).compile(ref.condition)
            if ref.condition is not None
            else None
        )
        output: List[Tuple] = []
        null_right = (None,) * len(right_schema)
        for left_row in left_rows:
            matched = False
            for right_row in right_rows:
                row = left_row + right_row
                if condition is None or condition(row, self.ctx) is True:
                    matched = True
                    output.append(row)
            if ref.kind == "LEFT" and not matched:
                output.append(left_row + null_right)
        return combined, output

    def _table_name(self, ref: ast.TableName) -> Tuple[Schema, List[Tuple]]:
        name = ref.object_name
        view = self.database.catalog.maybe_view(name)
        if view is not None and not view.materialized:
            schema, rows = self.select(view.select)
            return schema.with_qualifier(ref.binding_name), rows
        if view is not None:  # materialized: read backing storage
            storage = self.database.storage_table(name)
            schema = view.schema.with_qualifier(ref.binding_name)
            return schema, [row for _, row in sorted(storage.rows.items())]
        table = self.database.catalog.get_table(name)
        storage = self.database.storage_table(name)
        schema = table.schema.with_qualifier(ref.binding_name)
        return schema, [row for _, row in sorted(storage.rows.items())]

    # -- SELECT ------------------------------------------------------------------

    def select(self, select: ast.Select) -> Tuple[Schema, List[Tuple]]:
        if select.from_clause is None:
            compiler = ExpressionCompiler(Schema(()))
            row = tuple(
                compiler.compile(item.expression)((), self.ctx)
                for item in select.items
            )
            schema = Schema(
                Column(self._name_of(item, position), FLOAT)
                for position, item in enumerate(select.items)
            )
            return schema, [row]

        schema, rows = self.table_ref(select.from_clause)

        if select.where is not None:
            predicate = ExpressionCompiler(schema).compile(select.where)
            rows = [row for row in rows if predicate(row, self.ctx) is True]

        items = self._expand_stars(select.items, schema)

        has_aggregates = any(self._contains_aggregate(item.expression) for item in items)
        if select.having is not None:
            has_aggregates = has_aggregates or self._contains_aggregate(select.having)

        if select.group_by or has_aggregates:
            schema, rows, items, order_exprs = self._aggregate(
                select, schema, rows, items
            )
        else:
            order_exprs = None

        # ORDER BY (may reference select aliases).
        if select.order_by:
            alias_map = {
                item.alias.lower(): item.expression for item in items if item.alias
            }
            compiler = ExpressionCompiler(schema)
            keyed = []
            for entry in select.order_by:
                expression = entry.expression
                if (
                    isinstance(expression, ast.ColumnRef)
                    and expression.qualifier is None
                    and expression.name.lower() in alias_map
                ):
                    expression = alias_map[expression.name.lower()]
                if order_exprs is not None:
                    expression = order_exprs.get(expression, expression)
                keyed.append((compiler.compile(expression), entry.descending))
            # NULL is the lowest value: first ascending, last descending.
            for maker, descending in reversed(keyed):
                def sort_key(row, maker=maker):
                    value = maker(row, self.ctx)
                    if value is None:
                        return (0, 0)
                    return (1, value)

                rows.sort(key=sort_key, reverse=descending)

        # Projection.
        compiler = ExpressionCompiler(schema)
        makers = []
        for item in items:
            expression = item.expression
            if order_exprs is not None:
                expression = order_exprs.get(expression, expression)
            makers.append(compiler.compile(expression))
        projected = [
            tuple(maker(row, self.ctx) for maker in makers) for row in rows
        ]
        out_schema = Schema(
            Column(self._name_of(item, position), FLOAT)
            for position, item in enumerate(items)
        )

        if select.distinct:
            seen = set()
            unique = []
            for row in projected:
                if row not in seen:
                    seen.add(row)
                    unique.append(row)
            projected = unique

        if select.top is not None:
            limit_maker = ExpressionCompiler(Schema(())).compile(select.top)
            limit = limit_maker((), self.ctx)
            projected = projected[: int(limit)]

        return out_schema, projected

    # -- aggregation ---------------------------------------------------------------

    def _aggregate(self, select, schema, rows, items):
        """Group rows; returns (new_schema, group_rows, items, rewrite_map).

        The new schema holds the group-by expressions followed by every
        aggregate; ``rewrite_map`` maps original expressions to column
        references into it.
        """
        compiler = ExpressionCompiler(schema)
        group_makers = [compiler.compile(expr) for expr in select.group_by]

        aggregates: List[ast.FuncCall] = []
        scan_targets = [item.expression for item in items]
        if select.having is not None:
            scan_targets.append(select.having)
        scan_targets.extend(entry.expression for entry in select.order_by)
        for expression in scan_targets:
            for node in ast.walk_expression(expression):
                if isinstance(node, ast.FuncCall) and node.is_aggregate and node not in aggregates:
                    aggregates.append(node)

        groups: Dict[Tuple, List[Tuple]] = {}
        order: List[Tuple] = []
        for row in rows:
            key = tuple(maker(row, self.ctx) for maker in group_makers)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)
        if not groups and not select.group_by:
            groups[()] = []
            order.append(())

        def compute(call: ast.FuncCall, members: List[Tuple]) -> Any:
            if call.args and not isinstance(call.args[0], ast.Star):
                arg = compiler.compile(call.args[0])
                values = [arg(row, self.ctx) for row in members]
                values = [value for value in values if value is not None]
                if call.distinct:
                    deduped = []
                    for value in values:
                        if value not in deduped:
                            deduped.append(value)
                    values = deduped
            else:
                values = members  # COUNT(*)
            name = call.name
            if name == "COUNT":
                return len(values)
            if not values:
                return None
            if name == "SUM":
                total = values[0]
                for value in values[1:]:
                    total += value
                return total
            if name == "AVG":
                total = values[0]
                for value in values[1:]:
                    total += value
                return total / len(values)
            if name == "MIN":
                return min(values)
            if name == "MAX":
                return max(values)
            raise ExecutionError(f"unknown aggregate {name}")

        columns = []
        rewrite: Dict[ast.Expression, ast.ColumnRef] = {}
        for position, expr in enumerate(select.group_by):
            if isinstance(expr, ast.ColumnRef):
                columns.append(
                    Column(expr.name, FLOAT, qualifier=expr.qualifier)
                )
                rewrite[expr] = expr
            else:
                columns.append(Column(f"_g{position}", FLOAT))
                rewrite[expr] = ast.ColumnRef(f"_g{position}")
        for position, call in enumerate(aggregates):
            columns.append(Column(f"_ag{position}", FLOAT))
            rewrite[call] = ast.ColumnRef(f"_ag{position}")

        group_schema = Schema(columns)
        group_rows = []
        for key in order:
            members = groups[key]
            group_rows.append(
                key + tuple(compute(call, members) for call in aggregates)
            )

        from repro.optimizer.binder import substitute

        if select.having is not None:
            having = substitute(select.having, rewrite)
            predicate = ExpressionCompiler(group_schema).compile(having)
            group_rows = [row for row in group_rows if predicate(row, self.ctx) is True]

        new_items = [
            ast.SelectItem(substitute(item.expression, rewrite), item.alias, item.target_parameter)
            for item in items
        ]
        order_rewrites = {
            entry.expression: substitute(entry.expression, rewrite)
            for entry in select.order_by
        }
        return group_schema, group_rows, new_items, order_rewrites

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _contains_aggregate(expression: ast.Expression) -> bool:
        return any(
            isinstance(node, ast.FuncCall) and node.is_aggregate
            for node in ast.walk_expression(expression)
        )

    @staticmethod
    def _expand_stars(items, schema: Schema):
        expanded = []
        for item in items:
            if isinstance(item.expression, ast.Star):
                for column in schema:
                    if (
                        item.expression.qualifier is None
                        or (column.qualifier or "").lower()
                        == item.expression.qualifier.lower()
                    ):
                        expanded.append(
                            ast.SelectItem(
                                ast.ColumnRef(column.name, qualifier=column.qualifier)
                            )
                        )
                continue
            expanded.append(item)
        return expanded

    @staticmethod
    def _name_of(item: ast.SelectItem, position: int) -> str:
        if item.alias:
            return item.alias
        if isinstance(item.expression, ast.ColumnRef):
            return item.expression.name
        return f"col{position + 1}"
