"""Cache design advisor: the paper's §7 future-work tool, on TPC-W.

Feeds the advisor a Shopping-mix workload trace (the benchmark's stored
procedure calls, weighted by the mix) and compares its recommendation with
the paper's hand-designed caching strategy: projections of item, author,
orders and order_line, and copies of the read-dominated procedures.

Run:  python examples/cache_advisor.py
"""

from repro import MTCacheDeployment
from repro.mtcache.advisor import CacheAdvisor, WorkloadStatement
from repro.tpcw import TPCWConfig, build_backend
from repro.tpcw.workload import MIXES

#: Representative database calls per interaction (what the ISAPI app issues).
INTERACTION_CALLS = {
    "home": ["EXEC getName @c_id = 1", "EXEC getRelated @i_id = 1"],
    "new_products": ["EXEC getNewProducts @subject = 'ARTS'"],
    "best_sellers": ["EXEC getBestSellers @subject = 'ARTS'"],
    "product_detail": ["EXEC getBook @i_id = 1"],
    "search_request": ["EXEC getRelated @i_id = 1"],
    "search_results": ["EXEC doTitleSearch @title = '%RIVER%'"],
    "shopping_cart": [
        "EXEC addItem @sc_id = 1, @i_id = 1, @qty = 1",
        "EXEC getCart @sc_id = 1",
    ],
    "customer_registration": ["EXEC getCustomer @uname = 'user1'"],
    "buy_request": ["EXEC getCustomer @uname = 'user1'", "EXEC getCart @sc_id = 1"],
    "buy_confirm": [
        "EXEC enterOrder @c_id = 1, @sc_id = 1, @ship_type = 'AIR', "
        "@bill_addr = 1, @ship_addr = 1, @now = '2003-06-09'",
        "EXEC enterCCXact @o_id = 1, @cx_type = 'VISA', @cx_num = 'x', "
        "@cx_name = 'n', @amount = 1.0, @co_id = 1, @now = '2003-06-09'",
        "EXEC clearCart @sc_id = 1",
    ],
    "order_inquiry": ["EXEC getPassword @uname = 'user1'"],
    "order_display": ["EXEC getMostRecentOrderId @uname = 'user1'"],
    "admin_request": ["EXEC getBook @i_id = 1"],
    "admin_confirm": [
        "EXEC adminUpdate @i_id = 1, @cost = 1.0, @image = 'i', "
        "@thumbnail = 't', @now = '2003-06-09'",
        "EXEC getBestSellers @subject = 'ARTS'",
    ],
}


def main() -> None:
    print("Building TPC-W backend...")
    backend, config = build_backend(TPCWConfig(num_items=100, num_ebs=20))

    mix = MIXES["Shopping"]
    workload = []
    for interaction, weight in mix.weights.items():
        for call in INTERACTION_CALLS[interaction]:
            workload.append(WorkloadStatement(call, weight * 100))

    advisor = CacheAdvisor(backend, "tpcw")
    report = advisor.recommend(workload)

    print("\n" + report.summary())

    print("\nPaper's hand-designed strategy (for comparison):")
    print("  cached projections of: item, author, orders, order_line")
    print("  24 of 29 procedures copied (5 update-dominated left behind)")

    recommended_tables = sorted(view.table.lower() for view in report.views)
    print(f"\nAdvisor's cacheable tables: {recommended_tables}")

    # Apply the recommendation and verify it routes a search locally.
    deployment = MTCacheDeployment(backend, "tpcw")
    cache = deployment.add_cache_server("advised_cache")
    report.apply(cache)
    planned = cache.plan(
        "SELECT TOP 5 i.i_id, i.i_title FROM item i "
        "WHERE i.i_subject = 'HISTORY' ORDER BY i.i_pub_date DESC, i.i_title"
    )
    print("\nNew-products query on the advised cache:")
    print(planned.explain())
    print("\nRuns locally:", "yes" if not planned.uses_remote else "no")


if __name__ == "__main__":
    main()
