"""End-to-end acceptance: one TPC-W buying interaction, fully observed.

A buy_confirm against a cache server must yield a single exported trace
covering mid-tier and backend work with correct parent/child linkage, a
per-operator profile for a locally executed plan, and a deployment
metrics snapshot that reports replication lag for the cached views.
"""

import pytest

from repro.mtcache.odbc import OdbcSourceRegistry
from repro.obs.export import deployment_snapshot
from repro.obs.tracing import global_collector
from repro.tpcw import TPCWApplication, TPCWConfig, build_backend, enable_caching


@pytest.fixture(scope="module")
def stack():
    backend, config = build_backend(TPCWConfig(num_items=50, num_ebs=10))
    deployment, caches = enable_caching(backend, ["cache1"], config)
    registry = OdbcSourceRegistry()
    registry.register("tpcw", caches[0].server, "tpcw")
    application = TPCWApplication(registry.connect("tpcw"), config)
    return backend, config, deployment, caches[0], application


class TestBuyConfirmTrace:
    @pytest.fixture(autouse=True)
    def _observed_interaction(self, stack):
        backend, config, deployment, cache, application = stack
        cache.server.profile_statements = True
        session = application.new_session()
        # Put something in the cart so buy_confirm has order lines to enter.
        application.shopping_cart(session)
        # Let replication move at least one transaction before the buy.
        deployment.clock.advance(1.0)
        deployment.sync()

        global_collector().clear()
        with cache.server.tracer.span("tpcw.buy_confirm") as root:
            application.buy_confirm(session)
        self.root = root
        self.spans = global_collector().trace(root.trace_id)

        deployment.clock.advance(1.0)
        deployment.sync()
        self.snapshot = deployment_snapshot(deployment)
        cache.server.profile_statements = False
        yield

    def test_single_trace_covers_both_tiers(self):
        services = {span.service for span in self.spans}
        assert {"cache1", "backend"} <= services
        # Every span belongs to the one trace rooted at the interaction.
        assert all(span.trace_id == self.root.trace_id for span in self.spans)
        roots = [span for span in self.spans if span.parent_id is None]
        assert roots == [self.root]

    def test_parent_child_linkage_is_closed(self):
        by_id = {span.span_id: span for span in self.spans}
        for span in self.spans:
            if span.parent_id is not None:
                assert span.parent_id in by_id
        # Backend work is nested inside mid-tier spans: walking up from
        # any backend span reaches a cache1 ancestor.
        backend_spans = [span for span in self.spans if span.service == "backend"]
        assert backend_spans
        for span in backend_spans:
            node = span
            while node.parent_id is not None and node.service != "cache1":
                node = by_id[node.parent_id]
            assert node.service == "cache1"

    def test_local_plan_carries_operator_profile(self):
        profiled = [
            span for span in self.spans if "profile" in span.attributes
        ]
        assert profiled, "no span carries a statistics profile"
        text = profiled[0].attributes["profile"]
        assert "actual rows=" in text
        assert "est rows=" in text

    def test_shipped_statements_are_visible(self):
        # enterOrder/addOrderLine are update-dominated procedures: their
        # statements ship to the backend over the linked server, and the
        # client side of each round trip is a span of its own.
        names = {span.name for span in self.spans}
        assert "remote.statement" in names
        # At least one local dynamic plan fetched remote rows too
        # (getCAddr/getCart read tables the cache does not hold).
        assert "remote.query" in names or "remote.prepared" in names

    def test_snapshot_reports_replication_lag(self):
        replication = self.snapshot["replication"]
        subscriptions = replication["subscriptions"]
        assert subscriptions
        for values in subscriptions.values():
            assert {"lag_transactions", "lag_seconds", "queue_depth"} <= set(values)
        # The buy wrote orders/order_line on the backend; after sync the
        # distributor has moved at least one transaction.
        assert replication["transactions_distributed"] >= 1

    def test_snapshot_metrics_are_non_empty(self):
        cache_snap = self.snapshot["caches"][0]
        assert cache_snap["server"] == "cache1"
        counters = cache_snap["metrics"]["counters"]
        assert counters.get("optimizer.plans", 0) > 0
        assert cache_snap["statements_executed"] > 0
        assert self.snapshot["backend"]["metrics"]["counters"]
