"""MTCache: the paper's primary contribution.

* :class:`MTCacheDeployment` — a backend server plus its replication
  infrastructure (distributor, log readers) and any number of cache
  servers.
* :class:`CacheServer` — a SQL Server instance configured as a mid-tier
  cache: a shadow database with the backend's catalog, statistics and
  permissions but empty tables; cached materialized views maintained by
  replication; transparent cost-based routing of queries and transparent
  forwarding of updates and stored-procedure calls.
* :class:`OdbcSourceRegistry` — the redirection mechanism that makes
  caching transparent to applications: re-point a logical data source from
  the backend to a cache server without touching application code.
"""

from repro.mtcache.deployment import MTCacheDeployment
from repro.mtcache.cache_server import CacheServer
from repro.mtcache.odbc import OdbcConnection, OdbcSourceRegistry
from repro.mtcache.scripts import generate_shadow_script
from repro.mtcache.advisor import AdvisorReport, CacheAdvisor, WorkloadStatement

__all__ = [
    "MTCacheDeployment",
    "CacheServer",
    "OdbcConnection",
    "OdbcSourceRegistry",
    "generate_shadow_script",
    "CacheAdvisor",
    "AdvisorReport",
    "WorkloadStatement",
]
