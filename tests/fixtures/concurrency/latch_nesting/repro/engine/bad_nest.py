"""Seeded violation: one database latch nested inside another.

Expected finding: ``same-class-nesting`` — the latch class is
unordered, so holding one database's latch while taking another's
deadlocks against a thread doing the same two databases in the other
order.
"""


class BadCrossDatabase:
    def copy_rows(self, source, target):
        with source.latch.shared():
            with target.latch.exclusive():
                return self.move(source, target)
