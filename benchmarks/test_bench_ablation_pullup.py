"""Ablation — ChoosePlan pull-up (paper §5.1.2).

"Pulling the ChoosePlan operator above the join may produce a better plan
because the two branches can now be optimized independently. ... However,
the transformation has two drawbacks. It increases optimization time and
the final plan may be larger than minimally needed."

This bench measures all three effects: plan quality (estimated cost and
actual execution work per branch), plan size (operator count), and
optimization time (the pytest-benchmark timing of planning itself).
"""

import pytest

from repro import MTCacheDeployment
from repro.sql import parse

from tests.conftest import make_shop_backend
from benchmarks.conftest import emit

JOIN_QUERY = (
    "SELECT c.cname, o.total FROM customer c JOIN orders o ON o.o_cid = c.cid "
    "WHERE c.cid <= @cid"
)


@pytest.fixture(scope="module")
def env():
    backend = make_shop_backend(customers=1000, orders=2000)
    deployment = MTCacheDeployment(backend, "shop")

    def provision(name, pullup):
        cache = deployment.add_cache_server(
            name, optimizer_options={"pullup_chooseplan": pullup}
        )
        cache.create_cached_view(
            f"CREATE CACHED VIEW cust_{name} AS "
            "SELECT cid, cname, caddress FROM customer WHERE cid <= 500"
        )
        cache.create_cached_view(
            f"CREATE CACHED VIEW ord_{name} AS SELECT oid, o_cid, total FROM orders"
        )
        return cache

    return backend, provision("pullup", True), provision("nopullup", False)


def plan_size(planned):
    return sum(1 for _ in planned.root.walk())


def test_bench_pullup_ablation(env, benchmark, capsys):
    backend, pullup_cache, nopullup_cache = env

    pullup_plan = pullup_cache.plan(JOIN_QUERY)
    nopullup_plan = nopullup_cache.plan(JOIN_QUERY)

    emit(
        capsys,
        "Ablation: ChoosePlan pull-up vs leaf-level ChoosePlan",
        [
            f"pull-up   : cost={pullup_plan.estimated_cost:10.1f} "
            f"operators={plan_size(pullup_plan):3d}",
            f"no pull-up: cost={nopullup_plan.estimated_cost:10.1f} "
            f"operators={plan_size(nopullup_plan):3d}",
        ],
    )

    # The paper's trade-off: pull-up duplicates the join (bigger plan)...
    assert plan_size(pullup_plan) > plan_size(nopullup_plan)
    # ...in exchange for an estimated cost at least as good.
    assert pullup_plan.estimated_cost <= nopullup_plan.estimated_cost * 1.01

    # Both are correct for both branches.
    for cache in (pullup_cache, nopullup_cache):
        assert len(cache.execute(JOIN_QUERY, params={"cid": 100}).rows) == 200
        assert len(cache.execute(JOIN_QUERY, params={"cid": 600}).rows) == 1200

    # Optimization time: time the planner itself (fresh, uncached).
    statement = parse(JOIN_QUERY)

    def plan_once():
        optimizer = pullup_cache.server.optimizer_for(pullup_cache.database)
        return optimizer.plan_select(statement)

    benchmark(plan_once)
