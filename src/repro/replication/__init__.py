"""Transactional replication: publish-subscribe change propagation.

Mirrors SQL Server transactional replication as the paper describes it
(§2.2): a publisher exposes *publications* made of *articles*
(select-project expressions over tables or materialized views); a log
reader collects committed changes from the publisher's log into a
*distribution database*; distribution agents push complete transactions to
subscribers **in commit order**, so a subscriber always sees a
transactionally consistent — if slightly stale — state.
"""

from repro.replication.publication import Article, Publication
from repro.replication.logreader import LogReader
from repro.replication.distributor import DistributionDatabase, Distributor
from repro.replication.subscription import Subscription
from repro.replication.agent import DistributionAgent

__all__ = [
    "Article",
    "Publication",
    "LogReader",
    "DistributionDatabase",
    "Distributor",
    "Subscription",
    "DistributionAgent",
]
