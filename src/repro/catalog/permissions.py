"""A simplified SQL Server permission model.

The MTCache shadow database replicates *permissions* along with the rest of
the catalog so the cache server can check them locally. The model here is a
grant table: ``(principal, object) -> {SELECT, INSERT, UPDATE, DELETE,
EXECUTE}``. The built-in ``dbo`` principal implicitly holds every
permission, matching how the paper's setup scripts run as the owner.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set, Tuple

from repro.errors import PermissionError_

VALID_PERMISSIONS = frozenset({"SELECT", "INSERT", "UPDATE", "DELETE", "EXECUTE"})

#: The owner principal that implicitly holds all permissions.
OWNER = "dbo"


class PermissionSet:
    """Grant table with check/grant/revoke and full-copy support."""

    def __init__(self):
        self._grants: Dict[Tuple[str, str], Set[str]] = {}

    def grant(self, permission: str, object_name: str, principal: str) -> None:
        """Grant a permission on an object to a principal."""
        permission = "EXECUTE" if permission.upper() == "EXEC" else permission.upper()
        if permission not in VALID_PERMISSIONS:
            raise PermissionError_(f"unknown permission {permission!r}")
        key = (principal.lower(), object_name.lower())
        self._grants.setdefault(key, set()).add(permission)

    def revoke(self, permission: str, object_name: str, principal: str) -> None:
        """Revoke a permission; silently ignores absent grants."""
        permission = "EXECUTE" if permission.upper() == "EXEC" else permission.upper()
        key = (principal.lower(), object_name.lower())
        grants = self._grants.get(key)
        if grants:
            grants.discard(permission)

    def holds(self, permission: str, object_name: str, principal: str) -> bool:
        """Return True when the principal may perform the action."""
        if principal.lower() == OWNER:
            return True
        permission = "EXECUTE" if permission.upper() == "EXEC" else permission.upper()
        key = (principal.lower(), object_name.lower())
        return permission in self._grants.get(key, set())

    def check(self, permission: str, object_name: str, principal: str) -> None:
        """Raise :class:`PermissionError_` unless the permission is held."""
        if not self.holds(permission, object_name, principal):
            raise PermissionError_(
                f"principal {principal!r} lacks {permission.upper()} on {object_name!r}"
            )

    def copy(self) -> "PermissionSet":
        """Detached copy for shadow-database creation."""
        duplicate = PermissionSet()
        duplicate._grants = {key: set(value) for key, value in self._grants.items()}
        return duplicate

    def grants_for(self, object_name: str) -> Dict[str, FrozenSet[str]]:
        """Return ``principal -> permissions`` for one object (for tooling)."""
        result: Dict[str, FrozenSet[str]] = {}
        for (principal, obj), permissions in self._grants.items():
            if obj == object_name.lower():
                result[principal] = frozenset(permissions)
        return result
