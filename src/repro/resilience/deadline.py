"""End-to-end deadlines, carried across tiers by a context variable.

A :class:`Deadline` is an absolute virtual-time budget: set once at the
client edge (``Cursor.execute(..., timeout=...)``) and consulted at every
hop below it — shard routers before fanning out, failover routers before
routing, servers at statement admission, linked servers before each
remote attempt. The carrier is a :mod:`contextvars` variable (the same
mechanism the tracer uses for span parentage), so the budget follows the
call stack through every tier without any signature changes in between.

Nesting clamps: a scope opened inside another scope can only shrink the
remaining budget, never extend it — an inner retry loop cannot outlive
the statement that spawned it.

All time is virtual (:class:`~repro.common.clock.SimulatedClock`); the
``overload-bounded`` selflint rule keeps this module free of wall-clock
sleeps and unbounded queues. The module holds no growing state at all:
one context variable, scalar deadlines.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Iterator, Optional

from repro.errors import DeadlineExceededError

#: The ambient deadline for the current logical call, or None.
_current: ContextVar[Optional["Deadline"]] = ContextVar("repro_deadline", default=None)


class Deadline:
    """An absolute expiry on a virtual clock.

    Construct via :meth:`after` (which clamps to any ambient deadline) or
    directly with an absolute ``expires_at`` timestamp.
    """

    __slots__ = ("clock", "expires_at")

    def __init__(self, clock: Any, expires_at: float):
        self.clock = clock
        self.expires_at = float(expires_at)

    @classmethod
    def after(cls, clock: Any, budget: float) -> "Deadline":
        """A deadline ``budget`` virtual seconds from now.

        Clamped against the ambient deadline, so nested scopes (a retry
        loop inside a statement, a statement inside a request) can only
        tighten the budget.
        """
        expires = clock.now() + float(budget)
        ambient = current_deadline()
        if ambient is not None:
            expires = min(expires, ambient.expires_at)
        return cls(clock, expires)

    def remaining(self) -> float:
        """Virtual seconds left, never negative."""
        return max(0.0, self.expires_at - self.clock.now())

    def expired(self) -> bool:
        return self.clock.now() >= self.expires_at

    def check(self, what: str = "call") -> None:
        """Raise :class:`DeadlineExceededError` if the budget is gone."""
        if self.expired():
            raise DeadlineExceededError(
                f"deadline exceeded before {what} "
                f"(expired at t={self.expires_at:.3f}, now t={self.clock.now():.3f})"
            )

    def __repr__(self) -> str:
        return f"<Deadline expires_at={self.expires_at:.3f} remaining={self.remaining():.3f}>"


def current_deadline() -> Optional[Deadline]:
    """The ambient deadline for this logical call, or None."""
    return _current.get()


@contextmanager
def deadline_scope(deadline: Optional[Deadline]) -> Iterator[Optional[Deadline]]:
    """Install ``deadline`` as the ambient deadline for the block.

    ``None`` is accepted and is a no-op scope, so call sites can write
    ``with deadline_scope(maybe_deadline):`` without branching.
    """
    if deadline is None:
        yield None
        return
    token = _current.set(deadline)
    try:
        yield deadline
    finally:
        _current.reset(token)


def check_deadline(what: str = "call") -> None:
    """Raise if the ambient deadline (if any) has expired."""
    deadline = _current.get()
    if deadline is not None:
        deadline.check(what)


def remaining_budget() -> Optional[float]:
    """Virtual seconds left on the ambient deadline, or None when unset."""
    deadline = _current.get()
    if deadline is None:
        return None
    return deadline.remaining()
