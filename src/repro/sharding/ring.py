"""Partitioning strategies for the sharded cache tier.

Two strategies share one small protocol (``shards``, ``owner(key)``,
``version``):

* :class:`HashRing` — consistent hashing with virtual nodes. Placement is
  uniform for arbitrary key spaces and adding/removing a shard relocates
  only ~K/N keys, but ownership of a hash bucket is not expressible as a
  SQL predicate, so the ring serves *router-level* partitioning (and the
  simulation scenarios), not replication slices.
* :class:`RangePartitioner` — contiguous key ranges. Less uniform under
  skew, but each slice **is** a SQL predicate (``key BETWEEN lo AND hi``),
  which is what lets a shard's cached views carry the slice as an article
  restriction and lets the optimizer build dynamic plans whose guards keep
  even misrouted keys correct. This is the strategy
  :class:`~repro.sharding.deployment.ShardedDeployment` provisions with.

All hashing goes through :func:`stable_hash` (md5-based), never Python's
builtin ``hash`` — the builtin is salted per process, and shard ownership
must be deterministic across processes and runs. The ``shard-ownership``
selflint rule enforces that no code outside this package improvises
``hash(...) % n`` placement.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Optional, Tuple

from repro.common.locks import rmutex
from repro.sql import ast

#: Virtual nodes per shard; enough that ownership spreads within a few
#: percent of uniform at 8-32 shards without making lookups expensive.
DEFAULT_VNODES = 64


def stable_hash(value: object) -> int:
    """A process-independent 64-bit hash (md5 prefix) of ``str(value)``."""
    digest = hashlib.md5(str(value).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent hashing over virtual nodes.

    Each shard contributes ``vnodes`` points on a 64-bit ring; a key is
    owned by the shard whose point follows the key's hash (wrapping).
    Adding or removing one shard therefore moves only the keys between
    the affected points — about K/N of them — instead of reshuffling
    everything the way modular hashing does.
    """

    def __init__(self, shards: Iterable[str], vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, not {vnodes}")
        self.vnodes = vnodes
        self.version = 0
        self._shards: List[str] = []
        self._points: List[Tuple[int, str]] = []
        for shard in shards:
            self.add_shard(shard)

    @property
    def shards(self) -> Tuple[str, ...]:
        return tuple(self._shards)

    def add_shard(self, name: str) -> None:
        if name in self._shards:
            raise ValueError(f"shard {name!r} already on the ring")
        self._shards.append(name)
        for replica in range(self.vnodes):
            point = stable_hash(f"{name}#{replica}")
            bisect.insort(self._points, (point, name))
        self.version += 1

    def remove_shard(self, name: str) -> None:
        if name not in self._shards:
            raise ValueError(f"no shard {name!r} on the ring")
        self._shards.remove(name)
        self._points = [entry for entry in self._points if entry[1] != name]
        self.version += 1

    def owner(self, key: object) -> str:
        """The shard owning ``key`` (first ring point at or after its hash)."""
        if not self._points:
            raise ValueError("ring has no shards")
        position = bisect.bisect_left(self._points, (stable_hash(key), ""))
        if position == len(self._points):
            position = 0
        return self._points[position][1]

    def ownership(self, keys: Iterable[object]) -> Dict[str, int]:
        """How many of ``keys`` each shard owns (every shard listed)."""
        counts = {shard: 0 for shard in self._shards}
        for key in keys:
            counts[self.owner(key)] += 1
        return counts

    def slice_predicate(self, shard: str, column: str, qualifier: Optional[str] = None):
        raise NotImplementedError(
            "hash-ring ownership is not expressible as a SQL predicate; "
            "provision ShardedDeployment with a RangePartitioner (the "
            "ring partitions at the router/simulation level)"
        )

    def __repr__(self) -> str:
        return f"<HashRing shards={len(self._shards)} vnodes={self.vnodes}>"


class RangePartitioner:
    """Contiguous key ranges over an integer key domain.

    Ranges are inclusive on both ends, kept contiguous and in shard-list
    order; keys outside the domain clamp to the edge shards (the dynamic
    plans' guards make a wrong guess merely slower, never incorrect).
    ``version`` bumps on every boundary change so routers can invalidate
    per-shard statement caches.

    Routers consult the partitioner from worker threads while the
    rebalancer mutates it, so every read and mutation runs under one
    reentrant mutex; :meth:`move_boundary` shifts a boundary between two
    adjacent shards as a *single* version bump, so no reader can observe
    the half-moved state where a key range belongs to both or neither.
    """

    def __init__(self, shards: Iterable[str], low: int, high: int):
        names = list(shards)
        if not names:
            raise ValueError("need at least one shard")
        if high < low:
            raise ValueError(f"empty key domain [{low}, {high}]")
        self.low = low
        self.high = high
        self.version = 0
        self._mutex = rmutex()
        self._shards: List[str] = []
        self._ranges: Dict[str, Tuple[int, int]] = {}
        total = high - low + 1
        count = len(names)
        start = low
        for index, name in enumerate(names):
            # Spread the remainder over the first shards, one key each.
            width = total // count + (1 if index < total % count else 0)
            end = start + width - 1
            self._shards.append(name)
            self._ranges[name] = (start, end)
            start = end + 1

    @property
    def shards(self) -> Tuple[str, ...]:
        with self._mutex:
            return tuple(self._shards)

    def slice(self, shard: str) -> Tuple[int, int]:
        """The shard's inclusive ``(low, high)`` range (empty when high < low)."""
        with self._mutex:
            try:
                return self._ranges[shard]
            except KeyError:
                raise ValueError(f"no shard {shard!r}") from None

    def owner(self, key: object) -> str:
        value = int(key)  # type: ignore[arg-type]
        with self._mutex:
            boundaries = [
                (self._ranges[name][1], name)
                for name in self._shards
                if self._ranges[name][0] <= self._ranges[name][1]
            ]
        if not boundaries:
            raise ValueError("all shard ranges are empty")
        boundaries.sort()
        position = bisect.bisect_left(boundaries, (value, ""))
        if position == len(boundaries):
            position -= 1  # clamp above the domain to the last shard
        return boundaries[position][1]

    def ownership(self, keys: Iterable[object]) -> Dict[str, int]:
        counts = {shard: 0 for shard in self.shards}
        for key in keys:
            counts[self.owner(key)] += 1
        return counts

    def slice_predicate(
        self, shard: str, column: str, qualifier: Optional[str] = None
    ) -> ast.Expression:
        """The shard's slice as an AST predicate: ``column BETWEEN lo AND hi``."""
        low, high = self.slice(shard)
        return ast.Between(
            operand=ast.ColumnRef(name=column, qualifier=qualifier),
            low=ast.Literal(low),
            high=ast.Literal(high),
        )

    # -- rebalancing primitives -------------------------------------------

    def set_slice(self, shard: str, low: int, high: int) -> None:
        """Assign a range directly (rebalance internals; bumps version)."""
        with self._mutex:
            if shard not in self._ranges:
                raise ValueError(f"no shard {shard!r}")
            self._ranges[shard] = (low, high)
            self.version += 1

    def move_boundary(self, left: str, right: str, cut: int) -> None:
        """Move the boundary between two adjacent shards atomically.

        After the move ``left`` owns ``[left.low, cut]`` and ``right``
        owns ``[cut + 1, right.high]``. Both slices change under one
        mutex hold and one version bump — a concurrent :meth:`owner`
        call sees either the old cutover or the new one, never a state
        where keys around the boundary have two owners or none.
        """
        with self._mutex:
            left_low, left_high = self.slice(left)
            right_low, right_high = self.slice(right)
            if left_high + 1 != right_low:
                raise ValueError(
                    f"shards {left!r} [{left_low}, {left_high}] and {right!r} "
                    f"[{right_low}, {right_high}] are not adjacent"
                )
            if not (left_low - 1 <= cut <= right_high):
                raise ValueError(
                    f"cut {cut} outside the combined range [{left_low}, {right_high}]"
                )
            self._ranges[left] = (left_low, cut)
            self._ranges[right] = (cut + 1, right_high)
            self.version += 1

    def widest_shard(self) -> str:
        """The shard owning the most keys (the natural split donor)."""
        with self._mutex:
            return max(
                self._shards,
                key=lambda name: self._ranges[name][1] - self._ranges[name][0],
            )

    def plan_split(self, donor: str) -> Tuple[Tuple[int, int], Tuple[int, int]]:
        """Halve the donor's range: returns (donor_keeps, new_shard_takes)."""
        low, high = self.slice(donor)
        if high <= low:
            raise ValueError(f"shard {donor!r} range [{low}, {high}] cannot split")
        cut = (low + high) // 2
        return (low, cut), (cut + 1, high)

    def add_shard(self, name: str, low: int, high: int) -> None:
        """Register a new shard with an explicit range (bumps version)."""
        with self._mutex:
            if name in self._ranges:
                raise ValueError(f"shard {name!r} already registered")
            self._shards.append(name)
            self._ranges[name] = (low, high)
            self.version += 1

    def remove_shard(self, name: str) -> Tuple[int, int]:
        """Drop a shard, returning the range its data must move to."""
        with self._mutex:
            vacated = self.slice(name)
            self._shards.remove(name)
            del self._ranges[name]
            self.version += 1
            return vacated

    def __repr__(self) -> str:
        with self._mutex:
            ranges = ", ".join(
                f"{name}=[{low},{high}]" for name, (low, high) in self._ranges.items()
            )
        return f"<RangePartitioner {ranges}>"
