"""Unit tests for the simulated clock."""

import pytest

from repro.common.clock import SimulatedClock


def test_starts_at_zero():
    assert SimulatedClock().now() == 0.0


def test_advance_accumulates():
    clock = SimulatedClock()
    clock.advance(1.5)
    clock.advance(0.5)
    assert clock.now() == 2.0


def test_negative_advance_rejected():
    with pytest.raises(ValueError):
        SimulatedClock().advance(-1)


def test_advance_to_never_goes_backwards():
    clock = SimulatedClock(start=10.0)
    clock.advance_to(5.0)
    assert clock.now() == 10.0
    clock.advance_to(12.0)
    assert clock.now() == 12.0
