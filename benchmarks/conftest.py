"""Shared benchmark fixtures.

Calibration is expensive relative to a single bench, so the calibrated
service demands (real executions of the TPC-W procedures on the repro
engine, backend-only and through MTCache) are computed once per session at
the bench scale and shared by every experiment.

``--bench-record [PATH]`` turns on the perf trajectory: benches that take
the ``bench_recorder`` fixture have their numbers written to PATH
(default ``BENCH_pr9.json`` at the repo root) when the session ends.
"""

from __future__ import annotations

import pytest

from benchmarks.record import DEFAULT_RECORD_PATH, BenchRecorder
from repro.simulation import ClusterModel, ClusterSpec, calibrate
from repro.tpcw import TPCWConfig


def pytest_addoption(parser):
    parser.addoption(
        "--bench-record",
        nargs="?",
        const=str(DEFAULT_RECORD_PATH),
        default=None,
        metavar="PATH",
        help="write recorded bench numbers to PATH "
        f"(default: {DEFAULT_RECORD_PATH.name} at the repo root)",
    )


@pytest.fixture(scope="session")
def bench_recorder(request):
    """Session-wide BenchRecorder; writes on teardown when recording."""
    path = request.config.getoption("--bench-record")
    smoke = bool(request.config.getoption("--benchmark-disable", default=False))
    recorder = BenchRecorder(path=path, smoke=smoke)
    yield recorder
    written = recorder.write()
    if written is not None:
        print(f"\nbench trajectory written to {written}")

#: The bench scale: larger than unit tests so relative interaction costs
#: resemble the paper's (bestseller dominating the Browse class, etc.).
BENCH_CONFIG = dict(num_items=200, num_ebs=40, bestseller_window=200)


@pytest.fixture(scope="session")
def bench_config() -> TPCWConfig:
    return TPCWConfig(**BENCH_CONFIG)


@pytest.fixture(scope="session")
def cal_cached(bench_config):
    return calibrate("cached", TPCWConfig(**BENCH_CONFIG), repetitions=6)


@pytest.fixture(scope="session")
def cal_nocache(bench_config):
    return calibrate("nocache", TPCWConfig(**BENCH_CONFIG), repetitions=6)


@pytest.fixture(scope="session")
def spec() -> ClusterSpec:
    return ClusterSpec()


@pytest.fixture(scope="session")
def cached_model(cal_cached, spec) -> ClusterModel:
    return ClusterModel(cal_cached, spec)


@pytest.fixture(scope="session")
def nocache_model(cal_nocache, spec) -> ClusterModel:
    return ClusterModel(cal_nocache, spec, replication_enabled=False)


def emit(capsys, title: str, lines) -> None:
    """Print an experiment table straight to the terminal (uncaptured)."""
    with capsys.disabled():
        print(f"\n=== {title} ===")
        for line in lines:
            print(line)
