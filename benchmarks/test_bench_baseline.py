"""E1a — §6.2.1 baseline throughput table (no caching).

Paper (backend-only, backend at ~90 % CPU):

    Workload   WIPS
    Browsing     50
    Shopping     82
    Ordering    283

Absolute WIPS differ (simulated cluster, scaled data); the *shape* to
reproduce is: the backend is the bottleneck at ~90 % utilization, and
Ordering sustains the most interactions per second while Browsing — whose
Browse-class queries (bestseller, searches) are the most expensive —
sustains the fewest.
"""

import pytest

from benchmarks.conftest import emit

PAPER = {"Browsing": 50, "Shopping": 82, "Ordering": 283}


def test_bench_baseline_wips(nocache_model, benchmark, capsys):
    points = {
        mix: nocache_model.baseline_wips(mix)
        for mix in ("Browsing", "Shopping", "Ordering")
    }
    lines = [f"{'Workload':10s} {'WIPS':>8s} {'backend util':>13s} {'bottleneck':>11s}   paper WIPS"]
    for mix, point in points.items():
        lines.append(
            f"{mix:10s} {point.wips:8.1f} {point.backend_utilization:13.1%} "
            f"{point.bottleneck:>11s}   {PAPER[mix]}"
        )
    emit(capsys, "E1a: baseline throughput (no caching)", lines)

    # Shape assertions: backend-bound at 90 %, Ordering > Shopping > Browsing.
    for point in points.values():
        assert point.bottleneck == "backend"
        assert point.backend_utilization == pytest.approx(0.9, abs=0.01)
    assert points["Ordering"].wips > points["Shopping"].wips > points["Browsing"].wips

    benchmark(lambda: nocache_model.baseline_wips("Shopping"))
