"""Row schemas: ordered, named, typed column lists.

A :class:`Schema` describes the shape of a row stream flowing between
operators as well as the persistent shape of a table. Columns carry an
optional qualifier (the table alias that produced them) so name resolution
can disambiguate ``c.id`` from ``o.id`` after a join.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.common.types import SqlType
from repro.errors import BindError


@dataclass(frozen=True)
class Column:
    """A single schema column: name, type and optional source qualifier."""

    name: str
    sql_type: SqlType
    qualifier: Optional[str] = None
    nullable: bool = True

    @property
    def qualified_name(self) -> str:
        """Return ``qualifier.name`` when qualified, else just the name."""
        if self.qualifier:
            return f"{self.qualifier}.{self.name}"
        return self.name

    def with_qualifier(self, qualifier: Optional[str]) -> "Column":
        """Return a copy of this column under a new qualifier."""
        return replace(self, qualifier=qualifier)


class Schema:
    """An ordered collection of :class:`Column` with name resolution.

    Lookup is case-insensitive, matching T-SQL identifier semantics.
    """

    def __init__(self, columns: Iterable[Column]):
        self.columns: Tuple[Column, ...] = tuple(columns)
        self._by_name: dict = {}
        self._by_qualified: dict = {}
        for position, column in enumerate(self.columns):
            key = column.name.lower()
            self._by_name.setdefault(key, []).append(position)
            if column.qualifier:
                qkey = (column.qualifier.lower(), key)
                self._by_qualified.setdefault(qkey, []).append(position)

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __getitem__(self, index: int) -> Column:
        return self.columns[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.columns == other.columns

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.qualified_name} {c.sql_type}" for c in self.columns)
        return f"Schema({cols})"

    @property
    def names(self) -> List[str]:
        """Return the unqualified column names in order."""
        return [column.name for column in self.columns]

    def resolve(self, name: str, qualifier: Optional[str] = None) -> int:
        """Return the position of the named column.

        Raises :class:`BindError` if the name is unknown or ambiguous.
        """
        if qualifier:
            positions = self._by_qualified.get((qualifier.lower(), name.lower()), [])
        else:
            positions = self._by_name.get(name.lower(), [])
        if not positions:
            target = f"{qualifier}.{name}" if qualifier else name
            raise BindError(f"unknown column {target!r}")
        if len(positions) > 1:
            target = f"{qualifier}.{name}" if qualifier else name
            raise BindError(f"ambiguous column {target!r}")
        return positions[0]

    def maybe_resolve(self, name: str, qualifier: Optional[str] = None) -> Optional[int]:
        """Like :meth:`resolve` but returns None when the name is unknown.

        Still raises on ambiguity, which is always an error.
        """
        try:
            return self.resolve(name, qualifier)
        except BindError as exc:
            if "ambiguous" in str(exc):
                raise
            return None

    def index_of(self, column: Column) -> int:
        """Return the position of an exact column object."""
        return self.columns.index(column)

    def with_qualifier(self, qualifier: Optional[str]) -> "Schema":
        """Return a schema whose columns are all re-qualified."""
        return Schema(column.with_qualifier(qualifier) for column in self.columns)

    def concat(self, other: "Schema") -> "Schema":
        """Return the concatenation of this schema and another (join output)."""
        return Schema(tuple(self.columns) + tuple(other.columns))

    def project(self, positions: Sequence[int]) -> "Schema":
        """Return a schema consisting of the columns at ``positions``."""
        return Schema(self.columns[position] for position in positions)

    @property
    def row_width(self) -> int:
        """Estimated average row width in bytes (for transfer costing)."""
        return sum(column.sql_type.width for column in self.columns) or 1
