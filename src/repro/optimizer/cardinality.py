"""Cardinality and selectivity estimation from shadowed statistics.

The MTCache server keeps the *backend's* statistics for shadow tables
(tables are empty but statistics reflect the backend state), so estimates
here work identically on a backend server and on a cache server — a core
requirement for fully local cost-based optimization.

Parameterized predicates cannot consult histograms at optimization time:
equality uses the 1/NDV rule, ranges the System-R 1/3 default. Guard
frequency for dynamic plans assumes the parameter is uniformly distributed
between the column's min and max values (the paper's stated assumption).
"""

from __future__ import annotations

from typing import List, Optional

from repro.optimizer.predicates import SimpleComparison, normalize_comparison
from repro.sql import ast
from repro.storage.statistics import TableStatistics

DEFAULT_EQUALITY_SELECTIVITY = 0.05
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_LIKE_SELECTIVITY = 0.1
DEFAULT_OPAQUE_SELECTIVITY = 0.5
DEFAULT_IN_SELECTIVITY = 0.2


class CardinalityEstimator:
    """Estimates selectivities and cardinalities against TableStatistics.

    ``parameter_distribution`` selects how dynamic-plan guard frequencies
    are estimated (paper §5.1):

    * ``"uniform"`` (the paper's choice): the parameter is uniform between
      the column's min and max values;
    * ``"column"`` (the alternative the paper mentions): the parameter
      follows the column's own value distribution, read off the histogram.
    """

    def __init__(
        self,
        statistics: Optional[TableStatistics] = None,
        parameter_distribution: str = "uniform",
    ):
        if parameter_distribution not in ("uniform", "column"):
            raise ValueError(
                f"parameter_distribution must be 'uniform' or 'column', "
                f"not {parameter_distribution!r}"
            )
        self.statistics = statistics
        self.parameter_distribution = parameter_distribution

    def conjunct_selectivity(self, conjunct: ast.Expression) -> float:
        """Selectivity of one conjunct (independence assumed by callers)."""
        comparison = normalize_comparison(conjunct)
        if comparison is not None:
            return self._comparison_selectivity(comparison)
        if isinstance(conjunct, ast.Like):
            return DEFAULT_LIKE_SELECTIVITY
        if isinstance(conjunct, ast.InList):
            return min(1.0, DEFAULT_EQUALITY_SELECTIVITY * max(1, len(conjunct.items)))
        if isinstance(conjunct, ast.InSubquery):
            return DEFAULT_IN_SELECTIVITY
        if isinstance(conjunct, ast.IsNull):
            stats = self._column_stats(getattr(conjunct.operand, "name", None))
            if stats is not None:
                fraction = stats.null_fraction
                return fraction if not conjunct.negated else 1.0 - fraction
            return 0.1 if not conjunct.negated else 0.9
        if isinstance(conjunct, ast.Between):
            return DEFAULT_RANGE_SELECTIVITY
        return DEFAULT_OPAQUE_SELECTIVITY

    def selectivity(self, conjuncts: List[ast.Expression]) -> float:
        """Combined selectivity of conjuncts under independence."""
        result = 1.0
        for conjunct in conjuncts:
            result *= self.conjunct_selectivity(conjunct)
        return max(1e-9, min(1.0, result))

    def _column_stats(self, column_name: Optional[str]):
        if self.statistics is None or column_name is None:
            return None
        return self.statistics.column(column_name)

    def _comparison_selectivity(self, comparison: SimpleComparison) -> float:
        stats = self._column_stats(comparison.column.name)
        if comparison.op == "=":
            if comparison.is_parameterized:
                if stats is not None:
                    return stats.equality_selectivity()
                return DEFAULT_EQUALITY_SELECTIVITY
            if stats is not None:
                return stats.equality_selectivity()
            return DEFAULT_EQUALITY_SELECTIVITY
        if comparison.op == "<>":
            if stats is not None:
                return max(0.0, 1.0 - stats.equality_selectivity())
            return 1.0 - DEFAULT_EQUALITY_SELECTIVITY
        # Range predicate.
        if comparison.is_parameterized or stats is None:
            return DEFAULT_RANGE_SELECTIVITY
        return stats.range_selectivity(comparison.op, comparison.constant)

    # -- dynamic-plan guard frequency ---------------------------------------

    def guard_frequency(self, guard: ast.Expression) -> float:
        """Probability that a parameter guard evaluates to true at run time.

        The guard references parameters and literals only. Following the
        paper, each ``@p op K`` factor assumes ``@p`` is uniform over the
        [min, max] of the column the guard was derived from; since the
        derivation loses the column, we key off the guarded constant's
        position inside the guarded view column range when available via
        ``self.statistics`` — callers estimating guards should construct
        the estimator with the *base table's* statistics and call
        :meth:`guard_frequency_for_column` instead when they know the
        column. This generic entry point applies the uniform rule when it
        can and falls back to 0.5.
        """
        return self._guard_probability(guard, column_name=None)

    def guard_frequency_for_column(self, guard: ast.Expression, column_name: str) -> float:
        """Guard probability using a specific column's min/max range."""
        return self._guard_probability(guard, column_name)

    def _guard_probability(self, guard: ast.Expression, column_name: Optional[str]) -> float:
        if isinstance(guard, ast.BinaryOp) and guard.op == "AND":
            return self._guard_probability(guard.left, column_name) * self._guard_probability(
                guard.right, column_name
            )
        if (
            isinstance(guard, ast.BinaryOp)
            and guard.op in ("=", "<", "<=", ">", ">=")
            and isinstance(guard.left, ast.Parameter)
            and isinstance(guard.right, ast.Literal)
        ):
            stats = self._column_stats(column_name)
            value = guard.right.value
            if stats is not None and self.parameter_distribution == "column":
                if stats.histogram.bounds:
                    position = stats.histogram.fraction_below(
                        value, inclusive=guard.op in ("<=", "=")
                    )
                    if guard.op in ("<", "<="):
                        return position
                    if guard.op in (">", ">="):
                        return 1.0 - position
                    return max(1e-6, 1.0 / max(1, stats.distinct_count))
            if (
                stats is not None
                and isinstance(value, (int, float))
                and isinstance(stats.min_value, (int, float))
                and isinstance(stats.max_value, (int, float))
                and stats.max_value > stats.min_value
            ):
                position = (value - stats.min_value) / (stats.max_value - stats.min_value)
                position = max(0.0, min(1.0, position))
                if guard.op in ("<", "<="):
                    return position
                if guard.op in (">", ">="):
                    return 1.0 - position
                return max(
                    1e-6, 1.0 / max(1, stats.distinct_count)
                )  # equality guard
            if guard.op == "=":
                return DEFAULT_EQUALITY_SELECTIVITY
            return 0.5
        return 0.5
