"""Catalog registry unit tests."""

import pytest

from repro.catalog import Catalog
from repro.catalog.objects import IndexDef, ProcedureDef, TableDef, ViewDef
from repro.common.schema import Column, Schema
from repro.common.types import INT
from repro.errors import CatalogError
from repro.sql import parse


def table(name="t"):
    return TableDef(name, Schema([Column("id", INT)]), primary_key=("id",))


def view(name="v", cached=False, materialized=True):
    statement = parse(f"CREATE VIEW {name} AS SELECT id FROM t")
    return ViewDef(
        name, statement.select, Schema([Column("id", INT)]),
        materialized=materialized, cached=cached,
    )


class TestTables:
    def test_add_get_case_insensitive(self):
        catalog = Catalog()
        catalog.add_table(table("Customers"))
        assert catalog.get_table("CUSTOMERS").name == "Customers"

    def test_duplicate_rejected(self):
        catalog = Catalog()
        catalog.add_table(table())
        with pytest.raises(CatalogError, match="already exists"):
            catalog.add_table(table())

    def test_name_collision_with_view_rejected(self):
        catalog = Catalog()
        catalog.add_view(view("x"))
        with pytest.raises(CatalogError):
            catalog.add_table(table("x"))

    def test_drop_removes_dependent_indexes(self):
        catalog = Catalog()
        catalog.add_table(table())
        catalog.add_index(IndexDef("ix", "t", ("id",)))
        catalog.drop_table("t")
        assert catalog.indexes == {}

    def test_missing_raises(self):
        with pytest.raises(CatalogError):
            Catalog().get_table("nope")


class TestViews:
    def test_materialized_and_cached_filters(self):
        catalog = Catalog()
        catalog.add_view(view("plain", materialized=False))
        catalog.add_view(view("mat"))
        catalog.add_view(view("cache", cached=True))
        assert {v.name for v in catalog.materialized_views()} == {"mat", "cache"}
        assert {v.name for v in catalog.cached_views()} == {"cache"}

    def test_drop(self):
        catalog = Catalog()
        catalog.add_view(view())
        catalog.drop_view("V")
        assert catalog.maybe_view("v") is None


class TestIndexesAndProcedures:
    def test_indexes_on(self):
        catalog = Catalog()
        catalog.add_table(table("a"))
        catalog.add_table(table("b"))
        catalog.add_index(IndexDef("ix_a", "a", ("id",)))
        catalog.add_index(IndexDef("ix_b", "b", ("id",)))
        assert [index.name for index in catalog.indexes_on("A")] == ["ix_a"]

    def test_procedure_lifecycle(self):
        catalog = Catalog()
        statement = parse("CREATE PROCEDURE p AS BEGIN SELECT 1 END")
        catalog.add_procedure(ProcedureDef("p", statement.params, statement.body))
        assert catalog.get_procedure("P").name == "p"
        catalog.drop_procedure("p")
        assert catalog.maybe_procedure("p") is None

    def test_duplicate_procedure_rejected(self):
        catalog = Catalog()
        statement = parse("CREATE PROCEDURE p AS BEGIN SELECT 1 END")
        catalog.add_procedure(ProcedureDef("p", statement.params, statement.body))
        with pytest.raises(CatalogError):
            catalog.add_procedure(ProcedureDef("P", statement.params, statement.body))


class TestShadowClone:
    def make_full(self):
        catalog = Catalog()
        catalog.add_table(table())
        catalog.add_view(view("mat"))
        catalog.add_view(view("cv", cached=True))
        catalog.add_index(IndexDef("ix", "t", ("id",)))
        statement = parse("CREATE PROCEDURE p AS BEGIN SELECT 1 END")
        catalog.add_procedure(ProcedureDef("p", statement.params, statement.body))
        catalog.permissions.grant("SELECT", "t", "alice")
        return catalog

    def test_clone_excludes_cached_views(self):
        shadow = self.make_full().clone_for_shadow()
        assert shadow.maybe_view("cv") is None
        assert shadow.maybe_view("mat") is not None

    def test_clone_excludes_procedures_by_default(self):
        shadow = self.make_full().clone_for_shadow()
        assert shadow.maybe_procedure("p") is None
        with_procs = self.make_full().clone_for_shadow(include_procedures=True)
        assert with_procs.maybe_procedure("p") is not None

    def test_clone_copies_permissions_detached(self):
        original = self.make_full()
        shadow = original.clone_for_shadow()
        shadow.permissions.grant("SELECT", "t", "bob")
        assert not original.permissions.holds("SELECT", "t", "bob")
        assert shadow.permissions.holds("SELECT", "t", "alice")
