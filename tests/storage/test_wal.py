"""WAL and log-sniffing grouping tests."""

from repro.storage.wal import LogRecordType, WriteAheadLog


def test_lsns_are_dense_and_increasing():
    wal = WriteAheadLog()
    first = wal.append(LogRecordType.BEGIN, 1)
    second = wal.append(LogRecordType.COMMIT, 1)
    assert (first.lsn, second.lsn) == (1, 2)
    assert wal.last_lsn == 2


def test_read_from_watermark():
    wal = WriteAheadLog()
    for _ in range(5):
        wal.append(LogRecordType.BEGIN, 1)
    records = wal.read_from(3)
    assert [record.lsn for record in records] == [4, 5]
    assert wal.read_from(5) == []


def test_read_from_after_truncate():
    wal = WriteAheadLog()
    for _ in range(10):
        wal.append(LogRecordType.BEGIN, 1)
    wal.truncate_through(4)
    records = wal.read_from(6)
    assert [record.lsn for record in records] == [7, 8, 9, 10]


def test_committed_transactions_groups_changes():
    wal = WriteAheadLog()
    wal.append(LogRecordType.BEGIN, 1)
    wal.append(LogRecordType.INSERT, 1, table="t", new_row=(1,))
    wal.append(LogRecordType.INSERT, 1, table="t", new_row=(2,))
    wal.append(LogRecordType.COMMIT, 1, timestamp=5.0)
    batches = wal.committed_transactions(0)
    assert len(batches) == 1
    commit, changes = batches[0]
    assert commit.timestamp == 5.0
    assert [record.new_row for record in changes] == [(1,), (2,)]


def test_uncommitted_transactions_invisible():
    wal = WriteAheadLog()
    wal.append(LogRecordType.BEGIN, 1)
    wal.append(LogRecordType.INSERT, 1, table="t", new_row=(1,))
    assert wal.committed_transactions(0) == []


def test_aborted_transactions_skipped():
    wal = WriteAheadLog()
    wal.append(LogRecordType.BEGIN, 1)
    wal.append(LogRecordType.INSERT, 1, table="t", new_row=(1,))
    wal.append(LogRecordType.ABORT, 1)
    wal.append(LogRecordType.BEGIN, 2)
    wal.append(LogRecordType.DELETE, 2, table="t", old_row=(9,))
    wal.append(LogRecordType.COMMIT, 2, timestamp=1.0)
    batches = wal.committed_transactions(0)
    assert len(batches) == 1
    assert batches[0][0].transaction_id == 2


def test_commit_order_preserved():
    wal = WriteAheadLog()
    for txn in (1, 2, 3):
        wal.append(LogRecordType.BEGIN, txn)
        wal.append(LogRecordType.INSERT, txn, table="t", new_row=(txn,))
        wal.append(LogRecordType.COMMIT, txn, timestamp=float(txn))
    batches = wal.committed_transactions(0)
    assert [commit.transaction_id for commit, _ in batches] == [1, 2, 3]


def test_truncate_returns_discard_count():
    wal = WriteAheadLog()
    for _ in range(6):
        wal.append(LogRecordType.BEGIN, 1)
    assert wal.truncate_through(4) == 4
    assert len(wal) == 2
