"""Plan-invariant verifier (analysis pass 1).

Walks any :class:`~repro.exec.operators.PhysicalOperator` tree produced
by the optimizer and checks the invariants MTCache correctness rests on:

* **Schema agreement** — every parent's output schema must agree with
  its children: pass-through operators (Filter/Sort/Top/Distinct) keep
  the child schema verbatim, joins concatenate left and right, UnionAll
  branches must match in arity, column names and (widening-compatible)
  types, relabels may rename but not change arity or types.
* **DataLocation discipline** — a local operator may not read rows of a
  remote (shadow) table directly; remote data enters a plan only through
  a ``RemoteQueryOp`` DataTransfer boundary, which must be a leaf.
* **ChoosePlan well-formedness** — a ``UnionAllOp(choose_plan=True)``
  must have exactly two branches, each a startup-guarded ``FilterOp``
  whose guard references parameters only, with the two guards mutually
  exclusive and exhaustive (one is the structural negation of the
  other) and branch schemas identical in names.
* **Parameter-binding completeness** — every parameter a plan artifact
  references (startup guards, shipped remote SQL) must appear in the
  statement's required-parameter set, and — when bindings are supplied —
  every required parameter must be bound.
* **Catalog resolution** — scan and seek operators must reference
  locally stored tables and existing indexes.
* **Batch-kernel discipline** — every compiled expression a batch
  operator evaluates chunk-wise (filter predicates, projection makers,
  group keys, aggregate arguments, join keys, sort keys) must expose a
  batch form that honors the length contract: probed with an empty
  chunk it must return an empty list without raising. Schema agreement
  and guard discipline are mode-independent, so the same verifier
  accepts plans for both row and batch execution.

The verifier powers the opt-in checked-execution hook
(``Server(checked_plans=True)``) and the mutation tests.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.common.types import SqlType, common_type
from repro.errors import AnalysisError, SqlError, TypeCheckError
from repro.exec.expressions import batch_form
from repro.exec.operators import (
    AggregateOp,
    DistinctOp,
    FilterOp,
    HashJoinOp,
    IndexExtremeOp,
    IndexLookupJoinOp,
    IndexRangeScanOp,
    IndexSeekOp,
    MergeJoinOp,
    NestedLoopJoinOp,
    PhysicalOperator,
    ProjectOp,
    RemoteQueryOp,
    SeqScanOp,
    SortOp,
    TopOp,
    UnionAllOp,
    ValuesOp,
)
from repro.optimizer.planner import PlannedStatement, _RelabelOp
from repro.optimizer.predicates import negate, references_parameters_only
from repro.sql import ast as sql_ast
from repro.sql import parse_statements

#: Operators that read rows from local storage by table name.
_STORAGE_OPS = (SeqScanOp, IndexSeekOp, IndexRangeScanOp, IndexExtremeOp, IndexLookupJoinOp)
#: Operators whose output schema must equal their single child's schema.
_PASSTHROUGH_OPS = (FilterOp, SortOp, TopOp, DistinctOp)
#: Binary joins whose output schema is the concatenation of both inputs.
_CONCAT_JOIN_OPS = (NestedLoopJoinOp, HashJoinOp, MergeJoinOp)


def _types_compatible(left: SqlType, right: SqlType) -> bool:
    try:
        common_type(left, right)
    except TypeCheckError:
        return False
    return True


class _BatchProbeContext:
    """Minimal execution context for probing batch kernels.

    Probes run against an empty chunk, so only the row-independent
    surface is needed: parameters (all NULL) and the clock.
    """

    def __init__(self) -> None:
        self.params: Dict[str, Any] = {}

    def param(self, name: str) -> Any:
        return None

    def now(self) -> float:
        return 0.0


def _batch_probe_targets(op: PhysicalOperator) -> Iterable[Tuple[str, Any]]:
    """(label, compiled expression) pairs a batch operator evaluates chunk-wise."""
    if isinstance(op, FilterOp) and op.predicate is not None:
        yield "Filter predicate", op.predicate
    if isinstance(op, ProjectOp):
        for position, maker in enumerate(op.makers, start=1):
            yield f"Project expression {position}", maker
    if isinstance(op, AggregateOp):
        for position, maker in enumerate(op.group_makers, start=1):
            yield f"Aggregate group key {position}", maker
        for position, spec in enumerate(op.aggregates, start=1):
            if spec.argument is not None:
                yield f"Aggregate argument {position}", spec.argument
    if isinstance(op, (HashJoinOp, MergeJoinOp)):
        for position, maker in enumerate(op.left_keys, start=1):
            yield f"join left key {position}", maker
        for position, maker in enumerate(op.right_keys, start=1):
            yield f"join right key {position}", maker
    if isinstance(op, SortOp):
        for position, (maker, _descending) in enumerate(op.sort_makers, start=1):
            yield f"Sort key {position}", maker


class PlanVerifier:
    """Checks one physical plan against the structural invariants.

    ``database`` enables the DataLocation and catalog checks;
    ``required_parameters`` enables the binding-completeness checks;
    ``params`` additionally checks that every required parameter is
    actually bound (checked execution).
    """

    def __init__(
        self,
        database: Optional[Any] = None,
        params: Optional[Dict[str, Any]] = None,
        required_parameters: Optional[Iterable[str]] = None,
    ):
        self.database = database
        self.params = params
        self.required: Optional[Set[str]] = (
            None if required_parameters is None else set(required_parameters)
        )

    # -- entry point -----------------------------------------------------

    def verify(self, root: PhysicalOperator) -> List[AnalysisError]:
        diagnostics: List[AnalysisError] = []
        referenced: List[Tuple[str, str]] = []  # (parameter, location)
        for op in root.walk():
            self._check_operator(op, self._location(op), diagnostics, referenced)
        self._check_parameters(referenced, diagnostics)
        return diagnostics

    @staticmethod
    def _location(op: PhysicalOperator) -> str:
        text = op.describe()
        return text if len(text) <= 80 else text[:77] + "..."

    def _error(
        self,
        diagnostics: List[AnalysisError],
        rule: str,
        message: str,
        location: str,
    ) -> None:
        diagnostics.append(AnalysisError(rule, message, location=location))

    # -- per-operator checks ---------------------------------------------

    def _check_operator(
        self,
        op: PhysicalOperator,
        location: str,
        diagnostics: List[AnalysisError],
        referenced: List[Tuple[str, str]],
    ) -> None:
        if isinstance(op, _PASSTHROUGH_OPS):
            child = op.children[0]
            if op.schema.columns != child.schema.columns:
                self._error(
                    diagnostics,
                    "schema-passthrough",
                    "pass-through operator output schema differs from its child's",
                    location,
                )
        if isinstance(op, FilterOp) and op.startup_guard is not None:
            if not references_parameters_only(op.startup_guard):
                self._error(
                    diagnostics,
                    "choose-plan",
                    "startup guard references columns; guards must be parameter-only",
                    location,
                )
            for name in sql_ast.expression_parameters(op.startup_guard):
                referenced.append((name, location))
        if isinstance(op, UnionAllOp):
            self._check_union(op, location, diagnostics)
        if isinstance(op, _CONCAT_JOIN_OPS):
            if len(op.children) != 2:
                self._error(
                    diagnostics, "schema-arity", "join must have exactly two inputs", location
                )
            else:
                expected = op.children[0].schema.concat(op.children[1].schema)
                if op.schema.columns != expected.columns:
                    self._error(
                        diagnostics,
                        "schema-arity",
                        "join output schema is not the concatenation of its inputs",
                        location,
                    )
        if isinstance(op, IndexLookupJoinOp):
            expected = op.children[0].schema.concat(op.right_schema)
            if op.schema.columns != expected.columns:
                self._error(
                    diagnostics,
                    "schema-arity",
                    "index-lookup join output schema is not left ++ right_schema",
                    location,
                )
            if len(op.right_positions) != len(op.right_schema):
                self._error(
                    diagnostics,
                    "schema-arity",
                    "right_positions arity differs from right_schema",
                    location,
                )
        if isinstance(op, ProjectOp) and len(op.makers) != len(op.schema):
            self._error(
                diagnostics,
                "schema-arity",
                f"Project computes {len(op.makers)} expressions "
                f"for a {len(op.schema)}-column schema",
                location,
            )
        if isinstance(op, AggregateOp):
            width = len(op.group_makers) + len(op.aggregates)
            if len(op.schema) != width:
                self._error(
                    diagnostics,
                    "schema-arity",
                    f"Aggregate produces {width} values "
                    f"for a {len(op.schema)}-column schema",
                    location,
                )
        if isinstance(op, ValuesOp):
            for makers in op.row_makers:
                if len(makers) != len(op.schema):
                    self._error(
                        diagnostics,
                        "schema-arity",
                        "Values row arity differs from schema",
                        location,
                    )
                    break
        if isinstance(op, _RelabelOp):
            child = op.children[0]
            if len(op.schema) != len(child.schema):
                self._error(
                    diagnostics, "schema-arity", "Relabel changes arity", location
                )
            else:
                for position, (out, src) in enumerate(zip(op.schema, child.schema)):
                    if not _types_compatible(out.sql_type, src.sql_type):
                        self._error(
                            diagnostics,
                            "schema-types",
                            f"Relabel changes column {position + 1} type "
                            f"({src.sql_type} -> {out.sql_type})",
                            location,
                        )
        if isinstance(op, RemoteQueryOp):
            self._check_remote(op, location, diagnostics, referenced)
        if isinstance(op, _STORAGE_OPS):
            self._check_storage(op, location, diagnostics)
        self._check_batch_kernels(op, location, diagnostics)

    def _check_batch_kernels(
        self, op: PhysicalOperator, location: str, diagnostics: List[AnalysisError]
    ) -> None:
        """Probe every chunk-wise expression's batch form on an empty chunk.

        The batch contract requires one output element per input row, so
        an empty chunk must come back as an empty list — anything else
        (including an exception) means the batch executor would produce
        results misaligned with its rows.
        """
        for label, fn in _batch_probe_targets(op):
            form = batch_form(fn)
            try:
                probed = form([], _BatchProbeContext())
            except Exception as exc:  # noqa: BLE001 — any failure is the finding
                self._error(
                    diagnostics,
                    "batch-kernel",
                    f"{label} batch form raised on an empty chunk: {exc}",
                    location,
                )
                continue
            if not isinstance(probed, list) or probed:
                self._error(
                    diagnostics,
                    "batch-kernel",
                    f"{label} batch form breaks the length contract: expected an "
                    f"empty list for an empty chunk, got {probed!r}",
                    location,
                )

    def _check_union(
        self, op: UnionAllOp, location: str, diagnostics: List[AnalysisError]
    ) -> None:
        expected = op.schema
        for branch_no, child in enumerate(op.children, start=1):
            if len(child.schema) != len(expected):
                self._error(
                    diagnostics,
                    "schema-arity",
                    f"UnionAll branch {branch_no} has {len(child.schema)} columns, "
                    f"expected {len(expected)}",
                    location,
                )
                continue
            for position, (out, branch) in enumerate(zip(expected, child.schema)):
                if out.name.lower() != branch.name.lower():
                    self._error(
                        diagnostics,
                        "schema-names",
                        f"UnionAll branch {branch_no} column {position + 1} is named "
                        f"{branch.name!r}, expected {out.name!r}",
                        location,
                    )
                elif not _types_compatible(out.sql_type, branch.sql_type):
                    self._error(
                        diagnostics,
                        "schema-types",
                        f"UnionAll branch {branch_no} column {position + 1} "
                        f"({out.name!r}) has incompatible type "
                        f"{branch.sql_type} vs {out.sql_type}",
                        location,
                    )
        if op.choose_plan:
            self._check_choose_plan(op, location, diagnostics)

    def _check_choose_plan(
        self, op: UnionAllOp, location: str, diagnostics: List[AnalysisError]
    ) -> None:
        guards: List[Optional[sql_ast.Expression]] = []
        for branch_no, child in enumerate(op.children, start=1):
            if not isinstance(child, FilterOp) or child.startup_predicate is None:
                self._error(
                    diagnostics,
                    "choose-plan",
                    f"ChoosePlan branch {branch_no} is not a startup-guarded Filter",
                    location,
                )
                return
            guards.append(child.startup_guard)
        if len(op.children) != 2:
            self._error(
                diagnostics,
                "choose-plan",
                f"ChoosePlan must have exactly two guarded branches, found {len(op.children)}",
                location,
            )
            return
        first, second = guards
        if first is None or second is None:
            self._error(
                diagnostics,
                "choose-plan",
                "ChoosePlan branch carries no guard AST; guard exclusivity is unprovable",
                location,
            )
            return
        if second != negate(first) and first != negate(second):
            self._error(
                diagnostics,
                "choose-plan",
                "ChoosePlan guards are not mutually exclusive and exhaustive "
                "(neither guard is the negation of the other)",
                location,
            )

    def _check_remote(
        self,
        op: RemoteQueryOp,
        location: str,
        diagnostics: List[AnalysisError],
        referenced: List[Tuple[str, str]],
    ) -> None:
        if op.children:
            self._error(
                diagnostics,
                "data-transfer",
                "RemoteQuery must be a leaf: remote subplans travel as SQL text, "
                "not as operator children",
                location,
            )
        if self.database is not None:
            owner = getattr(self.database, "owner_server", None)
            if owner is not None and op.server_name not in owner.linked_servers:
                self._error(
                    diagnostics,
                    "catalog",
                    f"unknown linked server {op.server_name!r}",
                    location,
                )
        try:
            statements = parse_statements(op.sql_text)
        except SqlError as exc:
            self._error(
                diagnostics,
                "data-transfer",
                f"shipped remote SQL does not parse: {exc}",
                location,
            )
            return
        for statement in statements:
            for name in sql_ast.statement_parameters(statement):
                referenced.append((name, location))

    def _check_storage(
        self, op: PhysicalOperator, location: str, diagnostics: List[AnalysisError]
    ) -> None:
        if self.database is None:
            return
        table_name = getattr(op, "table_name", "")
        if self.database.is_remote_table(table_name):
            self._error(
                diagnostics,
                "data-location",
                f"local operator reads remote table {table_name!r} without a "
                "DataTransfer boundary",
                location,
            )
            return
        if not self.database.has_storage(table_name):
            self._error(
                diagnostics,
                "catalog",
                f"no local storage for table {table_name!r}",
                location,
            )
            return
        index_name = getattr(op, "index_name", None)
        if index_name:
            storage = self.database.storage_table(table_name)
            if index_name not in storage.indexes:
                self._error(
                    diagnostics,
                    "catalog",
                    f"unknown index {index_name!r} on table {table_name!r}",
                    location,
                )

    # -- parameter completeness ------------------------------------------

    def _check_parameters(
        self,
        referenced: List[Tuple[str, str]],
        diagnostics: List[AnalysisError],
    ) -> None:
        if self.required is None:
            return
        reported: Set[str] = set()
        for name, location in referenced:
            if name in self.required or name in reported:
                continue
            if self.params is not None and name in self.params:
                continue
            reported.add(name)
            self._error(
                diagnostics,
                "plan-params",
                f"plan references parameter @{name} outside the statement's "
                "required-parameter set",
                location,
            )
        if self.params is not None:
            for name in sorted(self.required - set(self.params)):
                self._error(
                    diagnostics,
                    "plan-params",
                    f"required parameter @{name} is unbound",
                    "parameter bindings",
                )


def verify_plan(
    plan: Union[PlannedStatement, PhysicalOperator],
    database: Optional[Any] = None,
    params: Optional[Dict[str, Any]] = None,
) -> List[AnalysisError]:
    """Verify a plan; returns all diagnostics (empty when clean).

    Accepts either a :class:`PlannedStatement` (enables the
    parameter-completeness checks via its required-parameter set) or a
    bare operator tree.
    """
    if isinstance(plan, PlannedStatement):
        verifier = PlanVerifier(database, params, plan.required_parameters)
        diagnostics = verifier.verify(plan.root)
        if len(plan.schema) != len(plan.root.schema):
            diagnostics.insert(
                0,
                AnalysisError(
                    "schema-arity",
                    "planned statement schema arity differs from the root operator",
                    location="plan root",
                ),
            )
        return diagnostics
    return PlanVerifier(database, params).verify(plan)


def check_plan(
    plan: Union[PlannedStatement, PhysicalOperator],
    database: Optional[Any] = None,
    params: Optional[Dict[str, Any]] = None,
) -> None:
    """Checked execution: raise the first error-severity diagnostic."""
    for diagnostic in verify_plan(plan, database, params):
        if diagnostic.is_error:
            raise diagnostic
