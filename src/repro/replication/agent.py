"""Distribution agents: periodic push of pending transactions.

A push agent wakes up on its polling interval, reads the distribution
database past its subscription's watermark and applies complete
transactions in commit order (§2.2). The agent is driven by virtual time:
``run_due(now)`` fires only when the poll interval has elapsed, which is
what gives replication its characteristic sub-second-to-seconds latency in
the paper's Experiment 3.

Each poll batches *all* pending transactions into one subscriber round
trip (commit order preserved) and applies them through the subscription's
prepared applier, so a burst of N backend commits costs one trip plus N
lightweight applies instead of N full trips — the replication leg of the
statement fast path.
"""

from __future__ import annotations

from typing import Optional

from repro.obs import replication_metrics
from repro.replication.distributor import Distributor
from repro.replication.subscription import Subscription


class DistributionAgent:
    """A push agent serving one subscription."""

    def __init__(
        self,
        subscription: Subscription,
        distributor: Distributor,
        poll_interval: float = 0.25,
        mode: str = "push",
    ):
        """``mode`` follows SQL Server terminology (§2.2): a *push* agent
        runs on the distributor machine, a *pull* agent on the subscriber.
        Functionally identical; the cluster simulator charges the apply
        CPU to the corresponding machine."""
        if mode not in ("push", "pull"):
            raise ValueError(f"agent mode must be 'push' or 'pull', not {mode!r}")
        self.subscription = subscription
        self.distributor = distributor
        self.poll_interval = poll_interval
        self.mode = mode
        self.last_poll_time: float = float("-inf")
        self.transactions_applied = 0
        self.commands_applied = 0
        # Round trips actually made vs. avoided by batching: a poll that
        # applies N pending transactions in one trip saves N - 1.
        self.round_trips = 0
        self.round_trips_saved = 0
        # Last applied transaction, recorded per agent for observability:
        # the subscriber's "how far am I" answer (LSN analogue + commit
        # timestamp + origin transaction + apply wall-clock).
        self.last_applied_sequence: int = 0
        self.last_applied_commit_ts: Optional[float] = None
        self.last_applied_origin_id: Optional[int] = None
        self.last_apply_time: Optional[float] = None
        # Resilience state: a stalled agent (fault injection, admin) skips
        # applying but keeps its schedule; apply failures are counted and
        # contained by the deployment loop — the watermark makes the next
        # poll re-deliver the unapplied suffix.
        self.stalled = False
        self.apply_failures = 0

    def stall(self) -> None:
        self.stalled = True

    def resume(self) -> None:
        self.stalled = False

    def subscriber_available(self) -> bool:
        """False while the subscriber's server is crashed."""
        server = getattr(self.subscription.subscriber_database, "owner_server", None)
        return server is None or getattr(server, "available", True)

    def due(self, now: float) -> bool:
        return now - self.last_poll_time >= self.poll_interval

    def run_due(self, now: float) -> int:
        """Poll if the interval has elapsed; returns transactions applied."""
        if not self.due(now):
            return 0
        return self.poll(now)

    def poll(self, now: Optional[float] = None) -> int:
        """Apply all pending transactions regardless of schedule.

        The whole backlog goes to the subscriber as one batched round
        trip in commit order; the savings are credited to the subscriber
        server's work counters so benchmarks and the cluster simulator
        can see them.
        """
        if now is not None:
            self.last_poll_time = now
        if self.stalled or not self.subscriber_available():
            # Outage: nothing is applied and the watermark stays put, so
            # the distributor retains everything past it (its cleanup
            # low-water mark is the min over subscriptions). Lag gauges
            # keep climbing — the operator-visible symptom.
            replication_metrics.update_lag_gauges(self, now=now)
            return 0
        pending = self.distributor.distribution_db.read_after(
            self.subscription.last_sequence
        )
        if not pending:
            # Idle poll: lag gauges still move (age keeps growing).
            replication_metrics.update_lag_gauges(self, now=now)
            return 0
        try:
            self.commands_applied += self.subscription.apply_batch(pending)
        except Exception:
            # The failed transaction was undone and the watermark points
            # at the last fully-applied one; re-raise so the caller (the
            # deployment tick) can count and contain the failure.
            self.apply_failures += 1
            replication_metrics.update_lag_gauges(self, now=now)
            raise
        self.transactions_applied += len(pending)
        self.round_trips += 1
        newest = pending[-1]
        self.last_applied_sequence = newest.sequence
        self.last_applied_commit_ts = newest.commit_timestamp
        self.last_applied_origin_id = newest.origin_transaction_id
        self.last_apply_time = self.subscription.last_apply_time
        saved = len(pending) - 1
        self.round_trips_saved += saved
        if saved:
            server = getattr(self.subscription.subscriber_database, "owner_server", None)
            if server is not None:
                server.total_work.round_trips_saved += saved
        replication_metrics.record_batch(self, len(pending), now=now)
        return len(pending)

    def last_applied(self) -> dict:
        """Snapshot of the newest applied transaction (satellite API)."""
        return {
            "subscription": self.subscription.name,
            "sequence": self.last_applied_sequence,
            "commit_timestamp": self.last_applied_commit_ts,
            "origin_transaction_id": self.last_applied_origin_id,
            "applied_at": self.last_apply_time,
        }
