"""E9 — overload robustness: goodput at 4x saturation, rejection cost.

Three numbers characterize the admission-control tier:

* **Goodput retention** — with bounded queues, completed interactions per
  second at 4x the saturation load stay at >= 70% of the saturated peak
  (the acceptance gate), while the unbounded control backs queues up and
  lets latency explode.
* **Shed fraction** — how much of the 4x offered load is turned away
  (visibly, with ``OverloadError``; never a write).
* **Rejection cost** — an admission decision is a handful of arithmetic
  operations on scalar state, so shedding is *cheap*: the tier spends
  microseconds saying no, not seconds queueing work it will never finish.
"""

from __future__ import annotations

import time

from benchmarks.conftest import emit
from repro.common.clock import SimulatedClock
from repro.resilience import AdmissionController
from repro.simulation import DESConfig, simulate_cluster
from repro.simulation.des import saturating_users

QUEUE_LIMIT = 32


def test_bench_overload_goodput_at_4x(cal_cached, benchmark, capsys, bench_recorder):
    base = DESConfig(users=8, mix_name="Shopping", servers=1, duration=30, warmup=6)
    saturated_users, peak = saturating_users(
        cal_cached, base, latency_limit=3.0, max_users=2000
    )

    def run(queue_limit):
        return simulate_cluster(
            cal_cached,
            DESConfig(
                users=4 * saturated_users,
                mix_name="Shopping",
                servers=1,
                duration=50,
                warmup=10,
                queue_limit=queue_limit,
            ),
        )

    bounded = benchmark.pedantic(lambda: run(QUEUE_LIMIT), rounds=1, iterations=1)
    unbounded = run(None)

    offered = bounded.completed + bounded.shed_interactions
    shed_fraction = bounded.shed_interactions / max(1, offered)
    goodput_ratio = bounded.wips / peak.wips
    emit(
        capsys,
        "E9: 4x saturation, bounded vs unbounded queues (DES, Shopping)",
        [
            f"saturation point    {saturated_users:6d} users "
            f"({peak.wips:.1f} WIPS, p90 {peak.p90_latency:.2f}s)",
            f"bounded   (q={QUEUE_LIMIT:2d})   {bounded.wips:8.1f} WIPS  "
            f"p90 {bounded.p90_latency:6.2f}s  shed {shed_fraction:6.1%}  "
            f"depth peak {bounded.queue_depth_peak}",
            f"unbounded          {unbounded.wips:8.1f} WIPS  "
            f"p90 {unbounded.p90_latency:6.2f}s  shed {0:6.1%}  "
            f"depth peak {unbounded.queue_depth_peak}",
            f"goodput retention  {goodput_ratio:8.1%}  (gate: >= 70%)",
        ],
    )
    bench_recorder.record(
        "overload_4x_saturation",
        saturated_users=saturated_users,
        peak_wips=round(peak.wips, 2),
        bounded_wips=round(bounded.wips, 2),
        unbounded_wips=round(unbounded.wips, 2),
        goodput_ratio=round(goodput_ratio, 4),
        shed_fraction=round(shed_fraction, 4),
        bounded_p90_s=round(bounded.p90_latency, 3),
        unbounded_p90_s=round(unbounded.p90_latency, 3),
        bounded_depth_peak=bounded.queue_depth_peak,
        unbounded_depth_peak=unbounded.queue_depth_peak,
    )
    assert goodput_ratio >= 0.7
    assert bounded.shed_interactions > 0
    assert bounded.shed_writes == 0
    assert bounded.queue_depth_peak <= QUEUE_LIMIT + 8
    assert unbounded.queue_depth_peak > QUEUE_LIMIT
    assert unbounded.p90_latency > bounded.p90_latency


def test_bench_admission_decision_cost(benchmark, capsys, bench_recorder):
    """The whole point of shedding up front: a rejection costs about as
    much as a dict lookup, not a queue residence."""
    clock = SimulatedClock()
    gate = AdmissionController(clock, rate=1000.0, burst=50.0)
    decisions = 2000

    def storm():
        # Offered at 2x the admit rate: roughly half the decisions shed.
        for _ in range(decisions):
            gate.try_admit()
            clock.advance(0.0005)

    best = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        storm()
        best = min(best, time.perf_counter() - started)
    us_per_decision = best / decisions * 1e6

    benchmark.pedantic(storm, rounds=1, iterations=1)
    shed_fraction = gate.shed / max(1, gate.admitted + gate.shed)
    emit(
        capsys,
        "E9: admission decision cost (2x offered rate)",
        [
            f"decisions           {decisions * 4:10,d}",
            f"cost per decision   {us_per_decision:10.2f} us",
            f"shed fraction       {shed_fraction:10.1%}",
        ],
    )
    bench_recorder.record(
        "overload_admission_cost",
        us_per_decision=round(us_per_decision, 3),
        shed_fraction=round(shed_fraction, 4),
    )
    # Loose wall-clock gate: a decision is scalar arithmetic, so even a
    # slow CI box lands orders of magnitude under a millisecond.
    assert us_per_decision < 200.0
    assert 0.0 < shed_fraction < 1.0
