"""Sharding-policy coverage lint: verify what the policy *claims*.

The :class:`~repro.sharding.policy.ShardingPolicy` is declarative — it
asserts that ``getBook`` is a single-key lookup, that the search
procedures decompose for scatter-gather, that item partitions on
``i_id``. The router trusts none of it at runtime (every unroutable
statement silently falls back to the backend), which is safe but makes a
stale policy invisible: a renamed parameter or an added subquery quietly
turns a scatter route into 100% backend traffic.

This pass re-derives each claim against the real catalog, with the same
machinery the router uses (:func:`repro.sharding.scatter.decompose`,
the procedure parameter list), and reports every route that would fall
back. :func:`check_partitioner` separately verifies the geometric
invariant routing correctness rests on: a partitioner's slices tile the
key domain exactly — no gaps, no overlaps — after any sequence of
rebalance operations.
"""

from __future__ import annotations

from typing import List

from repro.engine.locks import _procedure_writes
from repro.errors import AnalysisError
from repro.sharding.policy import ROUTE_KEY, ROUTE_SCATTER, ShardingPolicy
from repro.sharding.ring import RangePartitioner
from repro.sharding.scatter import decompose
from repro.sql import ast as sqlast


def lint_sharding_policy(policy: ShardingPolicy, catalog) -> List[AnalysisError]:
    """Verify every route and partition claim against the catalog."""
    diagnostics: List[AnalysisError] = []
    copied = {name.lower() for name in policy.procedures}

    for table_key, partition in sorted(policy.partitions.items()):
        where = f"policy.partitions[{table_key!r}]"
        table = catalog.tables.get(partition.table.lower())
        if table is None:
            diagnostics.append(
                AnalysisError(
                    "shard-partition-table",
                    f"partitioned table {partition.table!r} is not in the catalog",
                    location=where,
                )
            )
            continue
        columns = {column.name.lower() for column in table.schema.columns}
        if partition.key_column.lower() not in columns:
            diagnostics.append(
                AnalysisError(
                    "shard-partition-key",
                    f"partition key {partition.key_column!r} is not a column "
                    f"of {partition.table!r}",
                    location=where,
                )
            )
        if partition.table.lower() not in {t.lower() for t in policy.shadow_tables}:
            diagnostics.append(
                AnalysisError(
                    "shard-shadow-coverage",
                    f"partitioned table {partition.table!r} is missing from "
                    "shadow_tables; shard-local SELECTs over it would never "
                    "route",
                    location=where,
                )
            )

    for name, route in sorted(policy.routes.items()):
        where = f"policy.routes[{name!r}]"
        procedure = catalog.procedures.get(name.lower())
        if procedure is None:
            diagnostics.append(
                AnalysisError(
                    "shard-route-procedure",
                    f"route names unknown procedure {name!r}",
                    location=where,
                )
            )
            continue
        if route.kind not in (ROUTE_KEY, ROUTE_SCATTER):
            continue
        if name.lower() not in copied:
            diagnostics.append(
                AnalysisError(
                    "shard-route-copy",
                    f"procedure {name!r} routes to shards but is not in "
                    "policy.procedures, so shards never receive its "
                    "definition — every call would fall back",
                    location=where,
                )
            )
        if _procedure_writes(procedure.body, catalog, {name.lower()}):
            diagnostics.append(
                AnalysisError(
                    "shard-route-writes",
                    f"procedure {name!r} writes; writes must route to the "
                    "backend (the replication stream is one-directional)",
                    location=where,
                )
            )
        if route.kind == ROUTE_KEY:
            params = {param.name.lower() for param in procedure.params}
            if route.key_param is None or route.key_param.lower() not in params:
                diagnostics.append(
                    AnalysisError(
                        "shard-route-key",
                        f"key route for {name!r} names parameter "
                        f"{route.key_param!r}, which the procedure does not "
                        "declare; every call would fall back to the backend",
                        location=where,
                    )
                )
            if route.table is None or route.table.lower() not in policy.partitions:
                diagnostics.append(
                    AnalysisError(
                        "shard-route-key",
                        f"key route for {name!r} keys on {route.table!r}, "
                        "which is not a partitioned table",
                        location=where,
                    )
                )
        elif route.kind == ROUTE_SCATTER:
            body = procedure.body
            if len(body) != 1 or not isinstance(body[0], sqlast.Select):
                diagnostics.append(
                    AnalysisError(
                        "shard-route-scatter",
                        f"scatter route for {name!r} needs a single-SELECT "
                        f"body (it has {len(body)} statement(s)); every call "
                        "would silently fall back to the backend",
                        location=where,
                    )
                )
            elif decompose(body[0], policy.partitions) is None:
                diagnostics.append(
                    AnalysisError(
                        "shard-route-scatter",
                        f"scatter route for {name!r} does not decompose "
                        "(aggregation, subquery, multiple partitioned "
                        "tables, or a non-literal TOP); every call would "
                        "silently fall back to the backend",
                        location=where,
                    )
                )

    diagnostics += check_partitioner_domain(policy)
    return diagnostics


def check_partitioner(partitioner: RangePartitioner) -> List[AnalysisError]:
    """Do the slices tile ``[low, high]`` exactly (no gap, no overlap)?"""
    diagnostics: List[AnalysisError] = []
    slices = sorted(
        (partitioner.slice(shard), shard)
        for shard in partitioner.shards
        if partitioner.slice(shard)[0] <= partitioner.slice(shard)[1]
    )
    if not slices:
        return [
            AnalysisError(
                "shard-domain-coverage",
                "partitioner has no non-empty slices; every key is unowned",
            )
        ]
    expected = partitioner.low
    for (low, high), shard in slices:
        if low > expected:
            diagnostics.append(
                AnalysisError(
                    "shard-domain-coverage",
                    f"keys [{expected}, {low - 1}] are owned by no shard "
                    f"(gap before {shard!r})",
                )
            )
        elif low < expected:
            diagnostics.append(
                AnalysisError(
                    "shard-domain-overlap",
                    f"keys [{low}, {min(high, expected - 1)}] have two "
                    f"owners (overlap at {shard!r})",
                )
            )
        expected = max(expected, high + 1)
    if expected <= partitioner.high:
        diagnostics.append(
            AnalysisError(
                "shard-domain-coverage",
                f"keys [{expected}, {partitioner.high}] are owned by no shard "
                "(domain tail uncovered)",
            )
        )
    return diagnostics


def check_partitioner_domain(policy: ShardingPolicy) -> List[AnalysisError]:
    """Exercise partitioner geometry over the policy's key domain.

    Builds throwaway partitioners for 1-4 shards over ``key_domain`` and
    re-checks tiling after a split (``plan_split`` + ``add_shard`` +
    ``set_slice``) and an atomic ``move_boundary`` — the two mutation
    sequences rebalancing performs.
    """
    low, high = policy.key_domain
    diagnostics: List[AnalysisError] = []
    for count in range(1, 5):
        if high - low + 1 < count:
            break
        names = [f"s{i}" for i in range(count)]
        partitioner = RangePartitioner(names, low, high)
        diagnostics += check_partitioner(partitioner)
        donor = partitioner.widest_shard()
        if partitioner.slice(donor)[1] > partitioner.slice(donor)[0]:
            keep, give = partitioner.plan_split(donor)
            partitioner.add_shard("split", *give)
            partitioner.set_slice(donor, *keep)
            diagnostics += check_partitioner(partitioner)
        if count >= 2:
            fresh = RangePartitioner(names, low, high)
            left, right = fresh.shards[0], fresh.shards[1]
            cut = fresh.slice(left)[0] + (fresh.slice(right)[1] - fresh.slice(left)[0]) // 3
            fresh.move_boundary(left, right, cut)
            diagnostics += check_partitioner(fresh)
    return diagnostics
