"""The server: statement dispatch, plan cache, linked-server endpoint.

One :class:`Server` instance models one SQL Server. It accepts SQL text
(or pre-parsed ASTs from stored procedures), plans SELECTs through the
MTCache-extended optimizer with a version-checked plan cache, executes DML
locally or forwards it to the backend (the transparent-update rule), runs
stored procedures locally or forwards the call, and serves as a linked
server for other instances' remote subexpressions.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.common.clock import SimulatedClock
from repro.engine.database import Database
from repro.engine.ddl import (
    execute_create_index,
    execute_create_procedure,
    execute_create_table,
    execute_create_view,
    execute_drop,
    execute_grant,
)
from repro.engine.dml import execute_delete, execute_insert, execute_update
from repro.engine.procedures import ProcedureInterpreter
from repro.engine.results import Result
from repro.engine.session import Session
from repro.errors import CatalogError, ExecutionError, TransactionError
from repro.exec.context import ExecutionContext, WorkCounters
from repro.optimizer.cost import CostModel
from repro.optimizer.planner import Optimizer, PlannedStatement
from repro.sql import ast, parse_statements
from repro.sql.formatter import format_statement


class Server:
    """A database server instance (backend or mid-tier cache)."""

    def __init__(
        self,
        name: str,
        clock: Optional[SimulatedClock] = None,
        cost_model: Optional[CostModel] = None,
        optimizer_options: Optional[Dict[str, Any]] = None,
    ):
        from repro.distributed.linked_server import LinkedServerRegistry

        self.name = name
        self.clock = clock or SimulatedClock()
        self.cost_model = cost_model or CostModel()
        self.optimizer_options = dict(optimizer_options or {})
        self.databases: Dict[str, Database] = {}
        self.default_database: Optional[str] = None
        self.linked_servers = LinkedServerRegistry()
        self._optimizers: Dict[str, Tuple[int, Optimizer]] = {}
        self._plan_cache: Dict[Tuple[str, Any], Tuple[int, PlannedStatement]] = {}
        # Cumulative work executed on this server (simulator calibration).
        self.total_work = WorkCounters()
        self.statements_executed = 0

    # -- databases -----------------------------------------------------------

    def create_database(self, name: str, make_default: bool = True) -> Database:
        if name.lower() in self.databases:
            raise CatalogError(f"database {name!r} already exists")
        database = Database(name, clock=self.clock)
        database.owner_server = self
        self.databases[name.lower()] = database
        if make_default or self.default_database is None:
            self.default_database = name.lower()
        return database

    def database(self, name: Optional[str] = None) -> Database:
        key = (name or self.default_database or "").lower()
        database = self.databases.get(key)
        if database is None:
            raise CatalogError(f"no database {name or '(default)'!r} on server {self.name!r}")
        return database

    def optimizer_for(self, database: Database) -> Optimizer:
        cached = self._optimizers.get(database.name.lower())
        if cached is not None and cached[0] == database.version:
            return cached[1]
        optimizer = Optimizer(
            database, cost_model=self.cost_model, **self.optimizer_options
        )
        self._optimizers[database.name.lower()] = (database.version, optimizer)
        return optimizer

    # -- public execution API --------------------------------------------------

    def execute(
        self,
        sql: str,
        params: Optional[Dict[str, Any]] = None,
        session: Optional[Session] = None,
        database: Optional[str] = None,
    ) -> Result:
        """Execute a SQL batch; returns the last statement's result."""
        session = session or Session()
        target = self.database(database or session.database)
        statements = parse_statements(sql)
        if not statements:
            return Result()
        result = Result()
        for statement in statements:
            result = self.execute_statement(
                statement, params=params, session=session, database=target
            )
        return result

    def execute_statement(
        self,
        statement: ast.Statement,
        params: Optional[Dict[str, Any]] = None,
        session: Optional[Session] = None,
        database: Optional[Database] = None,
    ) -> Result:
        session = session or Session()
        database = database or self.database(session.database)
        merged = session.merged_params(params)
        self.statements_executed += 1

        if isinstance(statement, ast.Select):
            return self._execute_select(statement, merged, database, session)
        if isinstance(statement, ast.UnionAll):
            return self._execute_union(statement, merged, database, session)
        if isinstance(statement, ast.Explain):
            planned = self.plan_select(statement.statement, database)
            from repro.common.schema import Column, Schema
            from repro.common.types import VARCHAR

            lines = planned.explain(costs=statement.costs).splitlines()
            schema = Schema([Column("plan", VARCHAR(None))])
            return Result(
                rows=[(line,) for line in lines],
                schema=schema,
                rowcount=len(lines),
            )
        if isinstance(statement, (ast.Insert, ast.Update, ast.Delete)):
            return self._execute_dml(statement, merged, database, session)
        if isinstance(statement, ast.Execute):
            return self._execute_procedure_call(statement, merged, database, session)
        if isinstance(statement, ast.CreateTable):
            return execute_create_table(database, statement)
        if isinstance(statement, ast.CreateIndex):
            return execute_create_index(database, statement)
        if isinstance(statement, ast.CreateView):
            runner = lambda select: self._run_select_rows(select, merged, database, session)  # noqa: E731
            return execute_create_view(database, statement, select_runner=runner)
        if isinstance(statement, ast.CreateProcedure):
            return execute_create_procedure(database, statement)
        if isinstance(statement, ast.DropObject):
            return execute_drop(database, statement)
        if isinstance(statement, ast.Grant):
            return execute_grant(database, statement)
        if isinstance(statement, ast.BeginTransaction):
            database.transactions.begin()
            session.in_transaction = True
            return Result(messages=["transaction started"])
        if isinstance(statement, ast.CommitTransaction):
            database.transactions.commit()
            session.in_transaction = False
            return Result(messages=["transaction committed"])
        if isinstance(statement, ast.RollbackTransaction):
            database.transactions.rollback()
            session.in_transaction = False
            return Result(messages=["transaction rolled back"])
        if isinstance(statement, ast.Declare):
            value = None
            if statement.initial is not None:
                value = self._evaluate_scalar(statement.initial, merged, database, session)
            session.variables[statement.name] = value
            return Result()
        if isinstance(statement, ast.SetVariable):
            session.variables[statement.name] = self._evaluate_scalar(
                statement.value, merged, database, session
            )
            return Result()
        if isinstance(statement, ast.PrintStatement):
            value = self._evaluate_scalar(statement.value, merged, database, session)
            return Result(messages=[str(value)])
        raise ExecutionError(f"cannot execute {type(statement).__name__} at session level")

    # -- SELECT ---------------------------------------------------------------

    def plan_select(
        self,
        statement: ast.Select,
        database: Database,
        cache_key: Optional[Any] = None,
    ) -> PlannedStatement:
        """Plan a SELECT with version-checked caching.

        Dynamic plans make this cache effective for parameterized queries:
        one plan serves every parameter value, choosing its branch at run
        time via startup predicates instead of re-optimizing.

        The default cache key is the statement AST itself: AST nodes are
        frozen dataclasses with structural equality, so textually equal
        statements share a plan (and, unlike ``id()``, keys can never be
        recycled onto a different statement).
        """
        key = (database.name.lower(), cache_key if cache_key is not None else statement)
        cached = self._plan_cache.get(key)
        if cached is not None and cached[0] == database.version:
            return cached[1]
        planned = self.optimizer_for(database).plan_select(statement)
        self._plan_cache[key] = (database.version, planned)
        return planned

    def _execute_select(
        self,
        statement: ast.Select,
        params: Dict[str, Any],
        database: Database,
        session: Session,
    ) -> Result:
        self._check_select_permissions(statement, database, session)
        planned = self.plan_select(statement, database)
        ctx = self._make_context(params, database, session)
        rows = list(planned.root.execute(ctx))
        ctx.work.rows_returned = len(rows)
        self.total_work.merge(ctx.work)
        result = Result(rows=rows, schema=planned.schema, rowcount=len(rows))
        result.resultsets.append((planned.schema, rows))
        return result

    def _execute_union(
        self,
        statement: ast.UnionAll,
        params: Dict[str, Any],
        database: Database,
        session: Session,
    ) -> Result:
        """UNION ALL: concatenate branch results (bag semantics).

        Each branch routes independently — one side may come from a cached
        view while another ships to the backend.
        """
        rows: List[Tuple] = []
        schema = None
        for branch in statement.branches:
            result = self._execute_select(branch, params, database, session)
            if schema is None:
                schema = result.schema
            elif len(result.schema) != len(schema):
                raise ExecutionError(
                    "UNION ALL branches must produce the same number of columns"
                )
            rows.extend(result.rows)
        final = Result(rows=rows, schema=schema, rowcount=len(rows))
        final.resultsets.append((schema, rows))
        return final

    def _run_select_rows(self, select, params, database, session):
        result = self._execute_select(select, params, database, session)
        return result.rows, result.schema

    def run_subquery(
        self,
        select: ast.Select,
        params: Dict[str, Any],
        database: Database,
        session: Session,
    ) -> List[Tuple]:
        planned = self.plan_select(select, database)
        ctx = self._make_context(params, database, session)
        rows = list(planned.root.execute(ctx))
        self.total_work.merge(ctx.work)
        return rows

    def _make_context(
        self, params: Dict[str, Any], database: Database, session: Session
    ) -> ExecutionContext:
        ctx = ExecutionContext(
            database=database,
            params=params,
            linked_servers=self.linked_servers,
            clock=self.clock,
        )
        ctx.subquery_executor = lambda select, sub_params: self.run_subquery(
            select, sub_params, database, session
        )
        return ctx

    def _evaluate_scalar(self, expression, params, database, session):
        from repro.common.schema import Schema
        from repro.exec.expressions import ExpressionCompiler

        ctx = self._make_context(params, database, session)
        return ExpressionCompiler(Schema(())).compile(expression)((), ctx)

    # -- DML --------------------------------------------------------------------

    def _execute_dml(
        self,
        statement,
        params: Dict[str, Any],
        database: Database,
        session: Session,
    ) -> Result:
        target = statement.table.object_name
        permission = {
            ast.Insert: "INSERT",
            ast.Update: "UPDATE",
            ast.Delete: "DELETE",
        }[type(statement)]
        database.catalog.permissions.check(permission, target, session.principal)

        # Transparent forwarding: shadow tables and four-part names update
        # the real table on the owning server (paper §5: "all insert,
        # delete and update requests ... immediately converted to remote").
        server_name = statement.table.server
        if server_name is None and database.is_remote_table(target):
            server_name = database.backend_server
        if server_name is not None:
            link = self.linked_servers.get(server_name)
            stripped = self._strip_server_prefix(statement)
            return link.execute_statement_text(format_statement(stripped), params)

        ctx = self._make_context(params, database, session)
        autocommit = not session.in_transaction
        transaction = (
            database.transactions.begin()
            if autocommit
            else database.transactions.current
        )
        if transaction is None:
            raise TransactionError("no active transaction for DML")
        try:
            if isinstance(statement, ast.Insert):
                runner = lambda select: self._run_select_rows(  # noqa: E731
                    select, params, database, session
                )
                result = execute_insert(database, statement, ctx, transaction, runner)
            elif isinstance(statement, ast.Update):
                result = execute_update(database, statement, ctx, transaction)
            else:
                result = execute_delete(database, statement, ctx, transaction)
        except Exception:
            if autocommit:
                database.transactions.rollback(transaction)
            raise
        if autocommit:
            database.transactions.commit(transaction)
        self.total_work.merge(ctx.work)
        return result

    @staticmethod
    def _strip_server_prefix(statement):
        """Remove the linked-server part from a DML target name."""
        table = statement.table
        if len(table.parts) >= 2:
            new_table = ast.TableName((table.parts[-1],), table.alias)
        else:
            new_table = table
        if isinstance(statement, ast.Insert):
            return ast.Insert(new_table, statement.columns, statement.rows, statement.select)
        if isinstance(statement, ast.Update):
            return ast.Update(new_table, statement.assignments, statement.where)
        return ast.Delete(new_table, statement.where)

    # -- procedures ---------------------------------------------------------------

    def _execute_procedure_call(
        self,
        statement: ast.Execute,
        params: Dict[str, Any],
        database: Database,
        session: Session,
    ) -> Result:
        name = statement.procedure[-1]
        explicit_server = statement.procedure[0] if len(statement.procedure) == 4 else None
        procedure = database.catalog.maybe_procedure(name)

        if procedure is not None and explicit_server is None:
            database.catalog.permissions.check("EXECUTE", name, session.principal)
            interpreter = ProcedureInterpreter(self, database, session)
            result = interpreter.call(procedure, list(statement.arguments), params)
            return result

        # Transparent forwarding of the call (paper §5.2): evaluate the
        # arguments locally, ship EXEC with literal values.
        server_name = explicit_server or database.backend_server
        if server_name is None:
            raise CatalogError(f"no procedure {name!r} and no backend server to forward to")
        link = self.linked_servers.get(server_name)
        literal_args = []
        for arg_name, expression in statement.arguments:
            value = self._evaluate_scalar(expression, params, database, session)
            literal_args.append((arg_name, ast.Literal(value)))
        forwarded = ast.Execute((name,), tuple(literal_args))
        return link.execute_statement_text(format_statement(forwarded), {})

    # -- linked-server endpoint -------------------------------------------------

    def execute_remote_sql(self, sql: str, params: Optional[Dict[str, Any]] = None) -> Result:
        """Entry point used by other servers' RemoteQueryOps and DML
        forwarding. The shipped SQL is re-parsed and re-optimized here,
        as the paper notes must happen when plans cannot be shipped."""
        return self.execute(sql, params=params)

    # -- permissions ---------------------------------------------------------------

    def _check_select_permissions(
        self, statement: ast.Select, database: Database, session: Session
    ) -> None:
        if session.principal.lower() == "dbo":
            return

        def visit_ref(ref: Optional[ast.TableRef]) -> None:
            if ref is None:
                return
            if isinstance(ref, ast.JoinRef):
                visit_ref(ref.left)
                visit_ref(ref.right)
            elif isinstance(ref, ast.DerivedTable):
                visit_select(ref.select)
            elif isinstance(ref, ast.TableName):
                database.catalog.permissions.check(
                    "SELECT", ref.object_name, session.principal
                )

        def visit_select(select: ast.Select) -> None:
            visit_ref(select.from_clause)

        visit_select(statement)

    def reset_work(self) -> None:
        """Zero the cumulative work counters (between calibration runs)."""
        self.total_work = WorkCounters()
        self.statements_executed = 0

    def __repr__(self) -> str:
        return f"<Server {self.name} databases={list(self.databases)}>"
