"""Hand-written lexer for the T-SQL subset.

Produces a flat list of :class:`Token`. Keywords are recognised
case-insensitively but identifiers preserve their original spelling.
``@name`` produces a PARAMETER token (T-SQL parameter/variable marker).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.errors import LexError


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    PARAMETER = "parameter"  # @name
    OPERATOR = "operator"
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    DOT = "."
    SEMICOLON = ";"
    STAR = "*"
    EOF = "eof"


#: Reserved words recognised as keywords (uppercased).
KEYWORDS = frozenset(
    """
    SELECT FROM WHERE GROUP BY HAVING ORDER ASC DESC TOP DISTINCT ALL
    INSERT INTO VALUES UPDATE SET DELETE
    CREATE TABLE INDEX VIEW MATERIALIZED CACHED UNIQUE CLUSTERED DROP
    PROCEDURE PROC EXEC EXECUTE AS BEGIN END DECLARE RETURN IF ELSE WHILE
    PRINT
    JOIN INNER LEFT RIGHT FULL OUTER CROSS ON
    AND OR NOT NULL IS IN EXISTS BETWEEN LIKE CASE WHEN THEN
    UNION EXCEPT INTERSECT
    PRIMARY KEY FOREIGN REFERENCES NOT DEFAULT CHECK CONSTRAINT
    INT INTEGER BIGINT FLOAT REAL NUMERIC DECIMAL VARCHAR CHAR DATE DATETIME BIT
    TRANSACTION TRAN COMMIT ROLLBACK
    EXPLAIN
    WITH FRESHNESS SECONDS MINUTES
    GRANT REVOKE TO
    COUNT SUM AVG MIN MAX
    """.split()
)

_OPERATOR_START = "=<>!+-*/%"
_TWO_CHAR_OPERATORS = {"<=", ">=", "<>", "!=", "=="}


@dataclass(frozen=True)
class Token:
    """A lexical token with position information for error messages."""

    type: TokenType
    value: str
    line: int
    column: int

    def is_keyword(self, *words: str) -> bool:
        """Return True if this token is one of the given keywords."""
        return self.type is TokenType.KEYWORD and self.value in words

    def __repr__(self) -> str:
        return f"Token({self.type.name}, {self.value!r})"


class Lexer:
    """Scans SQL text into tokens."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    def tokens(self) -> List[Token]:
        """Scan the whole input and return the token list (EOF-terminated)."""
        result: List[Token] = []
        while True:
            token = self._next_token()
            result.append(token)
            if token.type is TokenType.EOF:
                return result

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index < len(self.text):
            return self.text[index]
        return ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.text):
                if self.text[self.pos] == "\n":
                    self.line += 1
                    self.column = 1
                else:
                    self.column += 1
                self.pos += 1

    def _skip_whitespace_and_comments(self) -> None:
        while self.pos < len(self.text):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "-" and self._peek(1) == "-":
                while self.pos < len(self.text) and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.text):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise LexError("unterminated block comment", self.line, self.column)
            else:
                return

    def _next_token(self) -> Token:
        self._skip_whitespace_and_comments()
        line, column = self.line, self.column
        if self.pos >= len(self.text):
            return Token(TokenType.EOF, "", line, column)
        char = self._peek()

        if char == "'":
            return self._scan_string(line, column)
        if char.isdigit() or (char == "." and self._peek(1).isdigit()):
            return self._scan_number(line, column)
        if char == "@":
            return self._scan_parameter(line, column)
        if char.isalpha() or char == "_" or char == "[":
            return self._scan_identifier(line, column)

        simple = {
            "(": TokenType.LPAREN,
            ")": TokenType.RPAREN,
            ",": TokenType.COMMA,
            ".": TokenType.DOT,
            ";": TokenType.SEMICOLON,
        }
        if char in simple:
            self._advance()
            return Token(simple[char], char, line, column)
        if char == "*":
            self._advance()
            return Token(TokenType.STAR, "*", line, column)
        if char in _OPERATOR_START:
            two = char + self._peek(1)
            if two in _TWO_CHAR_OPERATORS:
                self._advance(2)
                return Token(TokenType.OPERATOR, "<>" if two == "!=" else two, line, column)
            self._advance()
            return Token(TokenType.OPERATOR, char, line, column)
        raise LexError(f"unexpected character {char!r}", line, column)

    def _scan_string(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        chunks: List[str] = []
        while True:
            if self.pos >= len(self.text):
                raise LexError("unterminated string literal", line, column)
            char = self._peek()
            if char == "'":
                if self._peek(1) == "'":  # escaped quote
                    chunks.append("'")
                    self._advance(2)
                    continue
                self._advance()
                return Token(TokenType.STRING, "".join(chunks), line, column)
            chunks.append(char)
            self._advance()

    def _scan_number(self, line: int, column: int) -> Token:
        start = self.pos
        seen_dot = False
        while self.pos < len(self.text):
            char = self._peek()
            if char.isdigit():
                self._advance()
            elif char == "." and not seen_dot and self._peek(1).isdigit():
                seen_dot = True
                self._advance()
            elif char in "eE" and self._peek(1).isdigit():
                seen_dot = True  # treat exponent as float
                self._advance(2)
            else:
                break
        return Token(TokenType.NUMBER, self.text[start : self.pos], line, column)

    def _scan_parameter(self, line: int, column: int) -> Token:
        self._advance()  # @
        start = self.pos
        while self.pos < len(self.text) and (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        name = self.text[start : self.pos]
        if not name:
            raise LexError("'@' must be followed by a parameter name", line, column)
        return Token(TokenType.PARAMETER, name, line, column)

    def _scan_identifier(self, line: int, column: int) -> Token:
        if self._peek() == "[":  # bracket-quoted identifier
            self._advance()
            start = self.pos
            while self.pos < len(self.text) and self._peek() != "]":
                self._advance()
            if self.pos >= len(self.text):
                raise LexError("unterminated [identifier]", line, column)
            name = self.text[start : self.pos]
            self._advance()
            return Token(TokenType.IDENT, name, line, column)
        start = self.pos
        while self.pos < len(self.text) and (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        word = self.text[start : self.pos]
        upper = word.upper()
        if upper in KEYWORDS:
            return Token(TokenType.KEYWORD, upper, line, column)
        return Token(TokenType.IDENT, word, line, column)


def tokenize(text: str) -> List[Token]:
    """Tokenize SQL text; convenience wrapper around :class:`Lexer`."""
    return Lexer(text).tokens()
