"""Bounded-staleness degraded reads when admission control sheds.

The cache remembers recent read-only results together with the
replication staleness bound in force when each was captured. When the
engine server sheds a statement (OverloadError), a read may be answered
from that memory as long as capture-time staleness plus entry age stays
within ``degraded_staleness`` — a *declared* bounded-staleness answer
instead of an error. Writes always surface the OverloadError.
"""

from __future__ import annotations

import pytest

from repro.errors import OverloadError
from repro.resilience import AdmissionController

pytestmark = pytest.mark.overload

SELECT = "SELECT cname FROM Cust1000 WHERE cid = @cid"


def overload(cache):
    """Attach an admission gate that deterministically sheds everything
    (burst=0: the bucket is born past the hard bound)."""
    cache.server.admission = AdmissionController(
        cache.server.clock, rate=0.001, burst=0.0, name=cache.name
    )


class TestDegradedReads:
    def test_fresh_cached_result_served_under_overload(self, deployment, cache):
        live = cache.execute(SELECT, {"cid": 7})
        assert live.rows == [("cust7",)]
        overload(cache)
        degraded = cache.execute(SELECT, {"cid": 7})
        assert degraded.rows == live.rows
        assert cache.degraded_reads == 1
        if cache.server.observability:
            assert (
                cache.server.metrics.counter("overload.degraded_reads").value == 1
            )

    def test_unseen_read_still_sheds(self, deployment, cache):
        overload(cache)
        with pytest.raises(OverloadError) as excinfo:
            cache.execute(SELECT, {"cid": 7})
        assert excinfo.value.transient
        assert cache.degraded_reads == 0

    def test_entry_past_the_staleness_bound_is_not_served(self, deployment, cache):
        cache.execute(SELECT, {"cid": 7})
        overload(cache)
        deployment.clock.advance(cache.degraded_staleness + 0.1)
        with pytest.raises(OverloadError):
            cache.execute(SELECT, {"cid": 7})

    def test_capture_time_replication_lag_counts_against_the_bound(
        self, deployment, cache
    ):
        """An entry captured while replication was lagging has already
        spent part of its staleness budget: age + lag-at-capture must
        stay within the bound, so a lagging capture expires sooner."""
        cache.execute(SELECT, {"cid": 7})
        key = cache._degraded_key(SELECT, {"cid": 7})
        captured_at, lag, result = cache._degraded_results.get(key)
        # Re-stamp the entry as captured with 4s of replication lag.
        cache._degraded_results[key] = (captured_at, 4.0, result)
        overload(cache)
        deployment.clock.advance(2.0)  # age 2s + lag 4s > bound 5s
        with pytest.raises(OverloadError):
            cache.execute(SELECT, {"cid": 7})

    def test_writes_always_surface_the_overload_error(self, deployment, cache):
        overload(cache)
        with pytest.raises(OverloadError):
            cache.execute("UPDATE customer SET cname = 'x' WHERE cid = 1")
        assert cache.degraded_reads == 0

    def test_degradation_ends_when_admission_recovers(self, deployment, cache):
        live = cache.execute(SELECT, {"cid": 9})
        overload(cache)
        degraded = cache.execute(SELECT, {"cid": 9})
        assert degraded.rows == live.rows
        cache.server.admission = None
        fresh = cache.execute(SELECT, {"cid": 9})
        assert fresh.rows == live.rows
        assert cache.degraded_reads == 1  # only the overloaded call degraded
