"""The TPC-W load driver: emulated browsers in virtual time.

Plays the role of the benchmark's remote browser emulators (§6.1): a set
of user sessions, each cycling through think time (fixed at one second in
the paper) and a next interaction drawn from the workload mix. Time is
virtual — the driver advances the deployment clock and ticks replication
— so runs are deterministic and fast.

This is the functional traffic generator used by tests and examples; the
*performance* experiments use :mod:`repro.simulation`, which adds CPU
queueing on simulated machines.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Dict

from repro.tpcw.application import TPCWApplication
from repro.tpcw.workload import WorkloadMix


@dataclass
class DriverStats:
    """What a driver run observed."""

    interactions: int = 0
    db_calls: int = 0
    errors: int = 0
    virtual_seconds: float = 0.0
    by_interaction: Dict[str, int] = field(default_factory=dict)
    # Failover activity observed on the connection (zero for plain
    # connections; populated when driving through a FailoverRouter).
    failovers: int = 0
    failbacks: int = 0

    @property
    def wips(self) -> float:
        """Interactions per virtual second (think-time bound, since the
        functional engine executes in zero virtual time)."""
        if self.virtual_seconds <= 0:
            return 0.0
        return self.interactions / self.virtual_seconds


class LoadDriver:
    """Drives TPC-W traffic against a connection in virtual time."""

    def __init__(
        self,
        application: TPCWApplication,
        mix: WorkloadMix,
        users: int = 10,
        think_time: float = 1.0,
        deployment=None,
        seed: int = 17,
    ):
        self.application = application
        self.mix = mix
        self.users = users
        self.think_time = think_time
        self.deployment = deployment
        self.rng = random.Random(seed)

    def _target_server(self):
        """The engine Server the application's connection reaches.

        Connections may point at a plain :class:`~repro.engine.Server` or
        at a :class:`~repro.mtcache.cache_server.CacheServer` facade.
        """
        server = getattr(self.application.connection, "server", None)
        inner = getattr(server, "server", None)
        return inner if inner is not None else server

    def run(self, duration: float) -> DriverStats:
        """Run for ``duration`` virtual seconds; returns statistics."""
        stats = DriverStats()
        sessions = [self.application.new_session() for _ in range(self.users)]
        # (next_fire_time, user_index) — staggered starts over one think time.
        events = [
            (self.rng.uniform(0, self.think_time), user)
            for user in range(self.users)
        ]
        heapq.heapify(events)
        clock = self.deployment.clock if self.deployment is not None else None
        start = clock.now() if clock is not None else 0.0
        now = 0.0
        calls_before = self.application.db_calls

        target = self._target_server()
        observed = target is not None and getattr(target, "observability", False)
        registry = target.metrics if observed else None
        tracer = target.tracer if observed else None

        while events:
            now, user = heapq.heappop(events)
            if now > duration:
                break
            if clock is not None:
                clock.advance_to(start + now)
                self.deployment.tick()
            interaction = self.mix.sample(self.rng)
            span = (
                tracer.span(f"tpcw.{interaction}", user=user)
                if tracer is not None
                else None
            )
            try:
                if span is not None:
                    with span:
                        self.application.run(interaction, sessions[user])
                else:
                    self.application.run(interaction, sessions[user])
                stats.interactions += 1
                stats.by_interaction[interaction] = (
                    stats.by_interaction.get(interaction, 0) + 1
                )
                if registry is not None:
                    registry.counter(
                        "tpcw.interactions", labels={"interaction": interaction}
                    ).inc()
            except Exception:
                stats.errors += 1
                if registry is not None:
                    registry.counter("tpcw.errors").inc()
            heapq.heappush(events, (now + self.think_time, user))

        stats.virtual_seconds = min(now, duration)
        stats.db_calls = self.application.db_calls - calls_before
        connection = self.application.connection
        stats.failovers = getattr(connection, "failovers", 0)
        stats.failbacks = getattr(connection, "failbacks", 0)
        if self.deployment is not None:
            self.deployment.sync()
        return stats
