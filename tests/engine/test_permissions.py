"""Permission checking at the engine level."""

import pytest

from repro import Server, Session
from repro.errors import PermissionError_


@pytest.fixture
def server():
    s = Server("s")
    s.create_database("db")
    s.execute("CREATE TABLE t (id INT PRIMARY KEY)")
    s.execute("INSERT INTO t VALUES (1)")
    s.execute("CREATE PROCEDURE p AS BEGIN SELECT COUNT(*) FROM t END")
    return s


def test_dbo_can_do_everything(server):
    session = Session(principal="dbo")
    assert server.execute("SELECT * FROM t", session=session).rows == [(1,)]


def test_select_denied_without_grant(server):
    session = Session(principal="alice")
    with pytest.raises(PermissionError_):
        server.execute("SELECT * FROM t", session=session)


def test_select_allowed_after_grant(server):
    server.execute("GRANT SELECT ON t TO alice")
    session = Session(principal="alice")
    assert server.execute("SELECT * FROM t", session=session).rows == [(1,)]


def test_dml_permissions_separate_from_select(server):
    server.execute("GRANT SELECT ON t TO alice")
    session = Session(principal="alice")
    with pytest.raises(PermissionError_):
        server.execute("INSERT INTO t VALUES (2)", session=session)
    server.execute("GRANT INSERT ON t TO alice")
    server.execute("INSERT INTO t VALUES (2)", session=session)


def test_execute_permission(server):
    session = Session(principal="bob")
    with pytest.raises(PermissionError_):
        server.execute("EXEC p", session=session)
    server.execute("GRANT EXEC ON p TO bob")
    assert server.execute("EXEC p", session=session).scalar == 1


def test_revoke(server):
    server.execute("GRANT SELECT ON t TO alice")
    database = server.database("db")
    database.catalog.permissions.revoke("SELECT", "t", "alice")
    with pytest.raises(PermissionError_):
        server.execute("SELECT * FROM t", session=Session(principal="alice"))


def test_permissions_cloned_into_shadow(server):
    server.execute("GRANT SELECT ON t TO alice")
    shadow = server.database("db").catalog.clone_for_shadow()
    assert shadow.permissions.holds("SELECT", "t", "alice")
    assert not shadow.permissions.holds("INSERT", "t", "alice")
