"""Per-operator execution profiles (statistics profile)."""

import pytest

from repro.obs.profile import profiled
from tests.conftest import make_shop_backend


@pytest.fixture
def server():
    return make_shop_backend()


class TestProfiledPlan:
    def test_actual_rows_and_opens(self, server):
        # Profiling through the session flag (SET STATISTICS PROFILE ON).
        from repro.engine.session import Session

        session = Session()
        session.statistics_profile = True
        result = server.execute(
            "SELECT cname FROM customer WHERE cid <= 10", session=session
        )
        assert len(result.rows) == 10
        profile = result.profile
        assert profile is not None
        assert profile.root.actual_rows == 10
        assert profile.root.opens == 1
        # Every operator in the tree was opened exactly once.
        for node in profile.root.walk():
            assert node.opens == 1

    def test_server_flag_profiles_every_select(self, server):
        server.profile_statements = True
        result = server.execute("SELECT cid FROM customer WHERE cid = 5")
        assert result.profile is not None
        server.profile_statements = False
        result = server.execute("SELECT cid FROM customer WHERE cid = 5")
        assert result.profile is None

    def test_render_carries_actuals_and_estimates(self, server):
        server.profile_statements = True
        result = server.execute("SELECT cname FROM customer WHERE segment = 'gold'")
        text = result.profile.render()
        assert "actual rows=" in text
        assert "est rows=" in text
        assert "self=" in text
        # The tree is indented: at least one nested operator line.
        assert any(line.startswith("  ") for line in text.splitlines())

    def test_to_dict_is_json_ready(self, server):
        import json

        server.profile_statements = True
        result = server.execute("SELECT cid FROM customer WHERE cid <= 3")
        payload = json.loads(json.dumps(result.profile.to_dict()))
        assert payload["actual_rows"] == 3
        assert isinstance(payload["children"], list)

    def test_shims_removed_after_execution(self, server):
        server.profile_statements = True
        server.execute("SELECT cid FROM customer WHERE cid <= 3")
        planned = server.plan_select(
            __import__("repro.sql", fromlist=["parse"]).parse(
                "SELECT cid FROM customer WHERE cid <= 3"
            ),
            server.database("shop"),
        )
        # No instance-level execute shim left behind on any operator.
        stack = [planned.root]
        while stack:
            operator = stack.pop()
            assert "execute" not in operator.__dict__
            stack.extend(operator.children)

    def test_shims_removed_even_when_execution_raises(self, server):
        from repro.sql import parse

        planned = server.plan_select(
            parse("SELECT cid FROM customer WHERE cid <= 3"),
            server.database("shop"),
        )

        class Boom(Exception):
            pass

        with pytest.raises(Boom):
            with profiled(planned.root):
                raise Boom()
        stack = [planned.root]
        while stack:
            operator = stack.pop()
            assert "execute" not in operator.__dict__
            stack.extend(operator.children)

    def test_wall_time_accumulates(self, server):
        server.profile_statements = True
        result = server.execute("SELECT cname FROM customer")
        root = result.profile.root
        assert root.actual_rows == 200
        assert root.wall_seconds > 0.0
        assert root.self_seconds >= 0.0
