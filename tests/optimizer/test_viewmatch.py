"""View matching: select-project containment with parameter guards."""


from repro.catalog.objects import ViewDef
from repro.common.schema import Column, Schema
from repro.common.types import INT
from repro.optimizer.viewmatch import describe_view, match_view
from repro.sql import ast, parse, parse_expression
from repro.optimizer.predicates import split_conjuncts

BASE_COLUMNS = ["cid", "cname", "caddress", "segment"]


def make_view(sql):
    statement = parse(sql)
    schema = Schema([Column("x", INT)])  # schema content is irrelevant here
    return ViewDef(
        name=statement.name,
        select=statement.select,
        schema=schema,
        materialized=True,
        cached=statement.cached,
    )


def describe(sql):
    return describe_view(make_view(sql), BASE_COLUMNS)


class TestDescribeView:
    def test_select_project(self):
        description = describe(
            "CREATE CACHED VIEW v AS SELECT cid, cname FROM customer WHERE cid <= 1000"
        )
        assert description.base_table == "customer"
        assert set(description.column_mapping) == {"cid", "cname"}
        assert len(description.conjuncts) == 1

    def test_star_expands(self):
        description = describe("CREATE CACHED VIEW v AS SELECT * FROM customer")
        assert set(description.column_mapping) == set(BASE_COLUMNS)

    def test_aliased_output(self):
        description = describe(
            "CREATE CACHED VIEW v AS SELECT cid AS id FROM customer"
        )
        assert description.column_mapping["cid"] == "id"

    def test_join_views_rejected(self):
        description = describe(
            "CREATE CACHED VIEW v AS SELECT c.cid FROM customer c JOIN orders o ON c.cid = o.cid"
        )
        assert description is None

    def test_aggregate_views_rejected(self):
        description = describe(
            "CREATE CACHED VIEW v AS SELECT COUNT(*) AS n FROM customer"
        )
        assert description is None

    def test_computed_columns_rejected(self):
        description = describe(
            "CREATE CACHED VIEW v AS SELECT cid + 1 AS c2 FROM customer"
        )
        assert description is None

    def test_like_predicate_marks_opaque(self):
        description = describe(
            "CREATE CACHED VIEW v AS SELECT cid FROM customer WHERE cname LIKE 'a%'"
        )
        assert description.opaque_predicate


def try_match(view_sql, table="customer", required=("cid",), where=None):
    description = describe(view_sql)
    conjuncts = split_conjuncts(parse_expression(where)) if where else []
    return match_view(description, table, set(required), conjuncts)


class TestMatching:
    def test_unconditional_full_view(self):
        match = try_match("CREATE CACHED VIEW v AS SELECT cid, cname FROM customer")
        assert match is not None and match.unconditional

    def test_wrong_table(self):
        assert try_match(
            "CREATE CACHED VIEW v AS SELECT cid FROM customer", table="orders"
        ) is None

    def test_missing_column(self):
        assert try_match(
            "CREATE CACHED VIEW v AS SELECT cid FROM customer",
            required=("cid", "segment"),
        ) is None

    def test_constant_containment(self):
        match = try_match(
            "CREATE CACHED VIEW v AS SELECT cid FROM customer WHERE cid <= 1000",
            where="cid <= 500",
        )
        assert match is not None and match.unconditional

    def test_constant_non_containment(self):
        assert try_match(
            "CREATE CACHED VIEW v AS SELECT cid FROM customer WHERE cid <= 1000",
            where="cid <= 5000",
        ) is None

    def test_unconstrained_query_cannot_use_restricted_view(self):
        assert try_match(
            "CREATE CACHED VIEW v AS SELECT cid FROM customer WHERE cid <= 1000"
        ) is None

    def test_parameter_guard(self):
        match = try_match(
            "CREATE CACHED VIEW v AS SELECT cid FROM customer WHERE cid <= 1000",
            where="cid <= @cid",
        )
        assert match is not None and not match.unconditional
        guard = match.guard_expression()
        assert isinstance(guard, ast.BinaryOp)

    def test_multiple_view_conjuncts_all_must_hold(self):
        match = try_match(
            "CREATE CACHED VIEW v AS SELECT cid, segment FROM customer "
            "WHERE cid <= 1000 AND segment = 'gold'",
            required=("cid", "segment"),
            where="cid <= 10 AND segment = 'gold'",
        )
        assert match is not None and match.unconditional

    def test_multiple_view_conjuncts_partial_fails(self):
        assert try_match(
            "CREATE CACHED VIEW v AS SELECT cid, segment FROM customer "
            "WHERE cid <= 1000 AND segment = 'gold'",
            required=("cid",),
            where="cid <= 10",
        ) is None

    def test_remainder_for_single_conjunct_view(self):
        match = try_match(
            "CREATE CACHED VIEW v AS SELECT cid FROM customer WHERE cid <= 1000",
            where="cid <= @cid",
        )
        assert match.remainder is not None
        # remainder = NOT(view pred) AND query conjuncts
        conjuncts = split_conjuncts(match.remainder)
        ops = sorted(c.op for c in conjuncts if isinstance(c, ast.BinaryOp))
        assert ">" in ops  # cid > 1000 piece

    def test_remainder_absent_for_multi_conjunct_view(self):
        match = try_match(
            "CREATE CACHED VIEW v AS SELECT cid, segment FROM customer "
            "WHERE cid <= 1000 AND segment = 'gold'",
            required=("cid", "segment"),
            where="cid <= 5 AND segment = 'gold'",
        )
        assert match.remainder is None

    def test_column_mapping_translation(self):
        match = try_match(
            "CREATE CACHED VIEW v AS SELECT cid AS id, cname AS nm FROM customer",
            required=("cid", "cname"),
        )
        assert match.map_column("cname") == "nm"
