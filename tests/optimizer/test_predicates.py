"""Predicate analysis: conjunct splitting, normalization, implication.

Implication correctness is the foundation of view-matching soundness: a
wrong guard would silently return wrong rows from a cached view, so the
property tests verify guards against brute-force evaluation.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec.context import ExecutionContext
from repro.exec.expressions import ExpressionCompiler
from repro.common.schema import Schema
from repro.optimizer.predicates import (
    and_together,
    implies,
    negate,
    normalize_comparison,
    split_conjuncts,
)
from repro.sql import ast, parse_expression


class TestSplitConjuncts:
    def test_flat_and(self):
        parts = split_conjuncts(parse_expression("a = 1 AND b = 2 AND c = 3"))
        assert len(parts) == 3

    def test_or_stays_opaque(self):
        parts = split_conjuncts(parse_expression("a = 1 OR b = 2"))
        assert len(parts) == 1

    def test_between_splits_to_bounds(self):
        parts = split_conjuncts(parse_expression("a BETWEEN 1 AND 5"))
        ops = sorted(part.op for part in parts)
        assert ops == ["<=", ">="]

    def test_negated_between_does_not_split(self):
        parts = split_conjuncts(parse_expression("a NOT BETWEEN 1 AND 5"))
        assert len(parts) == 1
        assert isinstance(parts[0], ast.Between)

    def test_none_gives_empty(self):
        assert split_conjuncts(None) == []

    def test_and_together_roundtrip(self):
        parts = split_conjuncts(parse_expression("a = 1 AND b = 2"))
        combined = and_together(parts)
        assert sorted(
            (c.left.name for c in split_conjuncts(combined))
        ) == ["a", "b"]

    def test_and_together_empty(self):
        assert and_together([]) is None


class TestNormalizeComparison:
    def test_column_op_literal(self):
        comparison = normalize_comparison(parse_expression("cid <= 1000"))
        assert comparison.column.name == "cid"
        assert comparison.op == "<="
        assert comparison.constant == 1000

    def test_reversed_orientation_flips(self):
        comparison = normalize_comparison(parse_expression("1000 >= cid"))
        assert comparison.op == "<="
        assert comparison.column.name == "cid"

    def test_parameter_operand(self):
        comparison = normalize_comparison(parse_expression("cid = @cid"))
        assert comparison.is_parameterized

    def test_non_simple_returns_none(self):
        assert normalize_comparison(parse_expression("a + 1 = 2")) is None
        assert normalize_comparison(parse_expression("a LIKE 'x'")) is None
        assert normalize_comparison(parse_expression("a = b")) is None


def check(query_text, view_text):
    """Run the implication check for single conjuncts."""
    query = [normalize_comparison(parse_expression(query_text))]
    view = normalize_comparison(parse_expression(view_text))
    return implies([c for c in query if c], view)


class TestConstantImplication:
    def test_tighter_upper_bound(self):
        assert check("cid <= 500", "cid <= 1000").implied

    def test_equal_bound(self):
        assert check("cid <= 1000", "cid <= 1000").implied

    def test_looser_bound_fails(self):
        assert not check("cid <= 2000", "cid <= 1000").implied

    def test_strict_vs_inclusive_boundary(self):
        assert check("cid < 1000", "cid <= 1000").implied
        assert not check("cid <= 1000", "cid < 1000").implied
        assert check("cid < 1000", "cid < 1000").implied

    def test_equality_inside_range(self):
        assert check("cid = 7", "cid <= 1000").implied
        assert not check("cid = 1001", "cid <= 1000").implied

    def test_lower_bounds(self):
        assert check("cid >= 500", "cid >= 100").implied
        assert not check("cid >= 50", "cid >= 100").implied

    def test_opposite_directions_fail(self):
        assert not check("cid >= 500", "cid <= 1000").implied

    def test_unrelated_column_fails(self):
        assert not check("other <= 10", "cid <= 1000").implied

    def test_equality_to_equality(self):
        assert check("cid = 5", "cid = 5").implied
        assert not check("cid = 6", "cid = 5").implied


class TestParameterGuards:
    def evaluate_guard(self, guard, params):
        blank = ExpressionCompiler(Schema(()))
        return blank.compile(guard)((), ExecutionContext(params=params))

    def test_le_param_generates_guard(self):
        outcome = check("cid <= @cid", "cid <= 1000")
        assert outcome.implied and outcome.guard is not None
        assert self.evaluate_guard(outcome.guard, {"cid": 900}) is True
        assert self.evaluate_guard(outcome.guard, {"cid": 1100}) is False

    def test_eq_param_guard(self):
        outcome = check("cid = @cid", "cid <= 1000")
        assert self.evaluate_guard(outcome.guard, {"cid": 1000}) is True
        assert self.evaluate_guard(outcome.guard, {"cid": 1001}) is False

    def test_ge_param_guard(self):
        outcome = check("cid >= @cid", "cid >= 100")
        assert self.evaluate_guard(outcome.guard, {"cid": 100}) is True
        assert self.evaluate_guard(outcome.guard, {"cid": 50}) is False

    def test_param_wrong_direction_fails(self):
        assert not check("cid >= @cid", "cid <= 1000").implied

    @settings(max_examples=200, deadline=None)
    @given(
        query_op=st.sampled_from(["<", "<=", "=", ">", ">="]),
        view_op=st.sampled_from(["<", "<=", ">", ">=", "="]),
        view_k=st.integers(-50, 50),
        param=st.integers(-60, 60),
        value=st.integers(-60, 60),
    )
    def test_property_guards_are_sound(self, query_op, view_op, view_k, param, value):
        """If the guard passes, every row satisfying the query predicate
        must satisfy the view predicate (guard soundness)."""
        outcome = check(f"cid {query_op} @p", f"cid {view_op} {view_k}")
        if not outcome.implied or outcome.guard is None:
            return
        guard_true = self.evaluate_guard(outcome.guard, {"p": param})
        if guard_true is not True:
            return
        ops = {
            "<": lambda a, b: a < b,
            "<=": lambda a, b: a <= b,
            ">": lambda a, b: a > b,
            ">=": lambda a, b: a >= b,
            "=": lambda a, b: a == b,
        }
        if ops[query_op](value, param):  # row satisfies query predicate
            assert ops[view_op](value, view_k)  # then it is in the view


class TestMultiConjunctImplication:
    def test_one_of_many_query_conjuncts_suffices(self):
        query = [
            normalize_comparison(parse_expression("cid <= 500")),
            normalize_comparison(parse_expression("name = 'x'")),
        ]
        view = normalize_comparison(parse_expression("cid <= 1000"))
        assert implies([c for c in query if c], view).implied


class TestNegate:
    @pytest.mark.parametrize(
        "text,expected_op",
        [("a = 1", "<>"), ("a < 1", ">="), ("a >= 1", "<")],
    )
    def test_comparison_negation(self, text, expected_op):
        negated = negate(parse_expression(text))
        assert negated.op == expected_op

    def test_opaque_wrapped_in_not(self):
        negated = negate(parse_expression("a LIKE 'x'"))
        assert isinstance(negated, ast.UnaryOp)
