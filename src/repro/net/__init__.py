"""repro.net — the wire protocol and network front end (PR 10).

Three pieces:

* :mod:`repro.net.protocol` — the length-prefixed binary frame codec and
  the opcode vocabulary (:data:`PROTOCOL_VERSION`).
* :mod:`repro.net.server` — :class:`ReproServer`, an asyncio TCP listener
  (on a background thread) in front of any execution target.
* :mod:`repro.net.wire` — :class:`WireConnection`, the blocking client
  that plugs into the existing :func:`repro.client.connect` facade.
* :mod:`repro.net.dsn` — :func:`parse_dsn` and the ``inproc://`` target
  registry behind the DSN-based ``connect()`` redesign.

This package is the only place in the codebase allowed to construct raw
sockets or asyncio streams (the ``net-raw-socket`` selflint rule): every
other layer reaches the network through :func:`repro.client.connect` with
a ``tcp://`` DSN.
"""

from repro.net.dsn import (
    DEFAULT_PORT,
    DSN,
    parse_dsn,
    register_inproc,
    resolve_inproc,
    unregister_inproc,
)
from repro.net.protocol import MAX_FRAME, PROTOCOL_VERSION
from repro.net.server import ReproServer
from repro.net.wire import WireConnection

__all__ = [
    "DEFAULT_PORT",
    "DSN",
    "MAX_FRAME",
    "PROTOCOL_VERSION",
    "ReproServer",
    "WireConnection",
    "parse_dsn",
    "register_inproc",
    "resolve_inproc",
    "unregister_inproc",
]
