"""Property: formatting preserves expression semantics.

MTCache ships plan fragments as SQL text, so ``format -> parse`` must not
change what an expression computes (operator precedence, associativity,
NULL handling). Hypothesis builds random expression ASTs, renders them,
reparses them, and compares evaluation results on both trees.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.schema import Column, Schema
from repro.common.types import FLOAT, INT
from repro.errors import ExecutionError, TypeCheckError
from repro.exec.context import ExecutionContext
from repro.exec.expressions import ExpressionCompiler
from repro.sql import ast, parse_expression
from repro.sql.formatter import format_expression

SCHEMA = Schema([Column("a", INT, qualifier="t"), Column("b", FLOAT, qualifier="t")])
ROW = (7, 2.5)


@st.composite
def expressions(draw, depth=0):
    if depth >= 3 or draw(st.integers(0, 2)) == 0:
        leaf = draw(st.integers(0, 3))
        if leaf == 0:
            return ast.Literal(draw(st.integers(-20, 20)))
        if leaf == 1:
            return ast.Literal(None)
        if leaf == 2:
            return ast.ColumnRef("a", "t")
        return ast.ColumnRef("b", "t")
    kind = draw(st.integers(0, 3))
    if kind == 0:
        op = draw(st.sampled_from(["+", "-", "*"]))
        return ast.BinaryOp(
            op, draw(expressions(depth + 1)), draw(expressions(depth + 1))
        )
    if kind == 1:
        op = draw(st.sampled_from(["=", "<>", "<", "<=", ">", ">="]))
        return ast.BinaryOp(
            op, draw(expressions(depth + 1)), draw(expressions(depth + 1))
        )
    if kind == 2:
        op = draw(st.sampled_from(["AND", "OR"]))
        return ast.BinaryOp(
            op, draw(expressions(depth + 1)), draw(expressions(depth + 1))
        )
    return ast.UnaryOp("NOT", draw(expressions(depth + 1)))


def evaluate(expression):
    compiled = ExpressionCompiler(SCHEMA).compile(expression)
    return compiled(ROW, ExecutionContext())


@settings(max_examples=300, deadline=None)
@given(expression=expressions())
def test_property_format_parse_preserves_semantics(expression):
    text = format_expression(expression)
    reparsed = parse_expression(text)
    try:
        original = evaluate(expression)
        original_error = None
    except (TypeCheckError, ExecutionError) as exc:
        original, original_error = None, type(exc)
    try:
        roundtrip = evaluate(reparsed)
        roundtrip_error = None
    except (TypeCheckError, ExecutionError) as exc:
        roundtrip, roundtrip_error = None, type(exc)
    assert original_error == roundtrip_error, text
    if original_error is None:
        assert original == roundtrip, text


@settings(max_examples=200, deadline=None)
@given(expression=expressions())
def test_property_format_is_stable(expression):
    once = format_expression(expression)
    twice = format_expression(parse_expression(once))
    assert once == twice
