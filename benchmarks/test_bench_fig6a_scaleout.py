"""E1b — Figure 6(a): measured throughput vs number of web/cache servers.

Paper: WIPS grows linearly with the number of web/cache servers for the
read-dominated Browsing and Shopping workloads (1-5 servers); Ordering
grows only until the backend saturates.
"""

import pytest

from benchmarks.conftest import emit


def test_bench_fig6a_throughput_curves(cached_model, benchmark, capsys):
    curves = {
        mix: cached_model.curve(mix, 5)
        for mix in ("Browsing", "Shopping", "Ordering")
    }
    lines = [f"{'servers':>8s} " + "".join(f"{mix:>12s}" for mix in curves)]
    for n in range(5):
        lines.append(
            f"{n + 1:8d} "
            + "".join(f"{curves[mix][n].wips:12.1f}" for mix in curves)
        )
    emit(capsys, "E1b / Figure 6(a): WIPS vs web/cache servers", lines)

    # Browsing and Shopping scale linearly across the whole range.
    for mix in ("Browsing", "Shopping"):
        wips = [point.wips for point in curves[mix]]
        for n in range(1, 5):
            assert wips[n] / wips[0] == pytest.approx(n + 1, rel=0.05), mix
    # Ordering eventually flattens (backend saturated) or at minimum grows
    # sublinearly at five servers relative to the read workloads.
    ordering = [point.wips for point in curves["Ordering"]]
    browsing = [point.wips for point in curves["Browsing"]]
    assert ordering[4] / ordering[0] <= browsing[4] / browsing[0] + 1e-9

    benchmark(lambda: cached_model.curve("Shopping", 5))


def test_bench_fig6a_des_validation(cal_cached, capsys, benchmark):
    """Cross-check one analytic point against the discrete-event simulator:
    with plentiful users, DES throughput approaches the analytic bound."""
    from repro.simulation import DESConfig, simulate_cluster

    def run():
        return simulate_cluster(
            cal_cached,
            DESConfig(users=600, mix_name="Shopping", servers=2, duration=60, warmup=10),
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        capsys,
        "E1b cross-check: DES at 2 servers, Shopping, 600 users",
        [
            f"DES WIPS={result.wips:.1f} web_util={result.web_utilization:.1%} "
            f"backend_util={result.backend_utilization:.1%}"
        ],
    )
    assert result.web_utilization > 0.85  # saturated web tier, as intended
