"""Shard rebalancing driven by ``deployment.tick``.

The :class:`Rebalancer` holds a queue of planned placement changes and
executes **at most one per tick**, each atomically within its tick (the
deployment drains replication first, then swaps article predicates,
view definitions and rows together). Queries racing a move stay correct
throughout: the slice views are predicated, so a shard asked for a key
it no longer (or does not yet) hold fetches it from the backend through
its guarded plan instead of answering wrongly.

Two move shapes:

* ``schedule_add_shard(name, at)`` — grow the tier: provision a new
  shard and give it the upper half of the widest slice (the paper-shaped
  "snapshot, subscribe, cut over, drop" choreography, via
  :meth:`ShardedDeployment.add_shard`).
* ``schedule_boundary_move(left, right, new_cut, at)`` — shift load
  between adjacent shards without changing the shard count.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Tuple


class Rebalancer:
    """A virtual-time queue of placement changes for one deployment."""

    def __init__(self, deployment):
        self.deployment = deployment
        self._queue: List[Tuple[float, int, Callable[[], Any]]] = []
        self._sequence = itertools.count()
        self.moves_executed = 0
        self.rows_moved = 0
        self.last_error: Exception | None = None

    def _schedule(self, when: float, action: Callable[[], Any]) -> None:
        heapq.heappush(self._queue, (when, next(self._sequence), action))

    def schedule_add_shard(self, name: str, at: float) -> None:
        """Queue a tier-growth move for virtual time ``at``."""
        self._schedule(at, lambda: self.deployment.add_shard(name))

    def schedule_boundary_move(
        self, left: str, right: str, new_cut: int, at: float
    ) -> None:
        """Queue a boundary shift between adjacent shards for ``at``."""
        self._schedule(
            at, lambda: self.deployment.move_boundary(left, right, new_cut)
        )

    @property
    def pending(self) -> int:
        return len(self._queue)

    def run_due(self, now: float) -> int:
        """Execute the earliest due move, if any; returns moves run (0/1).

        One move per tick keeps each tick's pause bounded and gives
        replication a chance to drain between consecutive moves. A move
        that raises is dropped (recorded in ``last_error``) rather than
        wedging the queue — the deployment keeps serving with the old
        placement, which is always still correct.
        """
        if not self._queue or self._queue[0][0] > now:
            return 0
        _, _, action = heapq.heappop(self._queue)
        try:
            result = action()
        except Exception as error:  # pragma: no cover - defensive
            self.last_error = error
            return 0
        self.moves_executed += 1
        if isinstance(result, int):
            self.rows_moved += result
        return 1
