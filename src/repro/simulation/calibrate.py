"""Calibration: measure real per-interaction service demands.

Each TPC-W interaction is executed repeatedly against real engines — once
in the backend-only configuration and once through an MTCache server — and
the engine's work counters (operator row touches, a CPU proxy) are
attributed per tier. Replication cost is calibrated from the number of
commands the log reader produces per interaction.

The resulting :class:`InteractionProfile` set is the simulator's ground
truth: the simulated cluster runs the *measured* workload, not a guessed
one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.mtcache.odbc import OdbcConnection
from repro.tpcw.application import TPCWApplication
from repro.tpcw.config import TPCWConfig
from repro.tpcw.setup import build_backend, enable_caching
from repro.tpcw.workload import INTERACTIONS, WorkloadMix


@dataclass
class InteractionProfile:
    """Measured demands for one interaction in one configuration."""

    name: str
    cache_work: float  # engine work on the web/cache machine
    backend_work: float  # engine work on the backend machine
    db_calls: float  # database requests issued
    replication_commands: float  # commands generated per execution


@dataclass
class CalibrationResult:
    """Profiles for every interaction in one configuration."""

    mode: str  # "nocache" | "cached"
    profiles: Dict[str, InteractionProfile]
    config: TPCWConfig
    # Observability snapshots of the servers the calibration ran against
    # (keys: "backend" and, in cached mode, "cache"); lets benchmark
    # reports show cache hit rates and plan-shape counts alongside demand.
    obs_snapshot: Dict[str, Dict] = field(default_factory=dict)

    def mix_demand(self, mix: WorkloadMix) -> Tuple[float, float, float]:
        """Expected (cache_work, backend_work, repl_commands) per interaction
        under a mix."""
        cache = backend = commands = 0.0
        for name, weight in mix.weights.items():
            profile = self.profiles[name]
            cache += weight * profile.cache_work
            backend += weight * profile.backend_work
            commands += weight * profile.replication_commands
        return cache, backend, commands


def calibrate(
    mode: str = "cached",
    config: Optional[TPCWConfig] = None,
    repetitions: int = 8,
    seed: int = 1234,
) -> CalibrationResult:
    """Measure per-interaction demands in the given configuration.

    ``mode="nocache"``: application talks straight to the backend.
    ``mode="cached"``: application talks to an MTCache server with the
    paper's cached views and copied procedures.
    """
    config = config or TPCWConfig()
    backend, config = build_backend(config)
    deployment = None
    if mode == "cached":
        deployment, caches = enable_caching(backend, ["calibration_cache"], config)
        target_server = caches[0].server
    elif mode == "nocache":
        target_server = backend
    else:
        raise ValueError(f"unknown calibration mode {mode!r}")

    connection = OdbcConnection(target_server, "tpcw", "dbo")
    application = TPCWApplication(connection, config, random.Random(seed))

    profiles: Dict[str, InteractionProfile] = {}
    for interaction in INTERACTIONS:
        cache_work = backend_work = calls = commands = 0.0
        for repetition in range(repetitions):
            session = application.new_session()
            # Warm the session state the interaction depends on.
            if interaction in ("buy_request", "buy_confirm", "shopping_cart"):
                application.shopping_cart(session)
            if deployment is not None:
                deployment.sync()

            backend_before = backend.total_work.rows_processed
            cache_before = (
                target_server.total_work.rows_processed if mode == "cached" else 0.0
            )
            calls_before = application.db_calls
            commands_before = (
                deployment.log_reader.commands_produced if deployment else 0
            )

            application.run(interaction, session)
            if deployment is not None:
                deployment.clock.advance(0.01)
                deployment.sync()

            backend_work += backend.total_work.rows_processed - backend_before
            if mode == "cached":
                cache_work += target_server.total_work.rows_processed - cache_before
            calls += application.db_calls - calls_before
            if deployment is not None:
                commands += deployment.log_reader.commands_produced - commands_before
        profiles[interaction] = InteractionProfile(
            name=interaction,
            cache_work=cache_work / repetitions,
            backend_work=backend_work / repetitions,
            db_calls=calls / repetitions,
            replication_commands=commands / repetitions,
        )
    from repro.obs.export import server_snapshot

    obs_snapshot = {"backend": server_snapshot(backend)}
    if mode == "cached":
        obs_snapshot["cache"] = server_snapshot(target_server)
    return CalibrationResult(
        mode=mode, profiles=profiles, config=config, obs_snapshot=obs_snapshot
    )
