"""DES overload scenario: 4x saturation with bounded queues.

The acceptance property for admission control in queueing terms: drive
the simulated cluster at four times its saturation point. With bounded
queues (``queue_limit``) the tier sheds the excess up front — queue
depth stays bounded, goodput (completed interactions per second) holds
at >= 70% of the saturated peak, and no replication (write) work is
ever dropped. Without the bound, the same offered load grows queues
without limit and latency explodes.
"""

import pytest

from repro.simulation import ChaosSpec, DESConfig, calibrate, simulate_cluster
from repro.simulation.des import saturating_users
from repro.tpcw import TPCWConfig

pytestmark = pytest.mark.overload


@pytest.fixture(scope="module")
def calibration():
    return calibrate(
        "cached",
        TPCWConfig(num_items=60, num_ebs=10, bestseller_window=60),
        repetitions=3,
    )


@pytest.fixture(scope="module")
def saturation(calibration):
    """The saturation point (users, result) of a one-server cluster."""
    base = DESConfig(users=8, mix_name="Shopping", servers=1, duration=40, warmup=8)
    return saturating_users(calibration, base, latency_limit=3.0, max_users=3000)


#: Non-sheddable replication jobs may queue past the interaction bound.
QUEUE_SLACK = 8


def overload_config(users, **overrides):
    base = dict(
        users=users,
        mix_name="Shopping",
        servers=1,
        duration=60,
        warmup=10,
        queue_limit=32,
    )
    base.update(overrides)
    return DESConfig(**base)


def test_4x_saturation_with_admission_control(calibration, saturation):
    saturated_users, peak = saturation
    result = simulate_cluster(calibration, overload_config(4 * saturated_users))
    # Admission control visibly shed a chunk of the offered load...
    assert result.shed_interactions > 0
    # ...queues stayed bounded by construction (small slack: replication
    # jobs are never sheddable and may briefly push past the limit)...
    assert result.queue_depth_peak <= 32 + QUEUE_SLACK
    # ...no write work was silently dropped...
    assert result.shed_writes == 0
    # ...and goodput held at >= 70% of the saturated peak.
    assert result.wips >= 0.7 * peak.wips
    # The survivors' latency stays sane: the queue bound keeps waiting
    # time finite even at 4x load.
    assert result.p90_latency < 10 * peak.p90_latency + 5.0


def test_unbounded_queues_grow_without_limit_at_4x(calibration, saturation):
    """The control: the same 4x load with no queue_limit sheds nothing
    and backs queues far past the bound the limiter enforces."""
    saturated_users, peak = saturation
    result = simulate_cluster(
        calibration, overload_config(4 * saturated_users, queue_limit=None)
    )
    assert result.shed_interactions == 0
    assert result.queue_depth_peak > 32
    # Latency reflects the queueing: far worse than the bounded run.
    assert result.p90_latency > peak.p90_latency


def test_light_load_sheds_a_negligible_fraction(calibration, saturation):
    """The saturation procedure stops past the knee (p90 > 3s), so even
    fractions of it queue briefly; the property that matters is that a
    light offered load is shed only marginally while a 4x load is shed
    heavily — the controller discriminates."""
    saturated_users, peak = saturation
    light = simulate_cluster(
        calibration, overload_config(max(4, saturated_users // 8))
    )
    offered = light.completed + light.shed_interactions
    assert light.wips > 0
    assert light.shed_interactions <= 0.05 * offered


@pytest.mark.chaos
def test_overload_plus_machine_kill_keeps_goodput(calibration, saturation):
    """Chaos on top of overload: at 4x saturation with one of two cache
    machines killed mid-run, admission control keeps the survivors
    productive (bounded queues, nonzero goodput, zero dropped writes)."""
    saturated_users, peak = saturation
    result = simulate_cluster(
        calibration,
        overload_config(
            4 * saturated_users,
            servers=2,
            duration=100,
            chaos=ChaosSpec(server_index=0, kill_at=40.0, restart_at=70.0),
        ),
    )
    assert result.failover_interactions > 0
    assert result.shed_interactions > 0
    assert result.queue_depth_peak <= 32 + QUEUE_SLACK
    assert result.shed_writes == 0
    assert result.completed > 0
    # Replication backlog from the dead machine drained after restart.
    assert result.replication_samples > 0
