"""Two guarded leaves: nested ChoosePlan pull-up (four-way plans)."""

import pytest

from repro import MTCacheDeployment
from repro.exec.operators import UnionAllOp

from tests.conftest import make_shop_backend


@pytest.fixture(scope="module")
def env():
    backend = make_shop_backend(customers=400, orders=800)
    deployment = MTCacheDeployment(backend, "shop")
    cache = deployment.add_cache_server("nested")
    cache.create_cached_view(
        "CREATE CACHED VIEW nc AS "
        "SELECT cid, cname, caddress FROM customer WHERE cid <= 200"
    )
    cache.create_cached_view(
        "CREATE CACHED VIEW no AS "
        "SELECT oid, o_cid, total FROM orders WHERE oid <= 400"
    )
    return backend, cache


QUERY = (
    "SELECT c.cname, o.total FROM customer c JOIN orders o ON o.o_cid = c.cid "
    "WHERE c.cid <= @c AND o.oid <= @o"
)


def choose_plans(planned):
    return [
        node
        for node in planned.root.walk()
        if isinstance(node, UnionAllOp) and node.choose_plan
    ]


def test_two_guarded_leaves_nest(env):
    _, cache = env
    planned = cache.plan(QUERY)
    assert planned.is_dynamic
    # Nested pull-up: an outer ChoosePlan whose branches contain inner ones
    # (up to 2^2 = 4 fully-specialized join plans).
    plans = choose_plans(planned)
    assert len(plans) >= 2


@pytest.mark.parametrize(
    "c,o,expected",
    [
        (50, 100, None),  # both guards true: fully local
        (50, 600, None),  # orders guard false
        (300, 100, None),  # customer guard false
        (300, 600, None),  # both false: backend
    ],
)
def test_all_four_branch_combinations_correct(env, c, o, expected):
    backend, cache = env
    params = {"c": c, "o": o}
    reference = backend.execute(
        "SELECT c.cname, o.total FROM customer c JOIN orders o ON o.o_cid = c.cid "
        f"WHERE c.cid <= {c} AND o.oid <= {o} ORDER BY o.total, c.cname",
        database="shop",
    ).rows
    actual = sorted(cache.execute(QUERY, params=params).rows, key=lambda r: (r[1], r[0]))
    assert actual == reference
    assert len(actual) > 0


def test_fully_local_combination_touches_no_backend(env):
    backend, cache = env
    cache.execute(QUERY, params={"c": 50, "o": 100})  # warm plan
    backend.reset_work()
    cache.execute(QUERY, params={"c": 50, "o": 100})
    assert backend.total_work.rows_returned == 0


def test_guard_false_combination_uses_backend(env):
    backend, cache = env
    backend.reset_work()
    cache.execute(QUERY, params={"c": 300, "o": 600})
    assert backend.total_work.rows_returned > 0
