"""TPC-W implementation tests: schema, data, procedures, interactions."""

import random

import pytest

from repro.mtcache.odbc import OdbcConnection
from repro.tpcw import (
    MIXES,
    TPCWApplication,
    TPCWConfig,
    browse_order_split,
    build_backend,
    enable_caching,
)
from repro.tpcw.workload import BROWSE_INTERACTIONS, INTERACTIONS, ORDER_INTERACTIONS


@pytest.fixture(scope="module")
def env():
    backend, config = build_backend(TPCWConfig(num_items=60, num_ebs=10))
    return backend, config


class TestSchemaAndData:
    def test_all_tables_present(self, env):
        backend, _ = env
        tables = set(backend.database("tpcw").catalog.tables)
        assert {
            "country", "author", "address", "customer", "item",
            "orders", "order_line", "cc_xacts", "shopping_cart",
            "shopping_cart_line",
        } <= tables

    def test_row_counts_follow_scale(self, env):
        backend, config = env
        counts = {
            name: backend.execute(f"SELECT COUNT(*) FROM {name}", database="tpcw").scalar
            for name in ("item", "customer", "orders", "author", "address")
        }
        assert counts["item"] == config.num_items
        assert counts["customer"] == config.num_customers
        assert counts["orders"] == config.num_orders
        assert counts["address"] == config.num_addresses

    def test_referential_shape(self, env):
        backend, _ = env
        orphans = backend.execute(
            "SELECT COUNT(*) FROM order_line ol WHERE ol.ol_i_id NOT IN "
            "(SELECT i_id FROM item)",
            database="tpcw",
        ).scalar
        assert orphans == 0

    def test_statistics_built(self, env):
        backend, config = env
        stats = backend.database("tpcw").stats_for("item")
        assert stats.row_count == config.num_items

    def test_deterministic_generation(self):
        b1, c1 = build_backend(TPCWConfig(num_items=30, num_ebs=5, seed=7))
        b2, c2 = build_backend(TPCWConfig(num_items=30, num_ebs=5, seed=7))
        r1 = b1.execute("SELECT i_title FROM item WHERE i_id = 9", database="tpcw").scalar
        r2 = b2.execute("SELECT i_title FROM item WHERE i_id = 9", database="tpcw").scalar
        assert r1 == r2


class TestProcedures:
    def test_get_book(self, env):
        backend, _ = env
        result = backend.execute("EXEC getBook @i_id = 5", database="tpcw")
        assert len(result.rows) == 1
        assert result.rows[0][0] == 5

    def test_best_sellers_ranked(self, env):
        backend, _ = env
        from repro.tpcw.config import SUBJECTS

        for subject in SUBJECTS[:4]:
            result = backend.execute(
                "EXEC getBestSellers @subject = @s",
                params={"s": subject},
                database="tpcw",
            )
            sums = [row[4] for row in result.rows]
            assert sums == sorted(sums, reverse=True)

    def test_title_search(self, env):
        backend, _ = env
        result = backend.execute(
            "EXEC doTitleSearch @title = '%SHADOW%'", database="tpcw"
        )
        assert all("SHADOW" in row[1].upper() for row in result.rows)

    def test_subject_search_limit(self, env):
        backend, config = env
        result = backend.execute(
            "EXEC doSubjectSearch @subject = 'ARTS'", database="tpcw"
        )
        assert len(result.rows) <= config.search_result_limit

    def test_get_customer_join(self, env):
        backend, _ = env
        result = backend.execute("EXEC getCustomer @uname = 'user3'", database="tpcw")
        assert result.rows[0][0] == 3
        assert result.rows[0][-1].startswith("Country")

    def test_cart_lifecycle(self, env):
        backend, _ = env
        cart = backend.execute(
            "EXEC createEmptyCart @now = '2003-06-09'", database="tpcw"
        ).scalar
        backend.execute(
            "EXEC addItem @sc_id = @c, @i_id = 4, @qty = 2",
            params={"c": cart},
            database="tpcw",
        )
        backend.execute(
            "EXEC addItem @sc_id = @c, @i_id = 4, @qty = 1",
            params={"c": cart},
            database="tpcw",
        )
        rows = backend.execute(
            "EXEC getCart @sc_id = @c", params={"c": cart}, database="tpcw"
        ).rows
        assert len(rows) == 1 and rows[0][5] == 3  # quantities merged
        backend.execute("EXEC clearCart @sc_id = @c", params={"c": cart}, database="tpcw")
        assert (
            backend.execute(
                "EXEC getCart @sc_id = @c", params={"c": cart}, database="tpcw"
            ).rows
            == []
        )

    def test_enter_order_computes_totals(self, env):
        backend, _ = env
        cart = backend.execute(
            "EXEC createEmptyCart @now = '2003-06-09'", database="tpcw"
        ).scalar
        backend.execute(
            "EXEC addItem @sc_id = @c, @i_id = 7, @qty = 2",
            params={"c": cart},
            database="tpcw",
        )
        order_id = backend.execute(
            "EXEC enterOrder @c_id = 1, @sc_id = @c, @ship_type = 'AIR', "
            "@bill_addr = 1, @ship_addr = 1, @now = '2003-06-09'",
            params={"c": cart},
            database="tpcw",
        ).scalar
        row = backend.execute(
            "SELECT o_sub_total, o_total FROM orders WHERE o_id = @o",
            params={"o": order_id},
            database="tpcw",
        ).rows[0]
        assert row[0] > 0 and row[1] > row[0]

    def test_update_related_items_copurchase(self, env):
        """The admin-confirm related-items recomputation: a self-join of
        order_line finding the most co-purchased items."""
        backend, _ = env
        result = backend.execute(
            "EXEC updateRelatedItems @i_id = 1", database="tpcw"
        )
        assert len(result.rows) <= 5
        for row in result.rows:
            assert row[0] != 1  # never relates an item to itself
        quantities = [row[1] for row in result.rows]
        assert quantities == sorted(quantities, reverse=True)

    def test_admin_update(self, env):
        backend, _ = env
        backend.execute(
            "EXEC adminUpdate @i_id = 2, @cost = 42.5, @image = 'i', "
            "@thumbnail = 't', @now = '2003-06-10'",
            database="tpcw",
        )
        assert (
            backend.execute("SELECT i_cost FROM item WHERE i_id = 2", database="tpcw").scalar
            == 42.5
        )


class TestWorkloadMixes:
    def test_mix_weights_normalized(self):
        for mix in MIXES.values():
            assert sum(mix.weights.values()) == pytest.approx(1.0)

    def test_papers_browse_order_split(self):
        """The §6.1.1 table: 95/5, 80/20, 50/50."""
        browse, order = browse_order_split("Browsing")
        assert browse == pytest.approx(0.95, abs=0.005)
        browse, order = browse_order_split("Shopping")
        assert browse == pytest.approx(0.80, abs=0.005)
        browse, order = browse_order_split("Ordering")
        assert browse == pytest.approx(0.50, abs=0.005)

    def test_fourteen_interactions(self):
        assert len(INTERACTIONS) == 14
        assert len(BROWSE_INTERACTIONS) == 6
        assert len(ORDER_INTERACTIONS) == 8
        for mix in MIXES.values():
            assert set(mix.weights) == set(INTERACTIONS)

    def test_sampling_matches_weights(self):
        mix = MIXES["Shopping"]
        rng = random.Random(11)
        counts = {}
        for _ in range(20_000):
            name = mix.sample(rng)
            counts[name] = counts.get(name, 0) + 1
        assert counts["search_request"] / 20_000 == pytest.approx(0.20, abs=0.02)
        assert counts["home"] / 20_000 == pytest.approx(0.16, abs=0.02)


class TestInteractionsEndToEnd:
    @pytest.mark.parametrize("interaction", INTERACTIONS)
    def test_each_interaction_runs_against_backend(self, env, interaction):
        backend, config = env
        connection = OdbcConnection(backend, "tpcw", "dbo")
        application = TPCWApplication(connection, config, random.Random(3))
        session = application.new_session()
        if interaction in ("buy_request", "buy_confirm"):
            application.shopping_cart(session)
        application.run(interaction, session)
        assert application.db_calls > 0

    def test_interactions_through_cache_equal_backend_semantics(self):
        backend, config = build_backend(TPCWConfig(num_items=40, num_ebs=8))
        deployment, caches = enable_caching(backend, ["c1"], config)
        connection = OdbcConnection(caches[0].server, "tpcw", "dbo")
        application = TPCWApplication(connection, config, random.Random(4))
        rng = random.Random(9)
        sessions = [application.new_session() for _ in range(4)]
        mix = MIXES["Shopping"]
        for step in range(100):
            application.run(mix.sample(rng), sessions[step % 4])
            deployment.tick(0.05)
        deployment.sync()
        # Core invariant: cached order data converged to the backend's.
        backend_orders = backend.execute(
            "SELECT COUNT(*) FROM orders", database="tpcw"
        ).scalar
        cache_orders = caches[0].execute("SELECT COUNT(*) FROM cv_orders").scalar
        assert cache_orders == backend_orders
