"""Property tests for the placement strategies (HashRing, RangePartitioner)."""

from __future__ import annotations

import pytest

from repro.sharding import HashRing, RangePartitioner, stable_hash

pytestmark = pytest.mark.shard

KEYS = list(range(10_000))


def test_stable_hash_is_process_independent():
    # Known-answer: md5 is fixed, so these values hold on every run and
    # every machine — the property the builtin (salted) hash lacks.
    assert stable_hash("shard0#0") == stable_hash("shard0#0")
    assert stable_hash(42) == stable_hash("42")
    assert stable_hash("a") != stable_hash("b")
    assert 0 <= stable_hash("anything") < 2**64


def test_ring_lookup_is_deterministic_across_instances():
    first = HashRing([f"s{i}" for i in range(8)])
    second = HashRing([f"s{i}" for i in range(8)])
    assert [first.owner(key) for key in KEYS] == [second.owner(key) for key in KEYS]


def test_ring_construction_order_does_not_matter():
    names = [f"s{i}" for i in range(8)]
    forward = HashRing(names)
    backward = HashRing(reversed(names))
    assert [forward.owner(key) for key in KEYS] == [
        backward.owner(key) for key in KEYS
    ]


def test_ring_ownership_is_roughly_uniform():
    ring = HashRing([f"s{i}" for i in range(8)])
    counts = ring.ownership(KEYS)
    expected = len(KEYS) / 8
    for shard, count in counts.items():
        # Within 2x of fair share at 64 vnodes — loose on purpose; the
        # property under test is "no shard starves or hogs", not an exact
        # distribution.
        assert expected / 2 <= count <= expected * 2, (shard, counts)


def test_ring_add_shard_moves_about_one_nth_of_keys():
    before = HashRing([f"s{i}" for i in range(8)])
    owners_before = {key: before.owner(key) for key in KEYS}
    before.add_shard("s8")
    moved = sum(1 for key in KEYS if before.owner(key) != owners_before[key])
    # Ideal relocation is K/N = 1/9th; consistent hashing should land in
    # the same ballpark, and crucially nowhere near the ~8/9 modular
    # hashing would reshuffle.
    ideal = len(KEYS) / 9
    assert ideal / 3 <= moved <= ideal * 3, moved
    # Every moved key moved TO the new shard, never between old shards.
    assert all(
        before.owner(key) == "s8"
        for key in KEYS
        if before.owner(key) != owners_before[key]
    )


def test_ring_remove_shard_only_relocates_its_keys():
    ring = HashRing([f"s{i}" for i in range(8)])
    owners_before = {key: ring.owner(key) for key in KEYS}
    ring.remove_shard("s3")
    for key in KEYS:
        if owners_before[key] != "s3":
            assert ring.owner(key) == owners_before[key]
        else:
            assert ring.owner(key) != "s3"


def test_ring_version_bumps_and_duplicate_rejected():
    ring = HashRing(["a", "b"])
    version = ring.version
    ring.add_shard("c")
    assert ring.version == version + 1
    with pytest.raises(ValueError):
        ring.add_shard("c")
    with pytest.raises(ValueError):
        ring.remove_shard("zzz")


def test_ring_has_no_sql_slice():
    ring = HashRing(["a", "b"])
    with pytest.raises(NotImplementedError):
        ring.slice_predicate("a", "i_id")


# -- strategies agree on totals ----------------------------------------------


def test_range_and_hash_ownership_totals_agree():
    names = [f"s{i}" for i in range(5)]
    domain = list(range(1, 1001))
    ring = HashRing(names)
    ranges = RangePartitioner(names, 1, 1000)
    ring_counts = ring.ownership(domain)
    range_counts = ranges.ownership(domain)
    # Different placements, same partition: both cover every key exactly
    # once across the same shard set.
    assert set(ring_counts) == set(range_counts) == set(names)
    assert sum(ring_counts.values()) == sum(range_counts.values()) == len(domain)


def test_range_partitioner_slices_tile_the_domain():
    part = RangePartitioner([f"s{i}" for i in range(7)], 1, 100)
    covered = []
    for name in part.shards:
        low, high = part.slice(name)
        covered.extend(range(low, high + 1))
        for key in range(low, high + 1):
            assert part.owner(key) == name
    assert sorted(covered) == list(range(1, 101))


def test_range_partitioner_clamps_out_of_domain_keys():
    part = RangePartitioner(["a", "b"], 10, 29)
    assert part.owner(9) == "a"
    assert part.owner(1_000_000) == "b"


def test_range_split_and_boundary_primitives():
    part = RangePartitioner(["a", "b"], 1, 100)
    assert part.widest_shard() in ("a", "b")
    keep, give = part.plan_split("a")
    assert keep[0] == 1 and give[1] == 50 and keep[1] + 1 == give[0]
    version = part.version
    part.add_shard("c", *give)
    part.set_slice("a", *keep)
    assert part.version == version + 2
    assert part.owner(give[0]) == "c"
    vacated = part.remove_shard("c")
    assert vacated == give
    with pytest.raises(ValueError):
        part.slice("c")
