"""TPC-W scale configuration.

The paper ran 10,000 items and 10,000 emulated browsers (28.8 M customers,
77.8 M order lines). The reproduction defaults to laptop scale; every
dimension derives from ``num_items`` and ``num_ebs`` using the benchmark's
scaling rules (2880 customers per EB in the spec — scaled down here — and
0.9 orders per customer), so experiments exercise the same relative table
sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The benchmark's book subject categories.
SUBJECTS = [
    "ARTS", "BIOGRAPHIES", "BUSINESS", "CHILDREN", "COMPUTERS", "COOKING",
    "HEALTH", "HISTORY", "HOME", "HUMOR", "LITERATURE", "MYSTERY",
    "NON-FICTION", "PARENTING", "POLITICS", "REFERENCE", "RELIGION",
    "ROMANCE", "SELF-HELP", "SCIENCE-NATURE", "SCIENCE-FICTION", "SPORTS",
    "YOUTH", "TRAVEL",
]

#: Words sprinkled into titles so title search has hits.
TITLE_WORDS = [
    "SHADOW", "RIVER", "STONE", "NIGHT", "GARDEN", "WINTER", "CROWN",
    "SILENT", "GOLDEN", "LOST", "SECRET", "STORM", "BRIGHT", "HOLLOW",
]


@dataclass
class TPCWConfig:
    """Scale knobs for the reproduction."""

    num_items: int = 100
    num_ebs: int = 20  # emulated browsers at full benchmark scale
    seed: int = 42
    think_time: float = 1.0  # paper: fixed one-second user wait time
    bestseller_window: int = 100  # paper: last 3333 orders, scaled down
    search_result_limit: int = 20  # paper: TOP 50, scaled down

    # Derived sizes (scaled analogues of the spec's ratios).
    @property
    def num_customers(self) -> int:
        return max(20, self.num_ebs * 15)

    @property
    def num_addresses(self) -> int:
        return self.num_customers * 2

    @property
    def num_orders(self) -> int:
        return max(10, int(self.num_customers * 0.9))

    @property
    def num_authors(self) -> int:
        return max(5, self.num_items // 4)

    @property
    def num_countries(self) -> int:
        return 10

    @property
    def order_lines_per_order(self) -> int:
        return 3
