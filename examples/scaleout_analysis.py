"""Scale-out analysis: regenerate the paper's Figure 6 and summary table.

Calibrates per-interaction CPU demands by running every TPC-W interaction
on real engines (backend-only and through MTCache), then sweeps the number
of web/cache servers through the analytic cluster model and cross-checks
one point with the discrete-event simulator.

Run:  python examples/scaleout_analysis.py
"""

from repro.simulation import (
    ClusterModel,
    ClusterSpec,
    DESConfig,
    calibrate,
    simulate_cluster,
)
from repro.tpcw import TPCWConfig

MIX_NAMES = ("Browsing", "Shopping", "Ordering")


def main() -> None:
    config = TPCWConfig(num_items=200, num_ebs=40, bestseller_window=200)
    print("Calibrating service demands from real engine executions...")
    cal_cached = calibrate("cached", config, repetitions=6)
    cal_nocache = calibrate("nocache", config, repetitions=6)

    spec = ClusterSpec()  # dual-CPU backend, single-CPU web/cache machines
    cached_model = ClusterModel(cal_cached, spec)
    nocache_model = ClusterModel(cal_nocache, spec, replication_enabled=False)

    # --- Figure 6(a): throughput vs servers ---------------------------------
    print("\nFigure 6(a): WIPS vs number of web/cache servers")
    print(f"{'servers':>8s}" + "".join(f"{mix:>12s}" for mix in MIX_NAMES))
    curves = {mix: cached_model.curve(mix, 5) for mix in MIX_NAMES}
    for n in range(5):
        row = "".join(f"{curves[mix][n].wips:12.1f}" for mix in MIX_NAMES)
        print(f"{n + 1:8d}{row}")

    # --- Figure 6(b): backend CPU load ---------------------------------------
    print("\nFigure 6(b): backend CPU load vs number of web/cache servers")
    print(f"{'servers':>8s}" + "".join(f"{mix:>12s}" for mix in MIX_NAMES))
    for n in range(5):
        row = "".join(
            f"{curves[mix][n].backend_utilization:12.1%}" for mix in MIX_NAMES
        )
        print(f"{n + 1:8d}{row}")

    # --- Summary table (paper §6.2.1) ----------------------------------------
    print("\nSummary: no-cache baseline vs five web/cache servers")
    print(f"{'Workload':10s} {'base WIPS':>10s} {'cached@5':>10s} {'backend load':>13s}")
    for mix in MIX_NAMES:
        base = nocache_model.baseline_wips(mix)
        at5 = cached_model.point(mix, 5)
        print(
            f"{mix:10s} {base.wips:10.1f} {at5.wips:10.1f} "
            f"{at5.backend_utilization:13.1%}"
        )

    print("\nServers until the backend saturates (speculative analysis):")
    for mix in MIX_NAMES:
        print(f"  {mix:10s} ~{cached_model.max_scaleout(mix)} servers")

    # --- DES cross-check ------------------------------------------------------
    print("\nDiscrete-event cross-check (Shopping, 2 servers, 600 users):")
    result = simulate_cluster(
        cal_cached,
        DESConfig(users=600, mix_name="Shopping", servers=2, duration=60, warmup=10),
    )
    print(
        f"  DES WIPS={result.wips:.1f}  p90 latency={result.p90_latency:.2f}s  "
        f"web util={result.web_utilization:.0%}  backend util={result.backend_utilization:.0%}"
    )
    analytic = cached_model.point("Shopping", 2)
    print(f"  analytic bound at 90% web utilization: {analytic.wips:.1f} WIPS")


if __name__ == "__main__":
    main()
