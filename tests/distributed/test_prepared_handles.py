"""Prepared remote statements: the prepare/execute protocol (paper §4.3)."""

import pytest

from repro import Server
from repro.errors import PreparedStatementError


@pytest.fixture
def pair():
    local = Server("local")
    local.create_database("localdb")
    remote = Server("remote")
    remote.create_database("catdb")
    remote.execute(
        "CREATE TABLE part (id INT PRIMARY KEY, name VARCHAR(30), price FLOAT)"
    )
    for i in range(1, 11):
        remote.execute(f"INSERT INTO part VALUES ({i}, 'part{i}', {i * 2.5})")
    remote.database("catdb").analyze_all()
    local.linked_servers.register("remote", remote, "catdb")
    return local, remote


class TestPrepareExecute:
    def test_execute_by_handle_matches_text_path(self, pair):
        local, remote = pair
        link = local.linked_servers.get("remote")
        sql = "SELECT name FROM part WHERE id = @id"
        handle = link.prepare(sql)
        assert handle.execute({"id": 3}).rows == [("part3",)]
        assert handle.execute({"id": 7}).rows == [("part7",)]
        assert remote.execute(sql, params={"id": 3}).rows == [("part3",)]

    def test_text_ships_once(self, pair):
        local, remote = pair
        link = local.linked_servers.get("remote")
        handle = link.prepare("SELECT name FROM part WHERE id = @id")
        before = remote.parses
        for i in range(1, 6):
            handle.execute({"id": i})
        # One parse to prepare, zero per execution.
        assert remote.parses == before + 1
        assert handle.prepares == 1
        assert link.prepared_executions == 5

    def test_same_text_shares_one_handle(self, pair):
        local, _ = pair
        link = local.linked_servers.get("remote")
        sql = "SELECT price FROM part WHERE id = @id"
        assert link.prepare(sql) is link.prepare(sql)

    def test_remote_ddl_triggers_transparent_reprepare(self, pair):
        """A schema version bump re-prepares; the handle sees the new schema."""
        local, remote = pair
        link = local.linked_servers.get("remote")
        handle = link.prepare("SELECT * FROM part WHERE id = @id")
        row = handle.execute({"id": 2}).rows[0]
        assert len(row) == 3

        remote.execute("DROP TABLE part")
        remote.execute(
            "CREATE TABLE part (id INT PRIMARY KEY, name VARCHAR(30), "
            "price FLOAT, stock INT)"
        )
        remote.execute("INSERT INTO part VALUES (2, 'part2', 5.0, 40)")

        row = handle.execute({"id": 2}).rows[0]
        assert row == (2, "part2", 5.0, 40)
        assert remote.prepared_statement(handle.handle_id).reprepares == 1

    def test_lost_remote_handle_reprepares_from_text(self, pair):
        local, remote = pair
        link = local.linked_servers.get("remote")
        handle = link.prepare("SELECT name FROM part WHERE id = @id")
        handle.execute({"id": 1})
        first_id = handle.handle_id
        remote.close_prepared(first_id)
        # Transparent: the link re-prepares and the execution succeeds.
        assert handle.execute({"id": 4}).rows == [("part4",)]
        assert handle.handle_id != first_id

    def test_unknown_handle_raises(self, pair):
        _, remote = pair
        with pytest.raises(PreparedStatementError):
            remote.execute_prepared(999_999)


class TestRemoteQueryOpFastPath:
    def _route_remote(self, local):
        """Force a RemoteQueryOp: query a four-part remote table."""
        return local.execute(
            "SELECT ps.name FROM remote.catdb.dbo.part ps WHERE ps.id = @id",
            params={"id": 5},
        )

    def test_remote_query_executes_by_handle(self, pair):
        local, remote = pair
        link = local.linked_servers.get("remote")
        self._route_remote(local)
        parses_after_first = remote.parses
        for _ in range(4):
            self._route_remote(local)
        assert remote.parses == parses_after_first
        assert link.prepares == 1
        assert local.total_work.prepared_executions >= 4

    def test_fastpath_disabled_ships_text(self):
        local = Server("local", statement_fastpath=False)
        local.create_database("localdb")
        remote = Server("remote", statement_fastpath=False)
        remote.create_database("catdb")
        remote.execute("CREATE TABLE part (id INT PRIMARY KEY, name VARCHAR(30))")
        remote.execute("INSERT INTO part VALUES (1, 'p1')")
        remote.database("catdb").analyze_all()
        local.linked_servers.register("remote", remote, "catdb")
        link = local.linked_servers.get("remote")
        before = remote.parses
        for _ in range(3):
            local.execute("SELECT ps.name FROM remote.catdb.dbo.part ps")
        assert link.prepares == 0
        assert remote.parses >= before + 3


class TestForwardedDml:
    def test_forwarded_update_uses_prepared_handle(self, pair):
        local, remote = pair
        link = local.linked_servers.get("remote")
        before = remote.parses
        for i in range(1, 5):
            local.execute(
                "UPDATE remote.catdb.dbo.part SET price = @p WHERE id = @id",
                params={"p": float(i), "id": i},
            )
        assert remote.parses == before + 1
        assert link.prepares == 1
        assert remote.execute("SELECT price FROM part WHERE id = 4").rows == [(4.0,)]
