"""DTC commit-phase failures: in-doubt records and the recovery pass."""

import pytest

from repro import Server
from repro.common.clock import SimulatedClock
from repro.distributed.dtc import (
    DistributedTransactionCoordinator,
    recovery_log,
)
from repro.errors import DistributedError
from repro.faults import FaultInjector
from repro.obs.metrics import global_registry


def make_server(name):
    server = Server(name)
    server.create_database(f"db_{name}")
    server.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    return server


def begin_with_row(dtc, server, row):
    database = server.database(f"db_{server.name}")
    txn = dtc.begin_on(database)
    database.transactions.logged_insert(txn, database.storage_table("t"), row)
    return database


def row_count(server):
    return server.execute("SELECT COUNT(*) FROM t").scalar


@pytest.fixture(autouse=True)
def clean_recovery_log():
    recovery_log().clear()
    yield
    recovery_log().clear()


@pytest.fixture
def injector():
    return FaultInjector(SimulatedClock(), seed=0)


def test_between_phases_abort_leaves_an_in_doubt_record(injector):
    a, b, c = make_server("a"), make_server("b"), make_server("c")
    dtc = DistributedTransactionCoordinator()
    for index, server in enumerate((a, b, c)):
        begin_with_row(dtc, server, (index, index * 10))

    in_doubt_before = global_registry().counter("dtc.in_doubt").value
    injector.abort_participant_between_phases(dtc, index=1)
    with pytest.raises(DistributedError):
        dtc.commit()

    # Participant a committed before the failure; b's branch died in the
    # window; c was still active and must have been rolled back.
    assert row_count(a) == 1
    assert row_count(b) == 0
    assert row_count(c) == 0

    (record,) = dtc.in_doubt
    assert record.participants == 3
    assert record.committed == ["db_a"]
    assert record.failed == "db_b"
    assert record.rolled_back == ["db_c"]
    assert not record.resolved
    assert recovery_log().pending() == [record]
    assert global_registry().counter("dtc.in_doubt").value == in_doubt_before + 1


def test_abort_before_any_commit_is_a_clean_rollback(injector):
    a, b = make_server("a"), make_server("b")
    dtc = DistributedTransactionCoordinator()
    begin_with_row(dtc, a, (1, 1))
    begin_with_row(dtc, b, (2, 2))

    in_doubt_before = global_registry().counter("dtc.in_doubt").value
    injector.abort_participant_between_phases(dtc, index=0)
    with pytest.raises(DistributedError):
        dtc.commit()

    # Nothing committed anywhere: globally consistent, nothing in doubt.
    assert row_count(a) == 0
    assert row_count(b) == 0
    (record,) = dtc.in_doubt
    assert record.committed == []
    assert record.rolled_back == ["db_b"]
    assert global_registry().counter("dtc.in_doubt").value == in_doubt_before


def test_recovery_pass_resolves_records(injector):
    a, b = make_server("a"), make_server("b")
    dtc = DistributedTransactionCoordinator()
    begin_with_row(dtc, a, (1, 1))
    begin_with_row(dtc, b, (2, 2))
    injector.abort_participant_between_phases(dtc, index=1)
    heuristic_before = global_registry().counter("dtc.heuristic_outcomes").value
    with pytest.raises(DistributedError):
        dtc.commit()

    resolved = recovery_log().resolve()
    assert len(resolved) == 1
    # a committed while b aborted: a heuristic (mixed) outcome.
    assert resolved[0].resolution == "heuristic-damage"
    assert resolved[0].resolved
    assert (
        global_registry().counter("dtc.heuristic_outcomes").value
        == heuristic_before + 1
    )
    assert recovery_log().pending() == []
    # Idempotent: a second pass has nothing to do.
    assert recovery_log().resolve() == []


def test_clean_rollback_resolution_is_not_heuristic(injector):
    a, b = make_server("a"), make_server("b")
    dtc = DistributedTransactionCoordinator()
    begin_with_row(dtc, a, (1, 1))
    begin_with_row(dtc, b, (2, 2))
    injector.abort_participant_between_phases(dtc, index=0)
    heuristic_before = global_registry().counter("dtc.heuristic_outcomes").value
    with pytest.raises(DistributedError):
        dtc.commit()

    (resolved,) = recovery_log().resolve()
    assert resolved.resolution == "rolled_back"
    assert (
        global_registry().counter("dtc.heuristic_outcomes").value == heuristic_before
    )


def test_hook_is_one_shot(injector):
    a = make_server("a")
    dtc = DistributedTransactionCoordinator()
    begin_with_row(dtc, a, (1, 1))
    injector.abort_participant_between_phases(dtc, index=0)
    with pytest.raises(DistributedError):
        dtc.commit()
    assert dtc.on_before_commit_phase is None
    # A fresh coordinator is unaffected by the spent hook.
    dtc2 = DistributedTransactionCoordinator()
    begin_with_row(dtc2, a, (5, 5))
    dtc2.commit()
    assert row_count(a) == 1
