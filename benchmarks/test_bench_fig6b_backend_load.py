"""E1c — Figure 6(b): backend CPU load vs number of web/cache servers.

Paper: with caching enabled, backend load stays low and grows slowly for
Browsing/Shopping (the coasting backend) while Ordering drives it up
steeply — the reason Ordering cannot scale out.
"""


from benchmarks.conftest import emit


def test_bench_fig6b_backend_load(cached_model, benchmark, capsys):
    curves = {
        mix: cached_model.curve(mix, 5)
        for mix in ("Browsing", "Shopping", "Ordering")
    }
    lines = [f"{'servers':>8s} " + "".join(f"{mix:>12s}" for mix in curves)]
    for n in range(5):
        lines.append(
            f"{n + 1:8d} "
            + "".join(
                f"{curves[mix][n].backend_utilization:12.1%}" for mix in curves
            )
        )
    emit(capsys, "E1c / Figure 6(b): backend CPU load vs web/cache servers", lines)

    for mix, curve in curves.items():
        utils = [point.backend_utilization for point in curve]
        # Monotonically non-decreasing, never past the 90 % operating point.
        assert all(a <= b + 1e-9 for a, b in zip(utils, utils[1:])), mix
        assert utils[-1] <= 0.9 + 1e-9
    # Ordering loads the backend far more than Browsing at every point.
    for n in range(5):
        assert (
            curves["Ordering"][n].backend_utilization
            > curves["Shopping"][n].backend_utilization
            > curves["Browsing"][n].backend_utilization
        )

    benchmark(lambda: [cached_model.point("Ordering", n) for n in range(1, 6)])


def test_bench_speculative_max_scaleout(cached_model, capsys, benchmark):
    """The paper's §6.2.1 speculative analysis: Browsing should scale to
    roughly 10x more servers than Ordering before the backend saturates
    (paper: ~50 vs ~8-9; Shopping in between at ~25)."""
    limits = {
        mix: cached_model.max_scaleout(mix)
        for mix in ("Browsing", "Shopping", "Ordering")
    }
    emit(
        capsys,
        "E1c extension: servers until backend saturation (paper: ~50 / ~25 / <10)",
        [f"{mix:10s} {limit:5d}" for mix, limit in limits.items()],
    )
    assert limits["Browsing"] > limits["Shopping"] > limits["Ordering"]
    assert limits["Browsing"] >= 10 * limits["Ordering"] / 2  # order of magnitude

    benchmark(lambda: cached_model.max_scaleout("Browsing"))
