"""Distribution agents: periodic push of pending transactions.

A push agent wakes up on its polling interval, reads the distribution
database past its subscription's watermark and applies complete
transactions in commit order (§2.2). The agent is driven by virtual time:
``run_due(now)`` fires only when the poll interval has elapsed, which is
what gives replication its characteristic sub-second-to-seconds latency in
the paper's Experiment 3.
"""

from __future__ import annotations

from typing import List, Optional

from repro.replication.distributor import Distributor
from repro.replication.subscription import Subscription


class DistributionAgent:
    """A push agent serving one subscription."""

    def __init__(
        self,
        subscription: Subscription,
        distributor: Distributor,
        poll_interval: float = 0.25,
        mode: str = "push",
    ):
        """``mode`` follows SQL Server terminology (§2.2): a *push* agent
        runs on the distributor machine, a *pull* agent on the subscriber.
        Functionally identical; the cluster simulator charges the apply
        CPU to the corresponding machine."""
        if mode not in ("push", "pull"):
            raise ValueError(f"agent mode must be 'push' or 'pull', not {mode!r}")
        self.subscription = subscription
        self.distributor = distributor
        self.poll_interval = poll_interval
        self.mode = mode
        self.last_poll_time: float = float("-inf")
        self.transactions_applied = 0
        self.commands_applied = 0

    def due(self, now: float) -> bool:
        return now - self.last_poll_time >= self.poll_interval

    def run_due(self, now: float) -> int:
        """Poll if the interval has elapsed; returns transactions applied."""
        if not self.due(now):
            return 0
        return self.poll(now)

    def poll(self, now: Optional[float] = None) -> int:
        """Apply all pending transactions regardless of schedule."""
        if now is not None:
            self.last_poll_time = now
        pending = self.distributor.distribution_db.read_after(
            self.subscription.last_sequence
        )
        applied_transactions = 0
        for transaction in pending:
            applied = self.subscription.apply_transaction(transaction)
            self.commands_applied += applied
            applied_transactions += 1
        self.transactions_applied += applied_transactions
        return applied_transactions
