"""Repo AST lint pack: the tree is clean, seeded violations are caught."""

from __future__ import annotations

from textwrap import dedent

from repro.analysis.selflint import lint_package, lint_source


def _rules(diagnostics):
    return [d.rule for d in diagnostics]


def test_repository_is_clean():
    assert lint_package() == []


# -- wall-clock -------------------------------------------------------------


def test_wall_clock_flagged_in_simulation():
    source = dedent(
        """
        import time

        def now():
            return time.time()
        """
    )
    diagnostics = lint_source(source, "repro/simulation/fake.py")
    assert _rules(diagnostics) == ["wall-clock"]
    assert "SimulatedClock" in diagnostics[0].message


def test_datetime_now_flagged_in_simulation():
    source = dedent(
        """
        import datetime

        def now():
            return datetime.datetime.now()
        """
    )
    assert _rules(lint_source(source, "repro/simulation/fake.py")) == ["wall-clock"]


def test_wall_clock_allowed_outside_simulation():
    source = "import time\n\ndef now():\n    return time.time()\n"
    assert lint_source(source, "repro/obs/fake.py") == []


# -- bare-except ------------------------------------------------------------


def test_bare_except_flagged_in_engine():
    source = dedent(
        """
        def run():
            try:
                work()
            except:
                pass
        """
    )
    diagnostics = lint_source(source, "repro/engine/fake.py")
    assert _rules(diagnostics) == ["bare-except"]


def test_bare_except_flagged_in_replication():
    source = "try:\n    work()\nexcept:\n    pass\n"
    assert _rules(lint_source(source, "repro/replication/fake.py")) == ["bare-except"]


def test_narrow_except_is_clean():
    source = "try:\n    work()\nexcept ValueError:\n    pass\n"
    assert lint_source(source, "repro/engine/fake.py") == []


def test_bare_except_allowed_elsewhere():
    source = "try:\n    work()\nexcept:\n    pass\n"
    assert lint_source(source, "repro/tpcw/fake.py") == []


# -- metric-name-literal -----------------------------------------------------


def test_dynamic_metric_name_flagged():
    source = dedent(
        """
        def record(metrics, name):
            metrics.counter(name).inc()
        """
    )
    diagnostics = lint_source(source, "repro/engine/fake.py")
    assert _rules(diagnostics) == ["metric-name-literal"]


def test_literal_metric_name_is_clean():
    source = "def record(metrics):\n    metrics.counter('engine.requests').inc()\n"
    assert lint_source(source, "repro/engine/fake.py") == []


def test_dynamic_metric_name_allowed_in_obs():
    source = "def record(metrics, name):\n    metrics.counter(name).inc()\n"
    assert lint_source(source, "repro/obs/fake.py") == []


def test_metric_name_keyword_argument_checked():
    source = "def record(metrics, name):\n    metrics.gauge(name=name).add(1)\n"
    assert _rules(lint_source(source, "repro/engine/fake.py")) == ["metric-name-literal"]


# -- operator-children -------------------------------------------------------


def test_unregistered_child_flagged():
    source = dedent(
        """
        class BadOp(PhysicalOperator):
            def __init__(self, child):
                super().__init__(child.schema)
                self.child = child
        """
    )
    diagnostics = lint_source(source, "repro/exec/fake.py")
    assert _rules(diagnostics) == ["operator-children"]
    assert "child" in diagnostics[0].message


def test_missing_super_init_flagged():
    source = dedent(
        """
        class WorseOp(PhysicalOperator):
            def __init__(self, left, right):
                self.left = left
                self.right = right
        """
    )
    diagnostics = lint_source(source, "repro/exec/fake.py")
    assert _rules(diagnostics) == ["operator-children"]


def test_registered_children_are_clean():
    source = dedent(
        """
        class GoodOp(PhysicalOperator):
            def __init__(self, left, right):
                super().__init__(left.schema.concat(right.schema), [left, right])
        """
    )
    assert lint_source(source, "repro/exec/fake.py") == []


def test_non_operator_classes_ignored():
    source = dedent(
        """
        class Holder:
            def __init__(self, child):
                self.child = child
        """
    )
    assert lint_source(source, "repro/exec/fake.py") == []


# -- compile-at-build-time ---------------------------------------------------


def test_compile_in_execute_flagged():
    source = dedent(
        """
        class LazyOp(PhysicalOperator):
            def execute(self, ctx):
                predicate = compile_predicate(self.schema, self.expr)
                for row in self.children[0].execute(ctx):
                    if predicate(row, ctx) is True:
                        yield row
        """
    )
    diagnostics = lint_source(source, "repro/exec/fake.py")
    assert _rules(diagnostics) == ["compile-at-build-time"]
    assert "compile_predicate" in diagnostics[0].message


def test_compile_in_execute_batches_flagged():
    source = dedent(
        """
        class LazyOp(PhysicalOperator):
            def execute_batches(self, ctx):
                kernel = ExpressionCompiler(self.schema).compile(self.expr)
                yield [kernel(row, ctx) for row in self.rows]
        """
    )
    assert _rules(lint_source(source, "repro/exec/fake.py")) == [
        "compile-at-build-time"
    ]


def test_compile_in_next_methods_flagged():
    source = dedent(
        """
        class CursorOperator(PhysicalOperator):
            def __next__(self):
                return compile_scalar(self.schema, self.expr)

            def next_batch(self):
                return compile_scalar(self.schema, self.expr)
        """
    )
    diagnostics = lint_source(source, "repro/exec/fake.py")
    assert _rules(diagnostics) == ["compile-at-build-time"] * 2


def test_compile_in_init_is_clean():
    source = dedent(
        """
        class EagerOp(PhysicalOperator):
            def __init__(self, schema, expr):
                super().__init__(schema)
                self.predicate = compile_predicate(schema, expr)

            def execute(self, ctx):
                for row in self.children[0].execute(ctx):
                    if self.predicate(row, ctx) is True:
                        yield row
        """
    )
    assert lint_source(source, "repro/exec/fake.py") == []


def test_compile_outside_operator_classes_ignored():
    source = dedent(
        """
        class PlanBuilder:
            def execute(self, ctx):
                return compile_scalar(self.schema, self.expr)
        """
    )
    assert lint_source(source, "repro/exec/fake.py") == []


# -- parse errors ------------------------------------------------------------


def test_syntax_error_reported_as_parse():
    assert _rules(lint_source("def broken(:\n", "repro/engine/fake.py")) == ["parse"]


# -- session-construction ----------------------------------------------------


def test_session_construction_flagged_outside_client():
    source = dedent(
        """
        from repro.engine.session import Session

        def make():
            return Session(principal="dbo")
        """
    )
    diagnostics = lint_source(source, "repro/tpcw/fake.py")
    assert _rules(diagnostics) == ["session-construction"]
    assert "repro.client.connect" in diagnostics[0].message


def test_dotted_session_construction_flagged():
    source = dedent(
        """
        import repro.engine.session

        def make():
            return repro.engine.session.Session()
        """
    )
    assert _rules(lint_source(source, "repro/mtcache/fake.py")) == [
        "session-construction"
    ]


def test_session_construction_allowed_in_client_and_engine():
    source = "from repro.engine.session import Session\n\ns = Session()\n"
    assert lint_source(source, "repro/client/fake.py") == []
    assert lint_source(source, "repro/engine/fake.py") == []


def test_other_session_like_names_ignored():
    source = "s = UserSession(customer_id=1)\n"
    assert lint_source(source, "repro/tpcw/fake.py") == []


# -- raw-threading-lock ------------------------------------------------------


def test_threading_lock_flagged():
    source = dedent(
        """
        import threading

        lock = threading.Lock()
        """
    )
    diagnostics = lint_source(source, "repro/storage/fake.py")
    assert _rules(diagnostics) == ["raw-threading-lock"]
    assert "repro.common.locks" in diagnostics[0].message


def test_imported_rlock_flagged():
    source = dedent(
        """
        from threading import RLock

        lock = RLock()
        """
    )
    assert _rules(lint_source(source, "repro/engine/fake.py")) == [
        "raw-threading-lock"
    ]


def test_lock_chokepoints_are_exempt():
    source = "import threading\n\nlock = threading.Lock()\n"
    assert lint_source(source, "repro/common/locks.py") == []
    assert lint_source(source, "repro/engine/locks.py") == []


def test_lock_helpers_are_clean():
    source = dedent(
        """
        from repro.common.locks import condition, mutex

        a = mutex()
        b = condition()
        """
    )
    assert lint_source(source, "repro/client/fake.py") == []


# -- shard-ownership ---------------------------------------------------------


def test_builtin_hash_modulo_flagged_outside_sharding():
    source = dedent(
        """
        def pick(key, shards):
            return shards[hash(key) % len(shards)]
        """
    )
    assert _rules(lint_source(source, "repro/client/fake.py")) == [
        "shard-ownership"
    ]


def test_sharding_package_may_own_placement_arithmetic():
    source = "def pick(key, n):\n    return hash(key) % n\n"
    assert lint_source(source, "repro/sharding/fake.py") == []


def test_non_placement_modulo_is_clean():
    source = dedent(
        """
        from repro.sharding import stable_hash

        def pick(key, n):
            return stable_hash(key) % n

        def bucket(value, n):
            return value % n
        """
    )
    assert lint_source(source, "repro/client/fake.py") == []


# -- overload-bounded -------------------------------------------------------


def test_append_flagged_in_overload_core():
    source = dedent(
        """
        class Gate:
            def __init__(self):
                self.pending = []

            def enqueue(self, item):
                self.pending.append(item)
        """
    )
    diagnostics = lint_source(source, "repro/resilience/overload.py")
    assert _rules(diagnostics) == ["overload-bounded"]
    assert "scalar" in diagnostics[0].message


def test_unbounded_deque_flagged_in_deadline_core():
    source = dedent(
        """
        from collections import deque

        waiters = deque()
        """
    )
    diagnostics = lint_source(source, "repro/resilience/deadline.py")
    assert _rules(diagnostics) == ["overload-bounded"]
    assert "maxsize/maxlen" in diagnostics[0].message


def test_bounded_deque_is_clean_in_overload_core():
    source = dedent(
        """
        from collections import deque

        recent = deque(maxlen=32)
        seeded = deque([1, 2, 3], 8)
        """
    )
    assert lint_source(source, "repro/resilience/overload.py") == []


def test_sleep_flagged_in_overload_core():
    source = dedent(
        """
        import time

        def backpressure():
            time.sleep(0.1)
        """
    )
    diagnostics = lint_source(source, "repro/resilience/overload.py")
    assert _rules(diagnostics) == ["overload-bounded"]
    assert "fast rejection" in diagnostics[0].message


def test_queues_and_sleep_allowed_outside_the_overload_core():
    source = dedent(
        """
        import time
        from queue import Queue

        def worker(jobs):
            backlog = Queue()
            jobs.append(backlog)
            time.sleep(0.01)
        """
    )
    assert lint_source(source, "repro/tpcw/fake.py") == []


# -- net-raw-socket ----------------------------------------------------------


def test_raw_socket_flagged_outside_net():
    source = dedent(
        """
        import socket

        def dial(host, port):
            return socket.create_connection((host, port))
        """
    )
    diagnostics = lint_source(source, "repro/client/fake.py")
    assert _rules(diagnostics) == ["net-raw-socket"]
    assert "repro.client.connect" in diagnostics[0].message


def test_asyncio_stream_construction_flagged_outside_net():
    source = dedent(
        """
        import asyncio

        async def listen():
            return await asyncio.start_server(lambda r, w: None, "0.0.0.0", 1)
        """
    )
    assert _rules(lint_source(source, "repro/resilience/fake.py")) == [
        "net-raw-socket"
    ]


def test_from_imported_socket_names_flagged():
    source = dedent(
        """
        from socket import create_connection
        from asyncio import open_connection as dial

        def go():
            create_connection(("h", 1))
        """
    )
    assert _rules(lint_source(source, "repro/tpcw/fake.py")) == ["net-raw-socket"]


def test_raw_sockets_allowed_inside_net():
    source = dedent(
        """
        import asyncio
        import socket

        def dial(host, port):
            return socket.create_connection((host, port))

        async def listen(handler):
            return await asyncio.start_server(handler, "127.0.0.1", 0)
        """
    )
    assert lint_source(source, "repro/net/fake.py") == []


def test_session_construction_allowed_in_net():
    source = "from repro.engine.session import Session\n\ns = Session()\n"
    assert lint_source(source, "repro/net/fake.py") == []
