"""FailoverRouter + CacheServer read fallback: the availability layer."""

import pytest

from repro.errors import ConstraintError
from repro.faults import FaultInjector
from repro.resilience import FailoverRouter


@pytest.fixture
def injector(deployment):
    inj = FaultInjector(deployment.clock, seed=3)
    deployment.attach_fault_injector(inj)
    return inj


@pytest.fixture
def router(deployment, cache):
    return deployment.failover_connection(cache, probe_interval=1.0)


class TestRouter:
    def test_normal_operation_routes_to_the_cache(self, router, cache):
        result = router.execute("SELECT COUNT(*) FROM Cust1000")
        assert result.scalar == 100
        assert router.state == FailoverRouter.NORMAL
        assert router.failovers == 0
        assert router.rerouted_statements == 0

    def test_write_fails_over_when_cache_is_down(
        self, injector, router, cache, backend
    ):
        injector.crash_cache(cache)
        result = router.execute(
            "INSERT INTO orders VALUES (9001, 1, 10.0, 'OPEN')"
        )
        assert result is not None
        assert router.state == FailoverRouter.FAILED_OVER
        assert router.failovers == 1
        # The write landed on the backend, exactly once.
        count = backend.execute(
            "SELECT COUNT(*) FROM orders WHERE oid = 9001", database="shop"
        ).scalar
        assert count == 1

    def test_fails_back_after_recovery_and_probe_interval(
        self, injector, router, cache, deployment
    ):
        injector.crash_cache(cache)
        # Reads are absorbed by the cache facade's own fallback; a write
        # is what flips the router.
        router.execute("UPDATE customer SET cname = 'f1' WHERE cid = 1")
        assert router.state == FailoverRouter.FAILED_OVER

        # Restart alone is not enough: the next probe has to come due.
        injector.restart_cache(cache)
        routed_before = router.rerouted_statements
        router.execute("SELECT COUNT(*) FROM customer")
        assert router.rerouted_statements == routed_before + 1

        # Hysteresis: one healthy probe is not enough either — failback
        # waits for ``failback_threshold`` consecutive healthy probes.
        assert router.failback_threshold == 2
        deployment.clock.advance(router.probe_interval)
        router.execute("SELECT COUNT(*) FROM customer")
        assert router.state == FailoverRouter.FAILED_OVER
        assert router.failbacks == 0

        deployment.clock.advance(router.probe_interval)
        result = router.execute("SELECT COUNT(*) FROM Cust1000")
        assert result.scalar == 100
        assert router.state == FailoverRouter.NORMAL
        assert router.failbacks == 1

    def test_flapping_cache_causes_single_failover_failback_pair(
        self, injector, router, cache, deployment
    ):
        """Regression: a cache that dies, blips up for one probe, dies
        again and then recovers for good must produce exactly ONE
        failover and ONE failback — the hysteresis threshold absorbs the
        blip instead of bouncing traffic back and forth."""
        injector.crash_cache(cache)
        router.execute("UPDATE customer SET cname = 'flap' WHERE cid = 3")
        assert router.failovers == 1

        # Blip: healthy for exactly one probe cycle, then down again.
        injector.restart_cache(cache)
        deployment.clock.advance(router.probe_interval)
        router.execute("SELECT COUNT(*) FROM customer")  # healthy probe #1
        assert router.state == FailoverRouter.FAILED_OVER
        injector.crash_cache(cache)
        deployment.clock.advance(router.probe_interval)
        router.execute("SELECT COUNT(*) FROM customer")  # unhealthy: reset
        assert router.state == FailoverRouter.FAILED_OVER

        # Genuine recovery: two consecutive healthy probes fail back.
        injector.restart_cache(cache)
        for _ in range(router.failback_threshold):
            deployment.clock.advance(router.probe_interval)
            router.execute("SELECT COUNT(*) FROM customer")
        assert router.state == FailoverRouter.NORMAL
        assert router.failovers == 1
        assert router.failbacks == 1

    def test_reads_never_fail_during_the_outage(self, injector, router, cache):
        injector.crash_cache(cache)
        for _ in range(5):
            assert router.execute("SELECT COUNT(*) FROM customer").scalar == 200
        assert router.execute("SELECT COUNT(*) FROM orders").scalar == 400

    def test_deterministic_errors_are_not_rerouted(self, injector, router, cache):
        # A duplicate key is the application's bug on any server: the
        # router must surface it, not mask it by retrying elsewhere.
        with pytest.raises(ConstraintError):
            router.execute("INSERT INTO customer VALUES (1, 'dup', 'a', 'base')")
        assert router.state == FailoverRouter.NORMAL
        assert router.failovers == 0

    def test_counters_exported_on_the_cache_registry(
        self, injector, router, cache
    ):
        injector.crash_cache(cache)
        router.execute("UPDATE customer SET cname = 'f2' WHERE cid = 2")
        registry = cache.server.metrics
        assert registry.counter("resilience.failovers").value == 1
        assert registry.gauge("resilience.failover_state").value == 1.0


class TestCacheReadFallback:
    def test_link_outage_falls_back_for_reads(self, injector, cache, deployment):
        link = cache.server.linked_servers.get("backend")
        injector.wound_link(link, count=None)
        # orders is not cached: the plan needs the link, the link is
        # dead, the cache answers from the backend instead.
        result = cache.execute("SELECT COUNT(*) FROM orders")
        assert result.scalar == 400
        assert cache.fallback_reads >= 1

    def test_link_outage_does_not_mask_write_failures(self, injector, cache):
        from repro.errors import CircuitOpenError, LinkUnavailableError

        link = cache.server.linked_servers.get("backend")
        injector.wound_link(link, count=None)
        # Forwarded DML is not a read: silently running it on the backend
        # is the router's job (with its own session), not the cache's.
        with pytest.raises((LinkUnavailableError, CircuitOpenError)):
            cache.execute("INSERT INTO orders VALUES (9002, 1, 5.0, 'OPEN')")

    def test_healthy_reflects_server_and_breakers(self, injector, cache, deployment):
        assert cache.healthy()
        link = cache.server.linked_servers.get("backend")
        injector.wound_link(link, count=None)
        for _ in range(2):
            try:
                cache.execute("SELECT COUNT(*) FROM orders")
            except Exception:
                pass
        assert link.breaker.state == link.breaker.OPEN
        assert not cache.healthy()
        # An open-but-timed-out breaker counts as healthy again: the
        # half-open probe happens on the first routed statement.
        injector.heal_link(link)
        deployment.clock.advance(link.breaker.reset_timeout)
        assert cache.healthy()
        cache.server.crash()
        assert not cache.healthy()
