"""Linked servers: SQL Server's mechanism for distributed queries.

A :class:`ServerLink` connects one server to another by name. Remote
subexpressions arrive as *textual SQL* (the optimizer's DataTransfer
boundary renders plan fragments back to text) and are re-parsed and
re-optimized by the target server — matching the paper's observation that
plans cannot be shipped, only text.

The registry also tracks simple traffic counters (queries, statements)
used by tests and the cluster simulator.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.engine.results import Result
from repro.errors import DistributedError


class ServerLink:
    """A named link to another server (possibly a specific database)."""

    def __init__(self, name: str, server, database: Optional[str] = None):
        self.name = name
        self.server = server
        self.database = database
        self.queries_shipped = 0
        self.statements_shipped = 0

    def execute_remote_sql(self, sql: str, params: Optional[Dict[str, Any]] = None) -> List[Tuple]:
        """Execute a query remotely; returns its rows.

        Used by RemoteQueryOp: the remote side re-parses and re-optimizes.
        """
        self.queries_shipped += 1
        result = self.server.execute(sql, params=params, database=self.database)
        return result.rows

    def execute_statement_text(
        self, sql: str, params: Optional[Dict[str, Any]] = None
    ) -> Result:
        """Execute a forwarded statement (DML / EXEC); returns full result."""
        self.statements_shipped += 1
        return self.server.execute(sql, params=params, database=self.database)


class LinkedServerRegistry:
    """The set of linked servers registered on one server."""

    def __init__(self):
        self._links: Dict[str, ServerLink] = {}

    def register(self, name: str, server, database: Optional[str] = None) -> ServerLink:
        """Register (or replace) a linked server under ``name``."""
        link = ServerLink(name, server, database)
        self._links[name.lower()] = link
        return link

    def get(self, name: str) -> ServerLink:
        link = self._links.get(name.lower())
        if link is None:
            raise DistributedError(f"no linked server {name!r}")
        return link

    def names(self) -> List[str]:
        return list(self._links)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._links
