"""Mutation tests: every seeded plan corruption must be flagged.

Each test takes a real optimizer-produced plan (fresh, never the shared
plan cache's copy), corrupts exactly one invariant, and asserts the
verifier reports it under the expected rule — proving the verifier is
not vacuously green on the clean corpus.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis import check_plan, verify_plan
from repro.common.schema import Column, Schema
from repro.errors import AnalysisError
from repro.exec.operators import (
    FilterOp,
    IndexRangeScanOp,
    ProjectOp,
    RemoteQueryOp,
    SeqScanOp,
    UnionAllOp,
)
from repro.sql import parse_statements


def _plan(server, database, sql):
    statement = parse_statements(sql)[0]
    return server.optimizer_for(database).plan_select(statement)


def _rules(diagnostics):
    return {d.rule for d in diagnostics}


def _choose_plan(cache):
    """A fresh dynamic plan plus its ChoosePlan union node."""
    planned = _plan(
        cache.server, cache.database, "SELECT cid, cname FROM customer WHERE cid <= @cid"
    )
    unions = [
        op for op in planned.root.walk() if isinstance(op, UnionAllOp) and op.choose_plan
    ]
    assert unions, "fixture query must produce a ChoosePlan"
    return planned, unions[0]


def _find(root, kind):
    ops = [op for op in root.walk() if isinstance(op, kind)]
    assert ops, f"plan has no {kind.__name__}"
    return ops[0]


def _parent_of(root, target):
    for op in root.walk():
        if target in op.children:
            return op
    raise AssertionError("target has no parent")


# -- DataTransfer / DataLocation ------------------------------------------


def test_dropped_data_transfer_is_flagged(cache):
    """Replacing the RemoteQueryOp with a direct scan of the remote table
    violates DataLocation: remote rows without a DataTransfer boundary."""
    planned, _ = _choose_plan(cache)
    remote = _find(planned.root, RemoteQueryOp)
    parent = _parent_of(planned.root, remote)
    parent.children[parent.children.index(remote)] = SeqScanOp(remote.schema, "customer")
    diagnostics = verify_plan(planned, database=cache.database, params={"cid": 500})
    assert "data-location" in _rules(diagnostics)


def test_remote_query_with_children_is_flagged(cache):
    planned, _ = _choose_plan(cache)
    remote = _find(planned.root, RemoteQueryOp)
    remote.children.append(SeqScanOp(remote.schema, "Cust1000"))
    diagnostics = verify_plan(planned, database=cache.database, params={"cid": 500})
    assert "data-transfer" in _rules(diagnostics)


def test_unparsable_remote_sql_is_flagged(cache):
    planned, _ = _choose_plan(cache)
    remote = _find(planned.root, RemoteQueryOp)
    remote.sql_text = "SELECT FROM WHERE !!"
    diagnostics = verify_plan(planned, database=cache.database, params={"cid": 500})
    assert "data-transfer" in _rules(diagnostics)


def test_unknown_linked_server_is_flagged(cache):
    planned, _ = _choose_plan(cache)
    remote = _find(planned.root, RemoteQueryOp)
    remote.server_name = "no_such_link"
    diagnostics = verify_plan(planned, database=cache.database, params={"cid": 500})
    assert "catalog" in _rules(diagnostics)


# -- ChoosePlan well-formedness -------------------------------------------


def test_swapped_branch_schema_is_flagged(cache):
    """Renaming one branch's output columns breaks UnionAll name agreement."""
    planned, union = _choose_plan(cache)
    branch = union.children[0]
    renamed = Schema(
        [Column(f"mut_{c.name}", c.sql_type, c.qualifier, c.nullable) for c in branch.schema]
    )
    branch.schema = renamed
    diagnostics = verify_plan(planned, database=cache.database, params={"cid": 500})
    assert "schema-names" in _rules(diagnostics)


def test_branch_arity_mismatch_is_flagged(cache):
    planned, union = _choose_plan(cache)
    branch = union.children[0]
    branch.schema = Schema(list(branch.schema.columns[:1]))
    diagnostics = verify_plan(planned, database=cache.database, params={"cid": 500})
    assert "schema-arity" in _rules(diagnostics)


def test_missing_startup_predicate_is_flagged(cache):
    planned, union = _choose_plan(cache)
    union.children[0].startup_predicate = None
    diagnostics = verify_plan(planned, database=cache.database, params={"cid": 500})
    assert "choose-plan" in _rules(diagnostics)


def test_non_exclusive_guards_are_flagged(cache):
    """Copying one guard onto both branches: rows would duplicate or vanish."""
    planned, union = _choose_plan(cache)
    first, second = union.children
    second.startup_guard = first.startup_guard
    second.startup_predicate = first.startup_predicate
    diagnostics = verify_plan(planned, database=cache.database, params={"cid": 500})
    assert "choose-plan" in _rules(diagnostics)


def test_missing_guard_ast_is_flagged(cache):
    """A compiled guard without its source AST defeats exclusivity proofs."""
    planned, union = _choose_plan(cache)
    union.children[0].startup_guard = None
    diagnostics = verify_plan(planned, database=cache.database, params={"cid": 500})
    assert "choose-plan" in _rules(diagnostics)


def test_column_referencing_guard_is_flagged(cache):
    planned, union = _choose_plan(cache)
    guard = parse_statements("SELECT 1 FROM customer WHERE cid <= 100")[0].where
    union.children[0].startup_guard = guard
    diagnostics = verify_plan(planned, database=cache.database, params={"cid": 500})
    assert "choose-plan" in _rules(diagnostics)


def test_three_branch_choose_plan_is_flagged(cache):
    planned, union = _choose_plan(cache)
    extra = FilterOp(
        union.children[0].children[0],
        startup_predicate=union.children[0].startup_predicate,
        startup_guard=union.children[0].startup_guard,
    )
    union.children.append(extra)
    diagnostics = verify_plan(planned, database=cache.database, params={"cid": 500})
    assert "choose-plan" in _rules(diagnostics)


# -- Parameter binding -----------------------------------------------------


def test_unbound_parameter_is_flagged(cache):
    planned, _ = _choose_plan(cache)
    diagnostics = verify_plan(planned, database=cache.database, params={})
    assert "plan-params" in _rules(diagnostics)
    assert any("@cid" in str(d) for d in diagnostics)


def test_guard_parameter_outside_required_set_is_flagged(cache):
    """A guard referencing a parameter the statement never mentions means
    the plan depends on state the statement cannot supply."""
    planned, _ = _choose_plan(cache)
    stripped = dataclasses.replace(planned, required_parameters=frozenset())
    diagnostics = verify_plan(stripped, database=cache.database)
    assert "plan-params" in _rules(diagnostics)


# -- Schema agreement and catalog resolution -------------------------------


def test_dropped_project_maker_is_flagged(backend):
    database = backend.database("shop")
    planned = _plan(backend, database, "SELECT cid, cname FROM customer WHERE cid = 7")
    project = _find(planned.root, ProjectOp)
    project.makers = project.makers[:-1]
    diagnostics = verify_plan(planned, database=database)
    assert "schema-arity" in _rules(diagnostics)


def test_passthrough_schema_change_is_flagged(backend):
    database = backend.database("shop")
    planned = _plan(
        backend, database, "SELECT cid, cname FROM customer WHERE cname = 'cust1'"
    )
    filter_op = _find(planned.root, FilterOp)
    filter_op.schema = Schema(list(filter_op.schema.columns[:1]))
    diagnostics = verify_plan(planned, database=database)
    assert "schema-passthrough" in _rules(diagnostics)


def test_renamed_index_is_flagged(cache):
    planned, _ = _choose_plan(cache)
    scan = _find(planned.root, IndexRangeScanOp)
    scan.index_name = "ix_dropped"
    diagnostics = verify_plan(planned, database=cache.database, params={"cid": 500})
    assert "catalog" in _rules(diagnostics)


def test_check_plan_raises_on_first_error(cache):
    planned, union = _choose_plan(cache)
    union.children[0].startup_predicate = None
    with pytest.raises(AnalysisError) as excinfo:
        check_plan(planned, database=cache.database, params={"cid": 500})
    assert excinfo.value.rule == "choose-plan"
    assert excinfo.value.is_error
