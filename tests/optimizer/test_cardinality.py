"""Cardinality estimation and guard-frequency modes."""

import pytest

from repro.optimizer.cardinality import CardinalityEstimator
from repro.sql import parse_expression
from repro.storage.statistics import TableStatistics


def make_stats(values, column="cid"):
    rows = [(value,) for value in values]
    return TableStatistics.build("t", [column], rows)


class TestSelectivity:
    def test_equality_uses_ndv(self):
        estimator = CardinalityEstimator(make_stats(range(100)))
        sel = estimator.conjunct_selectivity(parse_expression("cid = 5"))
        assert sel == pytest.approx(0.01)

    def test_range_uses_histogram(self):
        estimator = CardinalityEstimator(make_stats(range(100)))
        sel = estimator.conjunct_selectivity(parse_expression("cid <= 24"))
        assert sel == pytest.approx(0.25, abs=0.06)

    def test_parameterized_range_default(self):
        estimator = CardinalityEstimator(make_stats(range(100)))
        sel = estimator.conjunct_selectivity(parse_expression("cid <= @p"))
        assert sel == pytest.approx(1.0 / 3.0)

    def test_like_default(self):
        estimator = CardinalityEstimator(make_stats(range(100)))
        assert estimator.conjunct_selectivity(parse_expression("cid LIKE 'x%'")) == 0.1

    def test_combined_selectivity_independence(self):
        estimator = CardinalityEstimator(make_stats(range(100)))
        combined = estimator.selectivity(
            [parse_expression("cid = 5"), parse_expression("cid = 6")]
        )
        assert combined == pytest.approx(0.0001)

    def test_no_stats_defaults(self):
        estimator = CardinalityEstimator(None)
        assert 0 < estimator.conjunct_selectivity(parse_expression("cid = 1")) <= 1

    def test_in_list_scales_with_length(self):
        estimator = CardinalityEstimator(None)
        short = estimator.conjunct_selectivity(parse_expression("cid IN (1)"))
        long = estimator.conjunct_selectivity(parse_expression("cid IN (1,2,3,4)"))
        assert long > short


class TestGuardFrequency:
    def guard(self, text):
        return parse_expression(text)

    def test_uniform_mode_linear(self):
        estimator = CardinalityEstimator(make_stats(range(0, 101)))
        frequency = estimator.guard_frequency_for_column(self.guard("@p <= 50"), "cid")
        assert frequency == pytest.approx(0.5, abs=0.02)

    def test_uniform_mode_extremes(self):
        estimator = CardinalityEstimator(make_stats(range(0, 101)))
        assert estimator.guard_frequency_for_column(self.guard("@p <= -10"), "cid") == 0.0
        assert estimator.guard_frequency_for_column(self.guard("@p <= 500"), "cid") == 1.0

    def test_column_mode_tracks_skew(self):
        # 90% of values at 1, tail spread to 100: for @p <= 10 the uniform
        # assumption says ~10%, the column distribution says ~90%.
        values = [1] * 90 + list(range(11, 101, 9))
        uniform = CardinalityEstimator(make_stats(values))
        column = CardinalityEstimator(make_stats(values), parameter_distribution="column")
        guard = self.guard("@p <= 10")
        uniform_f = uniform.guard_frequency_for_column(guard, "cid")
        column_f = column.guard_frequency_for_column(guard, "cid")
        assert uniform_f < 0.2
        assert column_f > 0.7

    def test_and_guards_multiply(self):
        estimator = CardinalityEstimator(make_stats(range(0, 101)))
        frequency = estimator.guard_frequency_for_column(
            self.guard("@p <= 50 AND @q <= 50"), "cid"
        )
        assert frequency == pytest.approx(0.25, abs=0.03)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            CardinalityEstimator(None, parameter_distribution="weird")

    def test_unknown_shape_defaults_half(self):
        estimator = CardinalityEstimator(None)
        assert estimator.guard_frequency(self.guard("@p LIKE 'x'")) == 0.5


class TestPlannerIntegration:
    def test_mode_flows_through_optimizer(self):
        from repro import MTCacheDeployment
        from tests.conftest import make_shop_backend

        backend = make_shop_backend()
        deployment = MTCacheDeployment(backend, "shop")
        cache = deployment.add_cache_server(
            "colmode", optimizer_options={"parameter_distribution": "column"}
        )
        cache.create_cached_view(
            "CREATE CACHED VIEW cm AS SELECT cid, cname FROM customer WHERE cid <= 100"
        )
        planned = cache.plan("SELECT cid, cname FROM customer WHERE cid <= @c")
        assert planned.is_dynamic
        result = cache.execute(
            "SELECT cid, cname FROM customer WHERE cid <= @c", params={"c": 10}
        )
        assert len(result.rows) == 10
