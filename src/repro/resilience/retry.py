"""Retry policies for transient distributed failures.

Backoff happens in virtual time: a "sleep" advances the shared
:class:`~repro.common.clock.SimulatedClock`, so retries are visible to
lag gauges and deadlines, deterministic under a fixed seed, and free of
wall-clock reads. Jitter comes from an *injected* RNG; with no RNG the
schedule is purely exponential and fully deterministic.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Optional, TypeVar

from repro.errors import ReproError, is_transient

T = TypeVar("T")


class RetryPolicy:
    """Bounded exponential backoff with jitter and a deadline budget.

    ``max_attempts`` counts the initial try; ``deadline`` caps the total
    virtual time a single logical call may consume across retries (the
    per-call budget — a retry is abandoned if its backoff would overrun
    it). Only errors marked transient (``repro.errors.is_transient``) are
    retried: transient faults raise *before* remote effects, so retrying
    cannot double-apply work.
    """

    def __init__(
        self,
        max_attempts: int = 4,
        base_delay: float = 0.05,
        multiplier: float = 2.0,
        max_delay: float = 1.0,
        jitter: float = 0.25,
        deadline: float = 5.0,
        rng: Optional[random.Random] = None,
    ):
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter
        self.deadline = deadline
        self.rng = rng

    def backoff(self, attempt: int) -> float:
        """Backoff delay after failed attempt number ``attempt`` (1-based).

        Draws jitter from the injected RNG (one draw per call — callers
        must not call this twice for the same retry decision).
        """
        delay = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
        if self.rng is not None and self.jitter > 0.0:
            delay *= 1.0 + self.rng.uniform(-self.jitter, self.jitter)
        return delay

    def next_delay(
        self,
        attempt: int,
        started: float,
        now: float,
        budget: Optional[float] = None,
    ) -> Optional[float]:
        """The delay before retrying, or None when the policy gives up.

        ``attempt`` is the 1-based number of the attempt that just
        failed; ``started`` is the virtual time of the first attempt.
        Gives up when attempts are exhausted, the backoff would blow the
        per-call deadline budget, or — when ``budget`` is given (the
        ambient end-to-end deadline's remaining time) — the backoff
        would sleep past it. Sleeping past an end-to-end deadline is
        never useful: the retried call would be rejected on arrival, so
        the policy abandons instead.
        """
        if attempt >= self.max_attempts:
            return None
        delay = self.backoff(attempt)
        if (now - started) + delay > self.deadline:
            return None
        if budget is not None and delay >= budget:
            return None
        return delay

    def run(
        self,
        fn: Callable[[], T],
        clock: Any,
        on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
    ) -> T:
        """Call ``fn`` under this policy, backing off on the virtual clock.

        Honors the ambient end-to-end deadline (:mod:`.deadline`): the
        backoff never advances the clock past the remaining budget, and
        an already-expired deadline raises before another attempt runs.
        """
        from repro.resilience.deadline import check_deadline, remaining_budget

        started = clock.now()
        attempt = 1
        while True:
            check_deadline("retry attempt")
            try:
                return fn()
            except ReproError as exc:
                if not is_transient(exc):
                    raise
                delay = self.next_delay(
                    attempt, started, clock.now(), budget=remaining_budget()
                )
                if delay is None:
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc, delay)
                clock.advance(delay)
                attempt += 1


def default_link_policy(link_name: str) -> RetryPolicy:
    """The retry policy links get by default.

    Jitter is seeded from a stable digest of the link name (``hash()`` is
    salted per process and would break determinism), so every link has
    its own — but reproducible — jitter stream.
    """
    import zlib

    return RetryPolicy(rng=random.Random(zlib.crc32(link_name.encode("utf-8"))))
