"""Discrete-event simulation of the TPC-W cluster.

Models the paper's measurement setup directly: emulated users with a fixed
one-second think time issue interactions against their web/cache machine;
each interaction consumes calibrated CPU demand on the web/cache machine
and on the backend; machines are FCFS multi-server queues; transactional
replication runs as periodic log-reader and distribution-agent jobs that
compete for the same CPUs — which is why propagation latency stretches
under load (Experiment 3: 0.55 s light vs 1.67 s saturated).
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.simulation.analytic import ClusterSpec
from repro.simulation.calibrate import CalibrationResult
from repro.tpcw.workload import MIXES


@dataclass
class ChaosSpec:
    """Kill one web/cache machine for a window of simulated time.

    While down, its users' interactions fail over: the whole interaction
    (cache work included) runs on the backend, and the machine's
    distribution agent stops draining — replicated commands back up in
    its apply queue and drain after restart. This is the availability
    scenario: throughput dips, nothing is lost, lag converges.
    """

    server_index: int = 0
    kill_at: float = 40.0
    restart_at: float = 70.0


@dataclass
class DESConfig:
    """Simulation parameters."""

    users: int = 50
    mix_name: str = "Shopping"
    servers: int = 1  # web/cache machines
    duration: float = 120.0
    warmup: float = 20.0
    think_time: float = 1.0  # the paper fixed user wait time at 1 s
    caching: bool = True
    replication: bool = True
    logreader_interval: float = 0.25
    agent_interval: float = 0.25
    agent_mode: str = "pull"  # "pull": apply CPU on cache; "push": on backend
    service_jitter: float = 0.25  # +- fraction of deterministic demand
    seed: int = 99
    chaos: Optional[ChaosSpec] = None
    # Partitioned cache tier (repro.sharding): each web/cache machine
    # subscribes only to its slice of the partitioned articles, so apply
    # work divides across the tier instead of replicating in full to
    # every machine (the paper's Figure 6 setup, which flattens past ~5
    # servers precisely because apply cost is paid N times).
    sharded: bool = False
    #: Fraction of replicated commands hitting broadcast (unpartitioned)
    #: views, which still reach every shard in full.
    broadcast_fraction: float = 0.2
    #: Zipf-ish exponent skewing user placement across shards (0 = even).
    #: Models hot shards: weight of shard k is 1/(k+1)**shard_skew.
    shard_skew: float = 0.0
    #: Admission control (PR 9): bound each machine's FCFS queue. An
    #: interaction arriving at a machine whose queue is full is *shed* —
    #: rejected up front before consuming any CPU, counted, and the user
    #: returns to think time (fail fast, try again). ``None`` keeps the
    #: pre-PR-9 unbounded queues. Replication jobs are never shed: load
    #: shedding must not silently drop writes, so apply work always
    #: queues (it is the admission-rejected *interactions* that shrink
    #: the replication stream, not dropped commands).
    queue_limit: Optional[int] = None


@dataclass
class DESResult:
    """Aggregate simulation output."""

    wips: float
    mean_latency: float
    p90_latency: float
    backend_utilization: float
    web_utilization: float
    completed: int
    replication_latency: Optional[float]
    replication_samples: int
    # Chaos scenario output (zeros when cfg.chaos is None).
    failover_interactions: int = 0
    chaos_backlog_peak: int = 0
    replication_latency_max: float = 0.0
    #: Hottest single web/cache machine (interesting under shard_skew).
    web_utilization_max: float = 0.0
    # Overload scenario output (zeros when cfg.queue_limit is None).
    #: Interactions rejected at admission (fail-fast, never silent).
    shed_interactions: int = 0
    #: Deepest FCFS queue observed on any machine — bounded by
    #: cfg.queue_limit when admission control is on.
    queue_depth_peak: int = 0
    #: Replication (write-apply) jobs dropped by shedding — always 0;
    #: kept in the result so tests assert the invariant directly.
    shed_writes: int = 0


class _Machine:
    """A FCFS multi-server CPU station (optionally with a bounded queue)."""

    def __init__(
        self, sim: "_Simulator", name: str, cpus: int, queue_limit: Optional[int] = None
    ):
        self.sim = sim
        self.name = name
        self.cpus = cpus
        self.busy = 0
        self.queue: List[Tuple[float, Callable]] = []
        self.queue_limit = queue_limit
        self.queue_depth_peak = 0
        self.shed = 0
        self.busy_time = 0.0
        # Chaos: a down machine accepts no new work (in-flight jobs — work
        # already on its CPUs or queued — still complete; the kill models
        # new connections being refused, not the host vaporizing).
        self.down = False

    def submit(self, demand: float, done: Callable, sheddable: bool = False) -> bool:
        """Queue one job; returns False when admission control sheds it.

        Only ``sheddable`` jobs (user interactions) can be rejected, and
        only when the queue is full; replication apply work always queues
        — shedding must never silently drop writes.
        """
        if demand <= 0:
            done()
            return True
        if self.busy < self.cpus:
            self._start(demand, done)
            return True
        if (
            sheddable
            and self.queue_limit is not None
            and len(self.queue) >= self.queue_limit
        ):
            self.shed += 1
            return False
        self.queue.append((demand, done))
        self.queue_depth_peak = max(self.queue_depth_peak, len(self.queue))
        return True

    def _start(self, demand: float, done: Callable) -> None:
        self.busy += 1
        self.busy_time += demand

        def finish():
            self.busy -= 1
            if self.queue:
                next_demand, next_done = self.queue.pop(0)
                self._start(next_demand, next_done)
            done()

        self.sim.schedule(demand, finish)


class _Simulator:
    """The event loop plus TPC-W workload logic."""

    def __init__(self, calibration: CalibrationResult, spec: ClusterSpec, cfg: DESConfig):
        self.calibration = calibration
        self.spec = spec
        self.cfg = cfg
        self.rng = random.Random(cfg.seed)
        self.mix = MIXES[cfg.mix_name]
        self.now = 0.0
        self._events: List[Tuple[float, int, Callable]] = []
        self._sequence = itertools.count()

        self.backend = _Machine(self, "backend", spec.backend_cpus, cfg.queue_limit)
        self.webs = [
            _Machine(self, f"web{i}", spec.web_cpus, cfg.queue_limit)
            for i in range(cfg.servers)
        ]

        self.latencies: List[float] = []
        self.completed = 0
        # Replication pipeline state: committed -> distributed -> applied.
        self.pending_commit: List[Tuple[float, float]] = []  # (commit_ts, commands)
        self.pending_apply: List[List[Tuple[float, float]]] = [
            [] for _ in range(cfg.servers)
        ]
        self.replication_latencies: List[float] = []
        self._measure_start = cfg.warmup
        # Chaos bookkeeping.
        self.failover_interactions = 0
        self.chaos_backlog_peak = 0
        # Overload bookkeeping (admission control, PR 9).
        self.shed_interactions = 0

    # -- event loop ----------------------------------------------------------

    def schedule(self, delay: float, callback: Callable) -> None:
        heapq.heappush(self._events, (self.now + delay, next(self._sequence), callback))

    def run(self) -> None:
        cfg = self.cfg
        placements = self._user_placements(cfg.users)
        for user in range(cfg.users):
            web = self.webs[placements[user]]
            # Stagger arrivals through the first think time.
            self.schedule(self.rng.uniform(0, cfg.think_time), self._make_user(web))
        if cfg.replication and cfg.caching:
            self.schedule(cfg.logreader_interval, self._logreader_tick)
            for index in range(cfg.servers):
                self.schedule(cfg.agent_interval, self._make_agent(index))
        if cfg.chaos is not None:
            chaos = cfg.chaos
            target = self.webs[chaos.server_index]
            self.schedule(chaos.kill_at, lambda: self._set_down(target, True))
            self.schedule(chaos.restart_at, lambda: self._set_down(target, False))
        while self._events:
            time, _, callback = heapq.heappop(self._events)
            if time > cfg.duration:
                break
            self.now = time
            callback()

    def _set_down(self, machine: _Machine, down: bool) -> None:
        machine.down = down

    def _user_placements(self, users: int) -> List[int]:
        """Which web/cache machine each user homes to.

        Even round-robin by default; with ``shard_skew`` > 0, a weighted
        draw with Zipf-shaped weights so early shards run hot — the
        scenario rebalancing (boundary moves) exists to fix.
        """
        cfg = self.cfg
        if not cfg.sharded or cfg.shard_skew <= 0 or len(self.webs) == 1:
            return [user % len(self.webs) for user in range(users)]
        weights = [1.0 / (index + 1) ** cfg.shard_skew for index in range(len(self.webs))]
        indices = list(range(len(self.webs)))
        return self.rng.choices(indices, weights=weights, k=users)

    # -- users -----------------------------------------------------------------

    def _jitter(self, demand: float) -> float:
        spread = self.cfg.service_jitter
        return demand * self.rng.uniform(1.0 - spread, 1.0 + spread)

    def _make_user(self, web: _Machine) -> Callable:
        def issue():
            start = self.now
            interaction = self.mix.sample(self.rng)
            profile = self.calibration.profiles[interaction]
            spec = self.spec
            web_demand = self._jitter(
                (profile.cache_work + spec.web_overhead) / spec.cpu_capacity
            )
            backend_demand = self._jitter(profile.backend_work / spec.cpu_capacity)
            commands = profile.replication_commands

            def backend_done():
                if (
                    self.cfg.replication
                    and self.cfg.caching
                    and commands > 0
                ):
                    self.pending_commit.append((self.now, commands))
                self._complete(start)
                self.schedule(self.cfg.think_time, issue)

            def web_done():
                if backend_demand > 0:
                    self.backend.submit(backend_demand, backend_done)
                else:
                    backend_done()

            if web.down:
                # Failover: the interaction runs start-to-finish on the
                # backend — its share of cache work included — so users
                # see degraded latency, never an error (the router's
                # zero-failed-interactions property, in queueing terms).
                self.failover_interactions += 1
                admitted = self.backend.submit(
                    web_demand + backend_demand, backend_done, sheddable=True
                )
            else:
                admitted = web.submit(web_demand, web_done, sheddable=True)
            if not admitted:
                # Admission control shed the interaction before any CPU
                # was spent: a fast, *visible* rejection. The user backs
                # off for a think time and retries — the queue stays
                # bounded and in-flight work keeps completing (goodput).
                self.shed_interactions += 1
                self.schedule(self.cfg.think_time, issue)

        return issue

    def _complete(self, start: float) -> None:
        if start >= self._measure_start:
            self.latencies.append(self.now - start)
            self.completed += 1

    # -- replication ---------------------------------------------------------------

    def _logreader_tick(self) -> None:
        batch = self.pending_commit
        self.pending_commit = []
        if batch:
            commands = sum(count for _, count in batch)
            demand = commands * self.spec.logreader_work_per_command / self.spec.cpu_capacity

            def distributed():
                if self.cfg.sharded and len(self.pending_apply) > 1:
                    # Partitioned articles: each shard applies only the
                    # broadcast commands plus its 1/N slice of the
                    # partitioned ones — scale the command counts rather
                    # than tracking per-key ownership.
                    share = self.cfg.broadcast_fraction + (
                        1.0 - self.cfg.broadcast_fraction
                    ) / len(self.pending_apply)
                    scaled = [(ts, count * share) for ts, count in batch]
                    for target in self.pending_apply:
                        target.extend(scaled)
                else:
                    for target in self.pending_apply:
                        target.extend(batch)

            self.backend.submit(self._jitter(demand), distributed)
        self.schedule(self.cfg.logreader_interval, self._logreader_tick)

    def _make_agent(self, index: int) -> Callable:
        def tick():
            if self.webs[index].down:
                # Dead subscriber: nothing drains; the distribution
                # backlog (watermark-retained commands) builds until
                # restart, then drains in one burst. The peak is the
                # chaos scenario's headline number.
                backlog = sum(count for _, count in self.pending_apply[index])
                self.chaos_backlog_peak = max(self.chaos_backlog_peak, int(backlog))
                self.schedule(self.cfg.agent_interval, tick)
                return
            batch = self.pending_apply[index]
            self.pending_apply[index] = []
            if batch:
                commands = sum(count for _, count in batch)
                demand = (
                    commands * self.spec.apply_work_per_command / self.spec.cpu_capacity
                )

                def applied():
                    if self.now >= self._measure_start:
                        for commit_ts, _ in batch:
                            self.replication_latencies.append(self.now - commit_ts)

                # Pull agents burn subscriber CPU; push agents burn the
                # distributor's (co-located with the backend here).
                machine = (
                    self.webs[index]
                    if self.cfg.agent_mode == "pull"
                    else self.backend
                )
                machine.submit(self._jitter(demand), applied)
            self.schedule(self.cfg.agent_interval, tick)

        return tick

    # -- results ---------------------------------------------------------------

    def result(self) -> DESResult:
        cfg = self.cfg
        window = max(1e-9, min(self.now, cfg.duration) - cfg.warmup)
        wips = self.completed / window
        latencies = sorted(self.latencies)
        mean_latency = sum(latencies) / len(latencies) if latencies else 0.0
        p90 = latencies[int(0.9 * (len(latencies) - 1))] if latencies else 0.0
        total_time = min(self.now, cfg.duration)
        backend_util = self.backend.busy_time / (
            total_time * self.backend.cpus
        )
        web_busy = sum(machine.busy_time for machine in self.webs)
        web_util = web_busy / (total_time * len(self.webs) * self.spec.web_cpus)
        web_util_max = max(
            machine.busy_time / (total_time * self.spec.web_cpus)
            for machine in self.webs
        )
        repl_latency = (
            sum(self.replication_latencies) / len(self.replication_latencies)
            if self.replication_latencies
            else None
        )
        return DESResult(
            wips=wips,
            mean_latency=mean_latency,
            p90_latency=p90,
            backend_utilization=min(1.0, backend_util),
            web_utilization=min(1.0, web_util),
            completed=self.completed,
            replication_latency=repl_latency,
            replication_samples=len(self.replication_latencies),
            failover_interactions=self.failover_interactions,
            chaos_backlog_peak=self.chaos_backlog_peak,
            replication_latency_max=(
                max(self.replication_latencies) if self.replication_latencies else 0.0
            ),
            web_utilization_max=min(1.0, web_util_max),
            shed_interactions=self.shed_interactions,
            queue_depth_peak=max(
                machine.queue_depth_peak
                for machine in [self.backend, *self.webs]
            ),
            # Writes are never sheddable, so every machine's shed count
            # is interaction-only; replication jobs cannot appear here.
            shed_writes=0,
        )


def simulate_cluster(
    calibration: CalibrationResult,
    cfg: DESConfig,
    spec: Optional[ClusterSpec] = None,
) -> DESResult:
    """Run one simulation and return its aggregate result."""
    simulator = _Simulator(calibration, spec or ClusterSpec(), cfg)
    simulator.run()
    return simulator.result()


def saturating_users(
    calibration: CalibrationResult,
    base_cfg: DESConfig,
    spec: Optional[ClusterSpec] = None,
    latency_limit: float = 3.0,
    max_users: int = 2000,
) -> Tuple[int, DESResult]:
    """The paper's procedure: raise users until p90 latency hits the limit.

    Returns the largest user count whose p90 latency stays within bounds,
    along with its result.
    """
    spec = spec or ClusterSpec()
    best: Optional[Tuple[int, DESResult]] = None
    users = max(4, base_cfg.users)
    while users <= max_users:
        cfg = DESConfig(**{**base_cfg.__dict__, "users": users})
        result = simulate_cluster(calibration, cfg, spec)
        if result.p90_latency > latency_limit:
            break
        best = (users, result)
        users = int(users * 1.5) + 1
    if best is None:
        cfg = DESConfig(**{**base_cfg.__dict__, "users": 4})
        return 4, simulate_cluster(calibration, cfg, spec)
    return best
