"""ServerLink resilience: retries, circuit breaking, handle recovery.

Uses the shared shop fixtures: ``cache`` is a CacheServer whose shadow
database reaches the backend through the ``backend`` link — the link
every wounded-path test targets.
"""

import pytest

from repro.errors import CircuitOpenError, LinkUnavailableError
from repro.faults import FaultInjector


@pytest.fixture
def injector(deployment):
    inj = FaultInjector(deployment.clock, seed=7)
    deployment.attach_fault_injector(inj)
    return inj


@pytest.fixture
def link(cache):
    return cache.server.linked_servers.get("backend")


class TestRetry:
    def test_transient_fault_is_retried_transparently(self, injector, link):
        injector.wound_link(link, kind="query", count=1)
        rows = link.execute_remote_sql("SELECT COUNT(*) FROM customer")
        assert rows == [(200,)]
        assert link.retries == 1
        assert injector.injected == 1

    def test_backoff_advances_the_virtual_clock(self, injector, link, deployment):
        before = deployment.clock.now()
        injector.wound_link(link, kind="query", count=2)
        link.execute_remote_sql("SELECT COUNT(*) FROM customer")
        assert link.retries == 2
        assert deployment.clock.now() > before

    def test_persistent_wound_exhausts_retries(self, injector, link):
        injector.wound_link(link, kind="query", count=None)
        with pytest.raises(LinkUnavailableError):
            link.execute_remote_sql("SELECT COUNT(*) FROM customer")
        # One initial attempt + (max_attempts - 1) retries, all injected.
        assert link.retries == link.retry_policy.max_attempts - 1
        assert injector.injected == link.retry_policy.max_attempts

    def test_injected_latency_delays_without_failing(self, injector, link, deployment):
        injector.wound_link(link, kind="query", action="latency", latency=0.5, count=1)
        before = deployment.clock.now()
        rows = link.execute_remote_sql("SELECT COUNT(*) FROM customer")
        assert rows == [(200,)]
        assert deployment.clock.now() == pytest.approx(before + 0.5)
        assert link.retries == 0

    def test_deterministic_errors_are_not_retried(self, injector, link):
        # A parse error from the remote side must propagate on the first
        # attempt: retrying can never fix it.
        from repro.errors import SqlError

        with pytest.raises(SqlError):
            link.execute_remote_sql("SELEKT banana")
        assert link.retries == 0


class TestBreaker:
    def test_breaker_trips_then_fails_fast_then_recovers(
        self, injector, link, deployment
    ):
        injector.wound_link(link, kind="*", count=None)

        # First call burns through all retry attempts (4 failures).
        with pytest.raises(LinkUnavailableError):
            link.execute_remote_sql("SELECT COUNT(*) FROM customer")
        assert link.breaker.state == link.breaker.CLOSED

        # Second call's first failure is the fifth: the breaker trips and
        # the retry loop is rejected by it.
        with pytest.raises(CircuitOpenError):
            link.execute_remote_sql("SELECT COUNT(*) FROM customer")
        assert link.breaker.state == link.breaker.OPEN

        # While open, calls fail fast: the injector never even fires.
        fired_before = injector.injected
        with pytest.raises(CircuitOpenError):
            link.execute_remote_sql("SELECT COUNT(*) FROM customer")
        assert injector.injected == fired_before

        # Heal and wait out the reset timeout: the half-open probe
        # succeeds and the breaker closes.
        injector.heal_link(link)
        deployment.clock.advance(link.breaker.reset_timeout)
        rows = link.execute_remote_sql("SELECT COUNT(*) FROM customer")
        assert rows == [(200,)]
        assert link.breaker.state == link.breaker.CLOSED

    def test_breaker_covers_all_three_call_paths(self, injector, link):
        injector.wound_link(link, kind="statement", count=None)
        for _ in range(2):
            with pytest.raises((LinkUnavailableError, CircuitOpenError)):
                link.execute_statement_text(
                    "UPDATE customer SET cname = 'x' WHERE cid = 1"
                )
        assert link.breaker.state == link.breaker.OPEN
        # The open breaker also rejects the other paths — it is per-link.
        with pytest.raises(CircuitOpenError):
            link.execute_remote_sql("SELECT COUNT(*) FROM customer")
        with pytest.raises(CircuitOpenError):
            link.prepare("SELECT COUNT(*) FROM customer").execute()


class TestPreparedHandles:
    SQL = "SELECT COUNT(*) FROM customer"

    def test_dropped_remote_handle_reprepares_transparently(self, injector, link):
        handle = link.prepare(self.SQL)
        assert handle.execute().scalar == 200
        assert handle.prepares == 1
        assert injector.drop_prepared_handle(link, self.SQL)
        # Same client handle, new server-side half, same answer.
        assert handle.execute().scalar == 200
        assert handle.prepares == 2

    def test_drop_without_live_handle_is_a_noop(self, injector, link):
        assert not injector.drop_prepared_handle(link, "SELECT 1 FROM customer")

    def test_registry_replace_closes_old_links_handles(self, backend, cache):
        registry = cache.server.linked_servers
        old_link = registry.get("backend")
        handle = old_link.prepare(self.SQL)
        handle.execute()
        held = backend.statement_cache_stats()["prepared_statements"]
        assert held >= 1
        registry.register("backend", backend, "shop")
        # The replaced link released its server-side handles.
        assert backend.statement_cache_stats()["prepared_statements"] == held - 1
        assert handle.handle_id is None
        assert registry.get("backend") is not old_link


class TestServerCrash:
    def test_crash_rolls_back_active_transactions(self, backend):
        database = backend.database("shop")
        txn = database.transactions.begin()
        backend.crash()
        assert not txn.active
        assert backend.available is False
        backend.restart()
        assert backend.execute(
            "SELECT COUNT(*) FROM customer", database="shop"
        ).scalar == 200

    def test_crashed_server_refuses_work(self, backend):
        from repro.errors import ServerUnavailableError

        backend.crash()
        with pytest.raises(ServerUnavailableError):
            backend.execute("SELECT COUNT(*) FROM customer", database="shop")

    def test_crash_discards_volatile_prepared_statements(self, injector, link, backend):
        handle = link.prepare("SELECT COUNT(*) FROM orders")
        handle.execute()
        injector.crash_server(backend)
        assert backend.statement_cache_stats()["prepared_statements"] == 0
        injector.restart_server(backend)
        # The link re-prepares from its text copy: invisible to callers.
        assert handle.execute().scalar == 400
        assert handle.prepares == 2
