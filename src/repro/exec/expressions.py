"""Expression compilation: AST → Python closures with SQL semantics.

Expressions compile once per plan against an input :class:`Schema`; the
resulting closures take ``(row, context)`` and return a Python value where
``None`` is SQL NULL. Comparison and boolean operators follow SQL
three-valued logic (``None`` = UNKNOWN); predicates accept a row only when
the compiled closure returns exactly ``True``.

Guard predicates for dynamic plans (paper §5.1) reference only parameters,
so they compile to closures that ignore the row — the FilterOp startup
predicate evaluates them once per execution.

**Batch forms.** Every compiled closure additionally carries a ``batch``
attribute: a function ``(rows, ctx) -> list`` returning one scalar result
per input row (for predicates, a selection vector the batch operators test
element-wise with ``is True``). Batch forms are built at compile time —
never per execution — and live on the closure, so they are cached inside
the plan-cache entry alongside the plan itself and only recompile when a
schema bump invalidates the plan. Where the expression shape allows it the
batch form is a specialized kernel rather than a row loop:

* column references become position reads, literals/parameters are
  hoisted once per chunk;
* comparisons of a column against a hoistable operand pick their
  type-coercion dispatch once per chunk (numeric/string columns compare
  with the raw Python operator; temporal columns parse an ISO string
  operand once, not per row) and fall back to :func:`sql_compare`
  element-wise otherwise;
* AND/OR/NOT combine child selection vectors with Kleene logic;
* constant LIKE patterns compile their regex at closure-build time, and
  non-constant patterns go through a bounded process-wide memo instead of
  recompiling per row.

The generic fallback (``batch_from_scalar``) simply maps the scalar
closure over the chunk, so batch semantics are scalar semantics
row-for-row by construction.
"""

from __future__ import annotations

import datetime
import operator as _operator
import re
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.common.lru import LRUCache
from repro.common.schema import Schema
from repro.common.types import is_numeric, is_string, is_temporal
from repro.errors import ExecutionError, TypeCheckError
from repro.sql import ast

Scalar = Callable[[Tuple, "object"], Any]
#: Batch form of a scalar: ``(rows, ctx) -> [value, ...]`` (one per row).
BatchScalar = Callable[[Sequence[Tuple], "object"], List[Any]]


def sql_equal(left: Any, right: Any) -> Optional[bool]:
    """Three-valued ``=``: NULL operands yield UNKNOWN (None)."""
    if left is None or right is None:
        return None
    return _coerce_pair(left, right, "=") == 0


def sql_compare(op: str, left: Any, right: Any) -> Optional[bool]:
    """Three-valued comparison for =, <>, <, <=, >, >=."""
    if left is None or right is None:
        return None
    sign = _coerce_pair(left, right, op)
    if op == "=":
        return sign == 0
    if op == "<>":
        return sign != 0
    if op == "<":
        return sign < 0
    if op == "<=":
        return sign <= 0
    if op == ">":
        return sign > 0
    if op == ">=":
        return sign >= 0
    raise ExecutionError(f"unknown comparison operator {op!r}")


def _coerce_pair(left: Any, right: Any, op: str) -> int:
    """Return -1/0/1 for left vs right, coercing numerics."""
    if isinstance(left, bool):
        left = int(left)
    if isinstance(right, bool):
        right = int(right)
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return (left > right) - (left < right)
    if isinstance(left, str) and isinstance(right, str):
        return (left > right) - (left < right)
    # Date/datetime compared against ISO strings (common in generated SQL)
    # — resolve the string side first, then fall through to temporal rules.
    if isinstance(left, (datetime.date, datetime.datetime)) and isinstance(right, str):
        right = _parse_temporal(right, left)
    elif isinstance(right, (datetime.date, datetime.datetime)) and isinstance(left, str):
        left = _parse_temporal(left, right)
    if isinstance(left, datetime.datetime) or isinstance(right, datetime.datetime):
        left_dt = _as_datetime(left)
        right_dt = _as_datetime(right)
        return (left_dt > right_dt) - (left_dt < right_dt)
    if isinstance(left, datetime.date) and isinstance(right, datetime.date):
        return (left > right) - (left < right)
    raise TypeCheckError(f"cannot apply {op!r} to {type(left).__name__} and {type(right).__name__}")


def _as_datetime(value: Any) -> datetime.datetime:
    if isinstance(value, datetime.datetime):
        return value
    if isinstance(value, datetime.date):
        return datetime.datetime(value.year, value.month, value.day)
    raise TypeCheckError(f"cannot treat {value!r} as datetime")


def _parse_temporal(text: str, template: Any) -> Any:
    if isinstance(template, datetime.datetime):
        return datetime.datetime.fromisoformat(text)
    return datetime.date.fromisoformat(text)


def sql_and(left: Optional[bool], right: Optional[bool]) -> Optional[bool]:
    """Kleene AND."""
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def sql_or(left: Optional[bool], right: Optional[bool]) -> Optional[bool]:
    """Kleene OR."""
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return False


def sql_not(value: Optional[bool]) -> Optional[bool]:
    """Kleene NOT."""
    if value is None:
        return None
    return not value


def like_to_regex(pattern: str) -> "re.Pattern":
    """Translate a SQL LIKE pattern (% _) into an anchored regex."""
    out = []
    for char in pattern:
        if char == "%":
            out.append(".*")
        elif char == "_":
            out.append(".")
        else:
            out.append(re.escape(char))
    return re.compile("^" + "".join(out) + "$", re.IGNORECASE | re.DOTALL)


#: Process-wide bounded memo of compiled LIKE patterns. Non-constant
#: patterns (column/parameter-valued) hit this instead of recompiling per
#: row; constant patterns bypass it entirely (compiled at closure build).
_like_pattern_memo: LRUCache = LRUCache(256)


def compiled_like_pattern(pattern: str) -> "re.Pattern":
    """Fetch (or build and memoize) the regex for a LIKE pattern."""
    regex = _like_pattern_memo.get(pattern)
    if regex is None:
        regex = like_to_regex(pattern)
        _like_pattern_memo[pattern] = regex
    return regex


def batch_from_scalar(scalar: Scalar) -> BatchScalar:
    """Generic batch form: map the scalar closure over the chunk."""

    def run(rows: Sequence[Tuple], ctx: object) -> List[Any]:
        return [scalar(row, ctx) for row in rows]

    return run


def batch_form(scalar: Scalar) -> BatchScalar:
    """The scalar's batch form, falling back to the generic row map.

    Compiler-produced closures always carry ``.batch``; hand-built makers
    (and test doubles) may not, so batch operators funnel through here.
    """
    existing = getattr(scalar, "batch", None)
    if existing is not None:
        return existing
    return batch_from_scalar(scalar)


def column_maker(position: int) -> Scalar:
    """A Scalar reading one row position, with its batch form attached.

    The planner uses this for pure column-projection makers so the batch
    projection kernel can recognize them (``column_position``) and fuse
    them into a single ``itemgetter``.
    """

    def maker(row: Tuple, ctx: object) -> Any:
        return row[position]

    maker.column_position = position  # type: ignore[attr-defined]
    maker.batch = lambda rows, ctx: [row[position] for row in rows]  # type: ignore[attr-defined]
    return maker


def tuple_kernel(makers: Sequence[Scalar]) -> BatchScalar:
    """Batch kernel producing one tuple per row from a list of makers.

    Used for projections, group keys and hash-join key extraction. When
    every maker is a plain column reference the kernel collapses to an
    ``itemgetter``; otherwise each maker's batch form computes a column
    vector and the vectors are zipped back into rows.
    """
    if not makers:
        # No extractors (e.g. GROUP BY-less aggregation): every row keys
        # to the empty tuple, same as row mode's ``tuple()`` over nothing.
        return lambda rows, ctx: [()] * len(rows)
    positions = [getattr(maker, "column_position", None) for maker in makers]
    if all(position is not None for position in positions):
        if len(positions) == 1:
            first = positions[0]
            return lambda rows, ctx: [(row[first],) for row in rows]
        getter = _operator.itemgetter(*positions)
        return lambda rows, ctx: [getter(row) for row in rows]
    forms = [batch_form(maker) for maker in makers]

    def run(rows: Sequence[Tuple], ctx: object) -> List[Any]:
        if not rows:
            return []
        columns = [form(rows, ctx) for form in forms]
        return list(zip(*columns))

    return run


#: Python comparators for the batch fast path (dispatch picked per chunk).
_COMPARATORS = {
    "=": _operator.eq,
    "<>": _operator.ne,
    "<": _operator.lt,
    "<=": _operator.le,
    ">": _operator.gt,
    ">=": _operator.ge,
}


#: Mirror of each comparator for normalizing ``const OP col`` to
#: ``col OP' const`` in the batch fast path (``5 < col`` ≡ ``col > 5``).
_FLIPPED = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _is_row_independent(fn: Scalar) -> bool:
    """True when the closure ignores the row (literal or parameter)."""
    return hasattr(fn, "constant_value") or hasattr(fn, "parameter_name")


class ExpressionCompiler:
    """Compiles AST expressions to closures over a fixed input schema."""

    def __init__(self, schema: Optional[Schema] = None):
        self.schema = schema or Schema(())

    def compile(self, expression: ast.Expression) -> Scalar:
        """Compile a scalar expression (batch form always attached)."""
        method = getattr(self, f"_compile_{type(expression).__name__.lower()}", None)
        if method is None:
            raise ExecutionError(
                f"cannot compile expression of type {type(expression).__name__}"
            )
        fn = method(expression)
        if not hasattr(fn, "batch"):
            fn.batch = batch_from_scalar(fn)
        return fn

    # -- leaves ---------------------------------------------------------------

    def _compile_literal(self, node: ast.Literal) -> Scalar:
        value = node.value

        def literal(row, ctx):
            return value

        literal.constant_value = value
        literal.batch = lambda rows, ctx: [value] * len(rows)
        return literal

    def _compile_columnref(self, node: ast.ColumnRef) -> Scalar:
        position = self.schema.resolve(node.name, node.qualifier)
        return column_maker(position)

    def _compile_parameter(self, node: ast.Parameter) -> Scalar:
        name = node.name

        def parameter(row, ctx):
            return ctx.param(name)

        parameter.parameter_name = name

        def batch(rows, ctx):
            value = ctx.param(name)
            return [value] * len(rows)

        parameter.batch = batch
        return parameter

    def _compile_star(self, node: ast.Star) -> Scalar:
        raise ExecutionError("'*' is only valid in select lists and COUNT(*)")

    # -- operators ---------------------------------------------------------------

    def _compile_binaryop(self, node: ast.BinaryOp) -> Scalar:
        left = self.compile(node.left)
        right = self.compile(node.right)
        op = node.op
        if op in ("AND", "OR"):
            combine = sql_and if op == "AND" else sql_or

            def logical(row, ctx):
                return combine(_as_bool(left(row, ctx)), _as_bool(right(row, ctx)))

            left_batch = batch_form(left)
            right_batch = batch_form(right)

            def logical_batch(rows, ctx):
                # Both sides evaluate eagerly in row mode too, so combining
                # whole child vectors preserves semantics exactly.
                return [
                    combine(_as_bool(lhs), _as_bool(rhs))
                    for lhs, rhs in zip(left_batch(rows, ctx), right_batch(rows, ctx))
                ]

            logical.batch = logical_batch
            return logical
        if op in _COMPARATORS:
            def compare(row, ctx):
                return sql_compare(op, left(row, ctx), right(row, ctx))

            compare.batch = self._batch_compare(op, left, right)
            return compare
        if op in ("+", "-", "*", "/", "%"):
            return _compile_arithmetic(op, left, right)
        raise ExecutionError(f"unknown binary operator {op!r}")

    def _batch_compare(self, op: str, left: Scalar, right: Scalar) -> BatchScalar:
        """Batch form of a comparison, specializing column-vs-hoistable.

        When one side is a plain column reference and the other is
        row-independent (literal or parameter), the hoistable side is
        evaluated once per chunk and the coercion dispatch is chosen once
        from the column's declared type plus the hoisted value's runtime
        type — the inner loop then runs a raw Python comparator. Any row
        whose value falls outside the specialized case (or any shape the
        specializer does not recognize) drops to element-wise
        :func:`sql_compare`, so results match row mode exactly.
        """
        left_position = getattr(left, "column_position", None)
        right_position = getattr(right, "column_position", None)
        if left_position is not None and _is_row_independent(right):
            position, hoisted, effective_op = left_position, right, op
        elif right_position is not None and _is_row_independent(left):
            position, hoisted, effective_op = right_position, left, _FLIPPED[op]
        else:
            left_batch = batch_form(left)
            right_batch = batch_form(right)

            def generic(rows, ctx):
                return [
                    sql_compare(op, lhs, rhs)
                    for lhs, rhs in zip(left_batch(rows, ctx), right_batch(rows, ctx))
                ]

            return generic

        columns = self.schema.columns
        sql_type = columns[position].sql_type if position < len(columns) else None
        numeric = sql_type is not None and is_numeric(sql_type)
        stringy = sql_type is not None and is_string(sql_type)
        temporal = sql_type is not None and is_temporal(sql_type)
        comparator = _COMPARATORS[effective_op]

        def fast(rows, ctx):
            if not rows:
                return []
            other = hoisted((), ctx)
            if other is None:
                return [None] * len(rows)
            if isinstance(other, bool):
                other = int(other)
            if numeric and isinstance(other, (int, float)):
                return [
                    None if (v := row[position]) is None
                    else (comparator(v, other) if isinstance(v, (int, float))
                          else sql_compare(effective_op, v, other))
                    for row in rows
                ]
            if stringy and isinstance(other, str):
                return [
                    None if (v := row[position]) is None
                    else (comparator(v, other) if isinstance(v, str)
                          else sql_compare(effective_op, v, other))
                    for row in rows
                ]
            if temporal and isinstance(other, str):
                sample = next(
                    (row[position] for row in rows if row[position] is not None), None
                )
                if isinstance(sample, (datetime.date, datetime.datetime)):
                    parsed = _parse_temporal(other, sample)
                    sample_type = type(sample)
                    return [
                        None if (v := row[position]) is None
                        else (comparator(v, parsed) if type(v) is sample_type
                              else sql_compare(effective_op, v, other))
                        for row in rows
                    ]
            return [sql_compare(effective_op, row[position], other) for row in rows]

        return fast

    def _compile_unaryop(self, node: ast.UnaryOp) -> Scalar:
        operand = self.compile(node.operand)
        operand_batch = batch_form(operand)
        if node.op == "NOT":
            def negation(row, ctx):
                return sql_not(_as_bool(operand(row, ctx)))

            negation.batch = lambda rows, ctx: [
                sql_not(_as_bool(v)) for v in operand_batch(rows, ctx)
            ]
            return negation
        if node.op == "-":
            def negate(row, ctx):
                value = operand(row, ctx)
                return None if value is None else -value

            negate.batch = lambda rows, ctx: [
                None if v is None else -v for v in operand_batch(rows, ctx)
            ]
            return negate
        raise ExecutionError(f"unknown unary operator {node.op!r}")

    def _compile_isnull(self, node: ast.IsNull) -> Scalar:
        operand = self.compile(node.operand)
        operand_batch = batch_form(operand)
        if node.negated:
            def not_null(row, ctx):
                return operand(row, ctx) is not None

            not_null.batch = lambda rows, ctx: [
                v is not None for v in operand_batch(rows, ctx)
            ]
            return not_null

        def null_test(row, ctx):
            return operand(row, ctx) is None

        null_test.batch = lambda rows, ctx: [v is None for v in operand_batch(rows, ctx)]
        return null_test

    def _compile_inlist(self, node: ast.InList) -> Scalar:
        operand = self.compile(node.operand)
        items = [self.compile(item) for item in node.items]

        def evaluate(row, ctx):
            value = operand(row, ctx)
            if value is None:
                return None
            seen_null = False
            for item in items:
                candidate = item(row, ctx)
                if candidate is None:
                    seen_null = True
                    continue
                if sql_equal(value, candidate) is True:
                    return False if node.negated else True
            if seen_null:
                return None
            return True if node.negated else False

        return evaluate

    def _compile_insubquery(self, node: ast.InSubquery) -> Scalar:
        operand = self.compile(node.operand)

        def evaluate(row, ctx):
            value = operand(row, ctx)
            if value is None:
                return None
            rows = ctx.run_subquery(node.subquery)
            seen_null = False
            for subrow in rows:
                candidate = subrow[0]
                if candidate is None:
                    seen_null = True
                    continue
                if sql_equal(value, candidate) is True:
                    return False if node.negated else True
            if seen_null:
                return None
            return True if node.negated else False

        return evaluate

    def _compile_between(self, node: ast.Between) -> Scalar:
        operand = self.compile(node.operand)
        low = self.compile(node.low)
        high = self.compile(node.high)

        def evaluate(row, ctx):
            value = operand(row, ctx)
            result = sql_and(
                sql_compare(">=", value, low(row, ctx)),
                sql_compare("<=", value, high(row, ctx)),
            )
            return sql_not(result) if node.negated else result

        return evaluate

    def _compile_like(self, node: ast.Like) -> Scalar:
        operand = self.compile(node.operand)
        pattern_fn = self.compile(node.pattern)
        negated = node.negated
        operand_batch = batch_form(operand)
        constant = getattr(pattern_fn, "constant_value", None)
        if constant is not None:
            # Constant pattern: the regex is compiled exactly once, at
            # closure-build time — never inside the row loop.
            regex_match = compiled_like_pattern(str(constant)).match

            def match_constant(row, ctx):
                value = operand(row, ctx)
                if value is None:
                    return None
                matched = bool(regex_match(str(value)))
                return (not matched) if negated else matched

            def match_constant_batch(rows, ctx):
                out = []
                for value in operand_batch(rows, ctx):
                    if value is None:
                        out.append(None)
                        continue
                    matched = bool(regex_match(str(value)))
                    out.append((not matched) if negated else matched)
                return out

            match_constant.batch = match_constant_batch
            return match_constant

        def evaluate(row, ctx):
            value = operand(row, ctx)
            pattern = pattern_fn(row, ctx)
            if value is None or pattern is None:
                return None
            matched = bool(compiled_like_pattern(str(pattern)).match(str(value)))
            return (not matched) if negated else matched

        if _is_row_independent(pattern_fn):
            # Parameter-valued pattern: unknown until run time, but fixed
            # within an execution — compile once per chunk via the memo.
            def parameter_batch(rows, ctx):
                if not rows:
                    return []
                pattern = pattern_fn((), ctx)
                if pattern is None:
                    return [None] * len(rows)
                regex_match = compiled_like_pattern(str(pattern)).match
                out = []
                for value in operand_batch(rows, ctx):
                    if value is None:
                        out.append(None)
                        continue
                    matched = bool(regex_match(str(value)))
                    out.append((not matched) if negated else matched)
                return out

            evaluate.batch = parameter_batch
        return evaluate

    def _compile_casewhen(self, node: ast.CaseWhen) -> Scalar:
        compiled = [(self.compile(cond), self.compile(result)) for cond, result in node.whens]
        else_fn = self.compile(node.else_result) if node.else_result is not None else None

        def evaluate(row, ctx):
            for condition, result in compiled:
                if _as_bool(condition(row, ctx)) is True:
                    return result(row, ctx)
            if else_fn is not None:
                return else_fn(row, ctx)
            return None

        return evaluate

    def _compile_exists(self, node: ast.Exists) -> Scalar:
        def evaluate(row, ctx):
            rows = ctx.run_subquery(node.subquery)
            found = bool(rows)
            return (not found) if node.negated else found

        return evaluate

    def _compile_scalarsubquery(self, node: ast.ScalarSubquery) -> Scalar:
        def evaluate(row, ctx):
            rows = ctx.run_subquery(node.subquery)
            if not rows:
                return None
            if len(rows) > 1:
                raise ExecutionError("scalar subquery returned more than one row")
            return rows[0][0]

        return evaluate

    def _compile_funccall(self, node: ast.FuncCall) -> Scalar:
        if node.is_aggregate:
            raise ExecutionError(
                f"aggregate {node.name} outside GROUP BY context"
            )
        return _compile_scalar_function(self, node)


def _as_bool(value: Any) -> Optional[bool]:
    """Interpret a value in boolean context (non-zero numbers are true)."""
    if value is None:
        return None
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    return bool(value)


def _compile_arithmetic(op: str, left: Scalar, right: Scalar) -> Scalar:
    def evaluate(row, ctx):
        lhs = left(row, ctx)
        rhs = right(row, ctx)
        if lhs is None or rhs is None:
            return None
        if op == "+":
            if isinstance(lhs, str) or isinstance(rhs, str):
                # T-SQL string concatenation via +
                if isinstance(lhs, str) and isinstance(rhs, str):
                    return lhs + rhs
                raise TypeCheckError("cannot add string and non-string")
            return lhs + rhs
        if op == "-":
            return lhs - rhs
        if op == "*":
            return lhs * rhs
        if op == "/":
            if rhs == 0:
                raise ExecutionError("division by zero")
            if isinstance(lhs, int) and isinstance(rhs, int):
                # T-SQL integer division truncates toward zero.
                quotient = abs(lhs) // abs(rhs)
                return quotient if (lhs >= 0) == (rhs >= 0) else -quotient
            return lhs / rhs
        if op == "%":
            if rhs == 0:
                raise ExecutionError("modulo by zero")
            return lhs - rhs * int(lhs / rhs)
        raise ExecutionError(f"unknown arithmetic operator {op!r}")

    return evaluate


def _compile_scalar_function(compiler: ExpressionCompiler, node: ast.FuncCall) -> Scalar:
    name = node.name
    args = [compiler.compile(arg) for arg in node.args]

    def need(count: int) -> None:
        if len(args) != count:
            raise ExecutionError(f"{name} expects {count} argument(s), got {len(args)}")

    if name == "COALESCE":
        def coalesce(row, ctx):
            for arg in args:
                value = arg(row, ctx)
                if value is not None:
                    return value
            return None

        return coalesce
    if name == "ISNULL":
        need(2)
        return lambda row, ctx: (
            args[0](row, ctx) if args[0](row, ctx) is not None else args[1](row, ctx)
        )
    if name in ("UPPER", "LOWER", "LTRIM", "RTRIM", "LEN", "ABS"):
        need(1)
        simple = {
            "UPPER": lambda v: str(v).upper(),
            "LOWER": lambda v: str(v).lower(),
            "LTRIM": lambda v: str(v).lstrip(),
            "RTRIM": lambda v: str(v).rstrip(),
            "LEN": lambda v: len(str(v).rstrip()),
            "ABS": abs,
        }[name]
        return lambda row, ctx: (None if args[0](row, ctx) is None else simple(args[0](row, ctx)))
    if name == "ROUND":
        need(2)

        def round_fn(row, ctx):
            value = args[0](row, ctx)
            digits = args[1](row, ctx)
            if value is None or digits is None:
                return None
            return round(value, int(digits))

        return round_fn
    if name == "SUBSTRING":
        need(3)

        def substring(row, ctx):
            text = args[0](row, ctx)
            start = args[1](row, ctx)
            length = args[2](row, ctx)
            if text is None or start is None or length is None:
                return None
            begin = max(0, int(start) - 1)  # SQL is 1-based
            return str(text)[begin : begin + int(length)]

        return substring
    if name == "CHARINDEX":
        need(2)

        def charindex(row, ctx):
            needle = args[0](row, ctx)
            haystack = args[1](row, ctx)
            if needle is None or haystack is None:
                return None
            return str(haystack).find(str(needle)) + 1  # 0 when absent, 1-based

        return charindex
    if name == "GETDATE":
        def getdate(row, ctx):
            return datetime.datetime(2003, 6, 9) + datetime.timedelta(seconds=ctx.now())

        return getdate
    if name in ("YEAR", "MONTH", "DAY"):
        need(1)
        attribute = name.lower()

        def extract(row, ctx):
            value = args[0](row, ctx)
            if value is None:
                return None
            return getattr(value, attribute)

        return extract
    if name == "FLOOR":
        need(1)
        import math

        return lambda row, ctx: (
            None if args[0](row, ctx) is None else math.floor(args[0](row, ctx))
        )
    if name == "CEILING":
        need(1)
        import math

        return lambda row, ctx: (
            None if args[0](row, ctx) is None else math.ceil(args[0](row, ctx))
        )
    raise ExecutionError(f"unknown function {name!r}")


def compile_scalar(expression: ast.Expression, schema: Optional[Schema] = None) -> Scalar:
    """Compile a scalar expression against a schema (convenience)."""
    return ExpressionCompiler(schema).compile(expression)


def compile_predicate(expression: ast.Expression, schema: Optional[Schema] = None) -> Scalar:
    """Compile a predicate; callers must test the result ``is True``."""
    return ExpressionCompiler(schema).compile(expression)
