"""E1b companion — Figure 6(a) validated end-to-end through the DES.

The analytic model divides capacities; this bench re-derives the Shopping
scale-out curve by actually simulating users, machines and replication at
each cluster size, using the paper's procedure (saturate, measure WIPS),
and confirms the same linear shape.
"""

import pytest

from repro.simulation import DESConfig, simulate_cluster

from benchmarks.conftest import emit


def test_bench_des_scaleout_curve(cal_cached, benchmark, capsys):
    points = []
    for servers in (1, 2, 3, 4, 5):
        result = simulate_cluster(
            cal_cached,
            DESConfig(
                users=350 * servers,
                mix_name="Shopping",
                servers=servers,
                duration=40,
                warmup=8,
            ),
        )
        points.append((servers, result))

    lines = [f"{'servers':>8s} {'WIPS':>9s} {'web util':>9s} {'backend':>9s}"]
    for servers, result in points:
        lines.append(
            f"{servers:8d} {result.wips:9.1f} {result.web_utilization:9.1%} "
            f"{result.backend_utilization:9.1%}"
        )
    emit(capsys, "E1b (DES): Shopping WIPS vs servers, saturated users", lines)

    wips = [result.wips for _, result in points]
    for index in range(1, 5):
        assert wips[index] / wips[0] == pytest.approx(index + 1, rel=0.15)
    # Backend stays unsaturated throughout (the Shopping shape).
    assert all(result.backend_utilization < 0.6 for _, result in points)

    benchmark.pedantic(
        lambda: simulate_cluster(
            cal_cached,
            DESConfig(users=350, mix_name="Shopping", servers=1, duration=20, warmup=5),
        ),
        rounds=1,
        iterations=1,
    )
