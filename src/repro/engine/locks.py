"""The engine's locking hierarchy: database latch + table lock manager.

Two levels, always acquired top-down, which is what makes the protocol
deadlock-free by construction:

1. **Database latch** (:class:`DatabaseLatch`, one per
   :class:`~repro.engine.database.Database`). Ordinary statements take it
   *shared*; DDL and explicit multi-statement transactions take it
   *exclusive* (coarse two-phase locking — an explicit transaction owns
   the database for its whole span, so its reads and writes need no
   finer-grained protection and fault-injected rollbacks stay simple).
2. **Table locks** (:class:`TableLockManager`). Autocommit statements
   running under the shared latch additionally lock the tables they
   touch: S for reads, X for the DML target. All of a statement's table
   locks are acquired in one batch, **sorted by table name** — a global
   acquisition order, so two statements can never hold locks the other
   one wants in reverse order.

Cross-server calls (cache → backend via a linked server) always flow in
one direction, so holding locks on the cache while the backend takes its
own is acyclic as well.

:func:`referenced_tables` derives the lock set from the statement AST —
the same walk discipline as :func:`repro.sql.ast.walk_statement_expressions`,
plus resolution of non-materialized views down to their base tables so a
view read locks what it actually scans.
"""

from __future__ import annotations

import enum
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.common.locks import RWLock, mutex
from repro.common.witness import LEVEL_LATCH, LEVEL_TABLE, annotate_lock
from repro.sql import ast


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


class DatabaseLatch(RWLock):
    """The per-database reader-writer latch (level 1 of the hierarchy).

    A thread holding it exclusively (DDL, explicit transaction) passes
    freely through shared acquisition and through every table lock —
    exclusivity at the database level subsumes everything below it.
    """

    def __init__(self) -> None:
        super().__init__()
        # Every database latch forms ONE witness class regardless of
        # which Database created it — level 1 of the modeled hierarchy.
        annotate_lock(self, "latch", LEVEL_LATCH)


class TableLockManager:
    """Per-table reader-writer locks with sorted batch acquisition."""

    def __init__(self) -> None:
        self._mutex = mutex()
        self._locks: Dict[str, RWLock] = {}

    def lock_for(self, name: str) -> RWLock:
        key = name.lower()
        lock = self._locks.get(key)
        if lock is None:
            with self._mutex:
                lock = self._locks.get(key)
                if lock is None:
                    lock = RWLock()
                    # One witness class for all table locks; nesting
                    # inside the class is sanctioned (ordered=True)
                    # because ``locking`` acquires in sorted name order.
                    annotate_lock(lock, "table", LEVEL_TABLE, ordered=True)
                    self._locks[key] = lock
        return lock

    @contextmanager
    def locking(self, pairs: Iterable[Tuple[str, LockMode]]) -> Iterator[None]:
        """Acquire a batch of table locks in deterministic (sorted) order.

        Duplicate names collapse with exclusive-wins semantics; locks are
        released in reverse order. Sorting by name gives every statement
        the same global acquisition order — the deadlock-avoidance rule.
        """
        modes: Dict[str, LockMode] = {}
        for name, mode in pairs:
            key = name.lower()
            if modes.get(key) is not LockMode.EXCLUSIVE:
                modes[key] = mode
        acquired: List[Tuple[RWLock, LockMode]] = []
        try:
            for key in sorted(modes):
                lock = self.lock_for(key)
                if modes[key] is LockMode.EXCLUSIVE:
                    lock.acquire_exclusive()
                else:
                    lock.acquire_shared()
                acquired.append((lock, modes[key]))
            yield
        finally:
            for lock, mode in reversed(acquired):
                if mode is LockMode.EXCLUSIVE:
                    lock.release_exclusive()
                else:
                    lock.release_shared()

    def __repr__(self) -> str:
        return f"<TableLockManager tables={len(self._locks)}>"


@dataclass(frozen=True)
class LockPlan:
    """What one statement must hold: latch mode + sorted table locks."""

    latch: LockMode
    tables: Tuple[Tuple[str, LockMode], ...] = ()


#: Statements that restructure the catalog: they take the latch exclusive,
#: which subsumes every table lock.
_DDL_STATEMENTS = (
    ast.CreateTable,
    ast.CreateIndex,
    ast.CreateView,
    ast.CreateProcedure,
    ast.DropObject,
    ast.Grant,
)

_READ_STATEMENTS = (ast.Select, ast.UnionAll, ast.Explain)
_DML_STATEMENTS = (ast.Insert, ast.Update, ast.Delete)


def _iter_table_names(statement: ast.Statement) -> Iterator[ast.TableName]:
    """Yield every FROM-clause table name reachable from ``statement``,
    descending into joins, derived tables, subqueries and UNION branches
    (DML *targets* are handled separately by :func:`referenced_tables`)."""
    pending: List[ast.Statement] = [statement]

    def expr_subqueries(expression: ast.Expression) -> None:
        for node in ast.walk_expression(expression):
            if isinstance(node, (ast.InSubquery, ast.Exists, ast.ScalarSubquery)):
                pending.append(node.subquery)

    def from_ref(ref: Optional[ast.TableRef]) -> Iterator[ast.TableName]:
        if ref is None:
            return
        if isinstance(ref, ast.TableName):
            yield ref
        elif isinstance(ref, ast.JoinRef):
            if ref.condition is not None:
                expr_subqueries(ref.condition)
            yield from from_ref(ref.left)
            yield from from_ref(ref.right)
        elif isinstance(ref, ast.DerivedTable):
            pending.append(ref.select)

    while pending:
        node = pending.pop()
        if isinstance(node, ast.Select):
            yield from from_ref(node.from_clause)
            for item in node.items:
                expr_subqueries(item.expression)
            for expression in (node.where, node.having, node.top):
                if expression is not None:
                    expr_subqueries(expression)
            for expression in node.group_by:
                expr_subqueries(expression)
            for order in node.order_by:
                expr_subqueries(order.expression)
        elif isinstance(node, ast.UnionAll):
            pending.extend(node.branches)
        elif isinstance(node, ast.Explain):
            pending.append(node.statement)
        elif isinstance(node, ast.Insert):
            if node.select is not None:
                pending.append(node.select)
            for row in node.rows:
                for expression in row:
                    expr_subqueries(expression)
        elif isinstance(node, ast.Update):
            for _, expression in node.assignments:
                expr_subqueries(expression)
            if node.where is not None:
                expr_subqueries(node.where)
        elif isinstance(node, ast.Delete):
            if node.where is not None:
                expr_subqueries(node.where)
        elif isinstance(node, (ast.Declare, ast.SetVariable, ast.PrintStatement)):
            # Session-level variable statements can embed scalar
            # subqueries (``SET @x = (SELECT ...)``) that read tables.
            expression = getattr(node, "initial", None) or getattr(node, "value", None)
            if expression is not None:
                expr_subqueries(expression)


def referenced_tables(
    statement: ast.Statement, catalog=None
) -> Tuple[Set[str], Set[str]]:
    """Return ``(reads, writes)``: lowercase local table names the
    statement touches.

    Non-materialized views are resolved recursively down to their base
    tables (a view scan locks what it actually reads); materialized and
    cached views lock their backing heap, which shares the view's name.
    Four-part linked-server names are skipped — the remote server takes
    its own locks when the forwarded statement executes there.
    """
    reads: Set[str] = set()
    writes: Set[str] = set()
    if isinstance(statement, _DML_STATEMENTS) and statement.table.server is None:
        writes.add(statement.table.object_name.lower())
    expanded_views: Set[str] = set()
    stack: List[ast.Statement] = [statement]
    while stack:
        current = stack.pop()
        for name in _iter_table_names(current):
            if name.server is not None:
                continue
            key = name.object_name.lower()
            view = catalog.maybe_view(name.object_name) if catalog is not None else None
            if view is not None and not view.materialized:
                if key not in expanded_views:
                    expanded_views.add(key)
                    stack.append(view.select)
                continue
            reads.add(key)
    return reads, writes


def _procedure_writes(body, catalog, seen: Set[str]) -> bool:
    """Does any statement in a procedure body (transitively) write?

    Descends into IF/WHILE blocks and nested EXEC calls. An unresolvable
    callee is assumed to write — over-locking is safe, a lost update is
    not.
    """
    for statement in body:
        if isinstance(statement, _DML_STATEMENTS + _DDL_STATEMENTS):
            return True
        if isinstance(statement, ast.IfStatement):
            if _procedure_writes(statement.then_body, catalog, seen):
                return True
            if _procedure_writes(statement.else_body, catalog, seen):
                return True
        elif isinstance(statement, ast.WhileStatement):
            if _procedure_writes(statement.body, catalog, seen):
                return True
        elif isinstance(statement, ast.Execute):
            name = statement.procedure[-1].lower()
            if name in seen:
                continue
            seen.add(name)
            callee = catalog.maybe_procedure(name) if catalog is not None else None
            if callee is None or _procedure_writes(callee.body, catalog, seen):
                return True
    return False


def statement_lock_plan(statement: ast.Statement, catalog=None) -> Optional[LockPlan]:
    """Classify a statement into the locks its dispatch must hold.

    Returns ``None`` for statements the locked dispatcher handles
    specially (transaction control takes the latch for the transaction's
    whole span) or that touch no shared state (DECLARE, SET, PRINT).

    ``EXEC`` of a *writing* procedure takes the latch exclusive for the
    whole call: procedure bodies are classic read-modify-write sequences
    (``SELECT MAX(id) + 1`` then ``INSERT``), and locking each inner
    statement separately would let two concurrent calls interleave
    between the read and the dependent write. Read-only procedures get
    ``None`` — their inner statements lock individually as the body runs.
    ``EXEC`` of a procedure this server will forward also gets ``None``:
    the executing server makes the whole forwarded call atomic under its
    own latch.
    """
    if isinstance(statement, _DDL_STATEMENTS):
        return LockPlan(latch=LockMode.EXCLUSIVE)
    if isinstance(statement, ast.Execute):
        if len(statement.procedure) == 4:
            return None  # explicit remote call: the remote server locks
        name = statement.procedure[-1]
        procedure = catalog.maybe_procedure(name) if catalog is not None else None
        if procedure is None:
            return None  # forwarded to the backend, which takes its own locks
        if _procedure_writes(procedure.body, catalog, {name.lower()}):
            return LockPlan(latch=LockMode.EXCLUSIVE)
        return None
    variable_statements = (ast.Declare, ast.SetVariable, ast.PrintStatement)
    if isinstance(statement, _READ_STATEMENTS + _DML_STATEMENTS + variable_statements):
        reads, writes = referenced_tables(statement, catalog)
        if isinstance(statement, variable_statements) and not (reads or writes):
            return None  # pure variable assignment touches no shared state
        modes: Dict[str, LockMode] = {name: LockMode.SHARED for name in reads}
        modes.update({name: LockMode.EXCLUSIVE for name in writes})
        return LockPlan(latch=LockMode.SHARED, tables=tuple(sorted(modes.items())))
    return None
