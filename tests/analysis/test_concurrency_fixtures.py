"""The seeded-violation corpus: every broken pattern is flagged by name.

Each directory under ``tests/fixtures/concurrency/`` contains a tiny
``repro``-shaped package with exactly one deliberate concurrency bug.
``python -m repro analyze --concurrency --path <dir>/repro`` must exit 1
on every one of them and report the rule the fixture's docstring claims;
the same invocation with no ``--path`` (the real package) must exit 0.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.cli import run_analyze

FIXTURE_ROOT = os.path.join(
    os.path.dirname(__file__), os.pardir, "fixtures", "concurrency"
)

#: fixture directory -> the rule its seeded bug must trigger.
EXPECTED_RULES = {
    "leaf_inversion": "lock-order-inversion",
    "table_before_latch": "lock-order-inversion",
    "latch_nesting": "same-class-nesting",
    "two_lock_cycle": "lock-cycle",
    "callgraph_cycle": "lock-cycle",
    "sleep_under_latch": "blocking-under-latch",
    "link_under_table": "blocking-under-latch",
    "raw_lock": "non-chokepoint-lock",
    "torn_boundary": "boundary-move-window",
    "undrained_rebalance": "rebalance-drain",
}


def test_corpus_is_complete():
    """Every fixture directory has an expectation and vice versa."""
    on_disk = {
        name
        for name in os.listdir(FIXTURE_ROOT)
        if os.path.isdir(os.path.join(FIXTURE_ROOT, name))
    }
    assert on_disk == set(EXPECTED_RULES)


@pytest.mark.parametrize("name", sorted(EXPECTED_RULES))
def test_seeded_violation_is_flagged(name, capsys):
    path = os.path.join(FIXTURE_ROOT, name, "repro")
    assert run_analyze(concurrency=True, path=path) == 1
    output = capsys.readouterr().out
    assert f"[{EXPECTED_RULES[name]}]" in output


def test_real_package_is_clean_through_the_cli(capsys):
    # Static passes only (no corpus build): the installed package's own
    # tree must come back clean through the same CLI entry point the
    # fixtures go through.
    import repro

    package_root = os.path.dirname(os.path.abspath(repro.__file__))
    assert run_analyze(concurrency=True, path=package_root) == 0
    assert "analyze: clean" in capsys.readouterr().out
