"""ODBC redirection edge cases: database re-resolution, live invalidation."""

from __future__ import annotations

import pytest

from repro import MTCacheDeployment, Server
from repro.mtcache.odbc import OdbcSourceRegistry

from tests.conftest import make_shop_backend


@pytest.fixture
def env():
    backend = make_shop_backend()
    deployment = MTCacheDeployment(backend, "shop")
    cache = deployment.add_cache_server("cache1")
    cache.create_cached_view(
        "CREATE CACHED VIEW vcust AS SELECT cid, cname FROM customer"
    )
    registry = OdbcSourceRegistry()
    registry.register("shopdsn", backend, "shop")
    return backend, deployment, cache, registry


def make_replica(name: str = "replica", database: str = "shop_v2") -> Server:
    replica = Server(name)
    replica.create_database(database)
    replica.execute(
        "CREATE TABLE customer (cid INT PRIMARY KEY, cname VARCHAR(40))",
        database=database,
    )
    replica.database(database).bulk_load(
        "customer", [(i, f"replica{i}") for i in range(1, 11)]
    )
    return replica


def test_redirect_resolves_database_from_target(env):
    """When the new server lacks the old database, the target's own
    default is adopted instead of keeping a name it cannot serve."""
    backend, _, _, registry = env
    replica = make_replica()
    registry.redirect("shopdsn", replica)  # no explicit database
    connection = registry.connect("shopdsn")
    # The old bug kept database="shop", which the replica does not have;
    # every statement then failed. Resolution must pick shop_v2.
    assert connection.database == "shop_v2"
    assert (
        connection.cursor()
        .execute("SELECT cname FROM customer WHERE cid = 1")
        .fetchone()
        == ("replica1",)
    )


def test_redirect_keeps_database_the_target_actually_has(env):
    backend, _, cache, registry = env
    registry.redirect("shopdsn", cache.server)  # cache carries 'shop' too
    connection = registry.connect("shopdsn")
    assert connection.database == "shop"
    assert connection.server_name == "cache1"


def test_live_connection_follows_redirect(env):
    backend, _, cache, registry = env
    connection = registry.connect("shopdsn")
    assert (
        connection.execute("SELECT cname FROM customer WHERE cid = 1").scalar
        == "cust1"
    )
    assert connection.server_name == "backend"

    registry.redirect("shopdsn", cache.server, "shop")
    # The connection object the application already holds re-resolves on
    # its next statement — no reconnect in application code.
    assert (
        connection.execute("SELECT cname FROM customer WHERE cid = 1").scalar
        == "cust1"
    )
    assert connection.server_name == "cache1"


def test_redirect_rolls_back_transaction_on_old_target(env):
    backend, _, cache, registry = env
    connection = registry.connect("shopdsn")
    connection.begin()
    connection.execute("UPDATE customer SET cname = 'dirty' WHERE cid = 1")
    latch = backend.database("shop").latch

    registry.redirect("shopdsn", cache.server, "shop")
    connection.execute("SELECT cid FROM customer WHERE cid = 1")
    # The abandoned transaction was rolled back and its latch released;
    # the backend still shows the pre-transaction value.
    assert not latch.owns_exclusive()
    assert latch.readers == 0
    assert (
        backend.execute(
            "SELECT cname FROM customer WHERE cid = 1", database="shop"
        ).scalar
        == "cust1"
    )


def test_direct_connection_never_goes_stale(env):
    backend, _, cache, registry = env
    from repro.mtcache.odbc import OdbcConnection

    direct = OdbcConnection(backend, "shop", "dbo")
    registry.redirect("shopdsn", cache.server, "shop")
    # A connection not handed out by the registry is unaffected.
    assert direct.server_name == "backend"
    assert (
        direct.execute("SELECT cname FROM customer WHERE cid = 1").scalar == "cust1"
    )


def test_dead_connections_are_pruned(env):
    backend, _, cache, registry = env
    for _ in range(3):
        registry.connect("shopdsn")  # dropped immediately
    import gc

    gc.collect()
    registry.redirect("shopdsn", cache.server, "shop")
    assert registry._sources["shopdsn"]["connections"] == []
