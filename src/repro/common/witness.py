"""Lockdep-style runtime lock-order witness.

Opt-in via ``REPRO_LOCK_WITNESS=1`` (the test suite enables it in
``tests/conftest.py`` the same way checked plans are enabled). When
active, every lock minted by the :mod:`repro.common.locks` chokepoint
factories carries a *lock class* — all locks created at the same source
site form one class, mirroring how the Linux kernel's lockdep keys
classes by initialization site — and every acquisition is recorded
against the calling thread's stack of held classes:

* an **edge** ``A -> B`` is recorded whenever a thread acquires a lock
  of class ``B`` while holding one of class ``A``;
* acquiring *down* the modeled hierarchy (toward smaller levels) is a
  ``lock-order-inversion``, reported eagerly at the acquisition;
* acquiring a second instance of the same class is ``same-class-nesting``
  unless the class is *ordered* (table locks, which ``locking`` takes in
  sorted name order — a global order within the class).

The modeled hierarchy has four levels per nesting depth:

====== ===== ==========================================================
level  name  what lives there
====== ===== ==========================================================
0      outer client/application tier: pool bookkeeping, driver ticking,
             shard routing, partitioner placement
1      latch the per-database :class:`~repro.engine.locks.DatabaseLatch`
2      table per-table locks from the
             :class:`~repro.engine.locks.TableLockManager`
3      leaf  everything protecting a single structure: metric values,
             LRU entries, WAL appends, transaction bookkeeping
====== ===== ==========================================================

Cross-server calls (cache -> backend through a
:class:`~repro.distributed.linked_server.ServerLink`) bump a per-thread
*nesting depth*; a lock taken at depth ``d`` sits ``d * 4`` levels below
its base level. Holding the cache's latch while the backend takes its
own latch is therefore a legal downward edge (``latch`` at level 1 ->
``latch@1`` at level 5), which is exactly the paper's one-directional
cache-to-backend flow.

The witness never *prevents* anything — it records, and the analysis
pass (:func:`repro.analysis.concurrency.verify_witness`) asserts after
the fact that the observed graph embeds in the modeled hierarchy and
that no violations fired.
"""

from __future__ import annotations

import os
import sys
import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

#: Hierarchy levels (smaller = acquired earlier / further from the data).
LEVEL_OUTER = 0
LEVEL_LATCH = 1
LEVEL_TABLE = 2
LEVEL_LEAF = 3
#: Levels consumed per cross-server nesting depth.
LEVEL_SPAN = 4

LEVEL_NAMES = {
    LEVEL_OUTER: "outer",
    LEVEL_LATCH: "latch",
    LEVEL_TABLE: "table",
    LEVEL_LEAF: "leaf",
}

ENV_VAR = "REPRO_LOCK_WITNESS"

#: Subpackages whose locks belong to the client/application tier (level
#: 0): they may be held across calls into the engine, never vice versa.
OUTER_SUBPACKAGES = (
    "client",
    "tpcw",
    "sharding",
    "resilience",
    "faults",
    "simulation",
    "mtcache",
)


def level_for_site(site: str) -> int:
    """The modeled level of a lock created at ``site`` (``path:line``).

    Locks created in the client/application subpackages are *outer*;
    locks created anywhere else inside ``repro`` are *leaf* (the latch
    and table classes are annotated explicitly, not classified by path).
    Unknown paths — tests, applications — default to outer: application
    code sits above the engine.
    """
    normalized = site.replace("\\", "/")
    for package in OUTER_SUBPACKAGES:
        if f"repro/{package}/" in normalized:
            return LEVEL_OUTER
    if "repro/" in normalized:
        return LEVEL_LEAF
    return LEVEL_OUTER


def _normalize_path(filename: str) -> str:
    normalized = filename.replace("\\", "/")
    for anchor in ("/repro/", "/tests/", "/benchmarks/"):
        index = normalized.rfind(anchor)
        if index >= 0:
            return normalized[index + 1 :]
    return normalized


_INTERNAL_FILES = ("repro/common/locks.py", "repro/common/witness.py")


def caller_site() -> str:
    """``path:line`` of the nearest caller outside the lock chokepoints."""
    frame = sys._getframe(1)
    while frame is not None:
        filename = _normalize_path(frame.f_code.co_filename)
        if not filename.endswith(_INTERNAL_FILES):
            return f"{filename}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>:0"


class LockClass:
    """One lock class: every lock created at the same source site."""

    __slots__ = ("name", "level", "ordered")

    def __init__(self, name: str, level: int, ordered: bool = False) -> None:
        self.name = name
        self.level = level
        self.ordered = ordered

    def __repr__(self) -> str:
        flag = " ordered" if self.ordered else ""
        return f"<LockClass {self.name} level={self.level}{flag}>"


# Raw lock on purpose: the witness instruments the chokepoint factories,
# so its own synchronization cannot go through them.
_registry_lock = threading.Lock()
_registry: Dict[str, LockClass] = {}


def lock_class(name: str, level: int, ordered: bool = False) -> LockClass:
    """The (interned) class named ``name``; created on first use."""
    with _registry_lock:
        cls = _registry.get(name)
        if cls is None:
            cls = LockClass(name, level, ordered)
            _registry[name] = cls
        return cls


def annotate_lock(lock: Any, name: str, level: int, ordered: bool = False) -> None:
    """Assign ``lock`` to an explicitly named class (latch, table)."""
    lock._witness_class = lock_class(name, level, ordered)


class WitnessViolation:
    """One recorded ordering violation (deduplicated per edge)."""

    __slots__ = ("rule", "held", "acquired", "detail")

    def __init__(self, rule: str, held: str, acquired: str, detail: str = "") -> None:
        self.rule = rule
        self.held = held
        self.acquired = acquired
        self.detail = detail

    def as_dict(self) -> Dict[str, str]:
        return {
            "rule": self.rule,
            "held": self.held,
            "acquired": self.acquired,
            "detail": self.detail,
        }

    def __repr__(self) -> str:
        return f"<{self.rule} held={self.held} acquired={self.acquired}>"


class Witness:
    """Records lock acquisition edges and flags ordering violations."""

    def __init__(self) -> None:
        self._lock = threading.Lock()  # raw: see _registry_lock
        self._local = threading.local()
        self.acquisitions = 0
        #: (held key, acquired key) -> times observed.
        self.edges: Dict[Tuple[str, str], int] = {}
        #: key -> (effective level, ordered) for every key ever acquired.
        self.key_levels: Dict[str, Tuple[int, bool]] = {}
        self.violations: List[WitnessViolation] = []
        self._reported: Set[Tuple[str, str, str]] = set()

    # -- per-thread state --------------------------------------------------

    def _stack(self) -> List[List[Any]]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _depth(self) -> int:
        return getattr(self._local, "depth", 0)

    @contextmanager
    def nesting(self) -> Iterator[None]:
        """One cross-server call: locks acquired inside sit LEVEL_SPAN
        levels below everything the calling tier holds."""
        depth = self._depth()
        self._local.depth = depth + 1
        try:
            yield
        finally:
            self._local.depth = depth

    def held_keys(self) -> List[str]:
        """The calling thread's held lock-class keys, outermost first."""
        return [entry[1] for entry in self._stack()]

    # -- recording ---------------------------------------------------------

    def on_acquire(self, lock: Any, cls: LockClass) -> None:
        stack = self._stack()
        for entry in stack:
            if entry[0] is lock:
                entry[4] += 1  # reentrant re-acquire of the same instance
                return
        depth = self._depth()
        key = cls.name if depth == 0 else f"{cls.name}@{depth}"
        level = cls.level + depth * LEVEL_SPAN
        with self._lock:
            self.acquisitions += 1
            self.key_levels.setdefault(key, (level, cls.ordered))
            seen: Set[str] = set()
            for entry in stack:
                held_key = entry[1]
                if held_key in seen:
                    continue
                seen.add(held_key)
                edge = (held_key, key)
                self.edges[edge] = self.edges.get(edge, 0) + 1
                if held_key == key:
                    if not cls.ordered:
                        self._report(
                            "same-class-nesting",
                            held_key,
                            key,
                            "second instance of an unordered class",
                        )
                elif level < entry[2]:
                    self._report(
                        "lock-order-inversion",
                        held_key,
                        key,
                        f"level {level} acquired under level {entry[2]}",
                    )
        stack.append([lock, key, level, cls, 1])

    def on_release(self, lock: Any) -> None:
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index][0] is lock:
                stack[index][4] -= 1
                if stack[index][4] == 0:
                    del stack[index]
                return
        # A release of a lock acquired before the witness engaged: ignore.

    def _report(self, rule: str, held: str, acquired: str, detail: str) -> None:
        dedup = (rule, held, acquired)
        if dedup in self._reported:
            return
        self._reported.add(dedup)
        self.violations.append(WitnessViolation(rule, held, acquired, detail))

    # -- export ------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The observed graph, JSON-ready (obs export + analysis dump)."""
        with self._lock:
            return {
                "acquisitions": self.acquisitions,
                "classes": {
                    key: {"level": level, "ordered": ordered}
                    for key, (level, ordered) in sorted(self.key_levels.items())
                },
                "edges": [
                    {"from": held, "to": acquired, "count": count}
                    for (held, acquired), count in sorted(self.edges.items())
                ],
                "violations": [violation.as_dict() for violation in self.violations],
            }

    def __repr__(self) -> str:
        return (
            f"<Witness acquisitions={self.acquisitions} "
            f"edges={len(self.edges)} violations={len(self.violations)}>"
        )


class WitnessedLock:
    """Duck-typed lock wrapper reporting acquire/release to the witness.

    Works everywhere the stdlib primitives do, including as the lock
    under a ``threading.Condition`` (which falls back to plain
    ``acquire``/``release`` when ``_release_save`` and friends are
    absent, keeping the witness's held stack accurate across ``wait``).
    """

    __slots__ = ("_inner", "_witness_class", "_witness")

    def __init__(
        self, inner: Any, cls: LockClass, witness: Optional[Witness] = None
    ) -> None:
        self._inner = inner
        self._witness_class = cls
        # None means "the process-wide witness, whichever is active when
        # the lock is used"; tests pin a private Witness instance here.
        self._witness = witness

    def _current(self) -> Optional[Witness]:
        return self._witness if self._witness is not None else active_witness()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            witness = self._current()
            if witness is not None:
                witness.on_acquire(self, self._witness_class)
        return bool(acquired)

    def release(self) -> None:
        witness = self._current()
        if witness is not None:
            witness.on_release(self)
        self._inner.release()

    def __enter__(self) -> "WitnessedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __repr__(self) -> str:
        return f"<witnessed {self._inner!r} class={self._witness_class.name}>"


# -- process-wide activation ----------------------------------------------

_active: Optional[Witness] = None


def witness_enabled() -> bool:
    """Whether ``REPRO_LOCK_WITNESS`` requests witnessing (read lazily,
    like ``REPRO_CHECKED_PLANS``, so conftest can set it at import time)."""
    return os.environ.get(ENV_VAR, "") not in ("", "0")


def active_witness() -> Optional[Witness]:
    """The process-wide witness, created on first use when enabled.

    Instrumentation happens at lock *creation*: locks minted while the
    witness is inactive stay raw even if it activates later.
    """
    global _active
    if _active is not None:
        return _active
    if not witness_enabled():
        return None
    with _registry_lock:
        if _active is None:
            _active = Witness()
    return _active
