"""Quickstart: transparent mid-tier caching in ~60 lines.

Builds a backend database, attaches an MTCache server, defines one cached
view, and demonstrates the three headline behaviours:

1. queries route cost-based between the cache and the backend;
2. parameterized queries get *dynamic plans* that pick a branch at run
   time (the paper's Cust1000 example);
3. updates forward transparently and replication refreshes the cache.

The application-facing surface is the DBAPI-style client: ``connect()``
returns a :class:`repro.client.Connection`, cursors execute and fetch.

Run:  python examples/quickstart.py
"""

from repro import MTCacheDeployment, Server, connect
from repro.net import register_inproc


def main() -> None:
    # --- 1. A backend server with some data --------------------------------
    backend = Server("backend")
    backend.create_database("shop")
    backend.execute(
        """
        CREATE TABLE customer (
            cid INT PRIMARY KEY,
            cname VARCHAR(40) NOT NULL,
            caddress VARCHAR(60)
        );
        """
    )
    shop = backend.database("shop")
    shop.bulk_load(
        "customer", [(i, f"cust{i}", f"{i} Main St") for i in range(1, 2001)]
    )
    shop.analyze_all()

    # --- 2. Attach a cache server (shadow DB + replication) ----------------
    deployment = MTCacheDeployment(backend, "shop")
    cache = deployment.add_cache_server("cache1")
    cache.create_cached_view(
        "CREATE CACHED VIEW Cust1000 AS "
        "SELECT cid, cname, caddress FROM customer WHERE cid <= 1000"
    )

    # --- 3. Cost-based routing ----------------------------------------------
    print("Plan for a point query inside the cached range:")
    print(cache.plan("SELECT cname FROM customer WHERE cid = 42").explain(), "\n")

    # --- 4. Dynamic plans (paper Figure 2) ----------------------------------
    query = "SELECT cid, cname, caddress FROM customer WHERE cid <= @cid"
    print("Dynamic plan for the parameterized query:")
    print(cache.plan(query).explain(), "\n")

    # The client API is DSN-based: register the cache under an inproc
    # name and dial it by URL. Swapping "inproc://..." for the "tcp://..."
    # DSN printed by `python -m repro serve` moves the same code onto a
    # real socket — nothing else changes.
    register_inproc("quickstart/cache0", cache)
    connection = connect("inproc://quickstart/cache0")
    cursor = connection.cursor()
    local = cursor.execute(query, {"cid": 500}).fetchall()
    remote = cursor.execute(query, {"cid": 1500}).fetchall()
    print(f"@cid=500  -> {len(local):5d} rows (answered from the cached view)")
    print(f"@cid=1500 -> {len(remote):5d} rows (answered by the backend)\n")

    # --- 5. Transparent updates + replication --------------------------------
    cursor.execute("UPDATE customer SET cname = 'RENAMED' WHERE cid = 42")
    print("After forwarding the update to the backend:")
    print("  backend sees:", backend.execute(
        "SELECT cname FROM customer WHERE cid = 42", database="shop").scalar)
    print("  cache (stale):", cursor.execute(
        "SELECT cname FROM Cust1000 WHERE cid = 42").fetchone()[0])

    deployment.clock.advance(1.0)
    deployment.sync()
    print("  cache (after replication):", cursor.execute(
        "SELECT cname FROM Cust1000 WHERE cid = 42").fetchone()[0])
    print(f"  average propagation latency: {deployment.average_replication_latency():.2f}s")


if __name__ == "__main__":
    main()
