"""Result object helper tests."""

import pytest

from repro import Server


@pytest.fixture
def server():
    s = Server("s")
    s.create_database("db")
    s.execute("CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(10))")
    s.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
    return s


def test_scalar_first_cell(server):
    assert server.execute("SELECT id, name FROM t ORDER BY id").scalar == 1


def test_scalar_empty_is_none(server):
    assert server.execute("SELECT id FROM t WHERE id = 99").scalar is None


def test_column_extraction(server):
    result = server.execute("SELECT id, name FROM t ORDER BY id")
    assert result.column("name") == ["a", "b"]
    assert result.column("ID") == [1, 2]


def test_column_without_schema_raises():
    from repro.engine.results import Result

    with pytest.raises(ValueError):
        Result().column("x")


def test_len_counts_rows(server):
    assert len(server.execute("SELECT id FROM t")) == 2


def test_rowcount_for_dml(server):
    assert server.execute("UPDATE t SET name = 'z'").rowcount == 2
