"""End-to-end overload: 4x saturation through real threads and chaos.

The acceptance property, stated at the system surface: drive the cache
tier at four times the capacity of its bounded connection pool and the
tier must *degrade*, not collapse — the excess is rejected fast with
``OverloadError`` (never a silent drop or a generic failure), completed
goodput holds at >= 70% of an unsaturated run, and the waiter queue
stays bounded by construction. The chaos variant layers a cache kill on
top of a shedding admission gate: failover and admission control
compose without losing a single committed write.

The deterministic (virtual-time) half of this scenario lives in
``tests/simulation/test_overload_des.py``; this module is the
wall-clock half with real worker threads, a real pool and real latches.
"""

from __future__ import annotations

import pytest

from repro.client import ConnectionPool, connect
from repro.faults import FaultInjector
from repro.resilience import AdmissionController
from repro.tpcw import (
    LoadDriver,
    MIXES,
    TPCWApplication,
    TPCWConfig,
    ThreadedLoadDriver,
    build_backend,
    enable_caching,
)

pytestmark = pytest.mark.overload

POOL_SIZE = 4
#: 4x the pool's concurrency: three quarters of the offered load has to
#: wait or shed at any instant.
OVERLOAD_WORKERS = 4 * POOL_SIZE


def build_env(name: str):
    backend, config = build_backend(TPCWConfig(num_items=40, num_ebs=8))
    deployment, caches = enable_caching(backend, [name], config)
    return backend, config, deployment, caches[0]


def run_threaded(deployment, cache, config, *, workers: int, duration: float):
    pool = ConnectionPool(
        lambda: connect(cache.server),
        size=POOL_SIZE,
        max_waiters=POOL_SIZE,
        checkout_timeout=10.0,
    )
    driver = ThreadedLoadDriver(
        pool,
        config,
        MIXES["Shopping"],
        workers=workers,
        think_time=0.001,
        deployment=deployment,
        seed=29,
    )
    stats = driver.run(duration)
    pool.close()
    return stats, pool


@pytest.mark.concurrency
def test_threaded_4x_saturation_sheds_fast_and_keeps_goodput():
    backend, config, deployment, cache = build_env("ov1")
    peak, _ = run_threaded(
        deployment, cache, config, workers=POOL_SIZE, duration=1.0
    )
    assert peak.errors == 0, peak.error_samples
    assert peak.shed == 0  # the pool alone never sheds at its own size
    assert peak.interactions > 0

    hot, pool = run_threaded(
        deployment, cache, config, workers=OVERLOAD_WORKERS, duration=1.0
    )
    # Every rejected interaction was *visibly* rejected: the only
    # failure mode is the transient OverloadError the drivers count as
    # shed — nothing errored, nothing vanished.
    assert hot.errors == 0, hot.error_samples
    assert hot.shed > 0
    assert hot.shed == pool.shed  # all sheds came from the bounded queue
    # Goodput holds: completed interactions per wall second stay at or
    # above 70% of the unsaturated run (the pool stays fully utilized;
    # only the excess is turned away).
    assert hot.throughput >= 0.7 * peak.throughput, (
        hot.throughput,
        peak.throughput,
    )
    # Rejections failed fast: had even one shed waited out the 10s
    # checkout timeout instead, the run could not have finished on time.
    assert hot.wall_seconds < 1.0 + 5.0


@pytest.mark.concurrency
def test_threaded_overload_drops_no_committed_write():
    backend, config, deployment, cache = build_env("ov2")
    stats, _ = run_threaded(
        deployment, cache, config, workers=OVERLOAD_WORKERS, duration=1.0
    )
    assert stats.errors == 0, stats.error_samples
    # Every order acknowledged to a worker reached the backend, and the
    # cache reconverged on exactly that set — overload shed requests,
    # never writes in flight.
    backend_orders = backend.execute(
        "SELECT COUNT(*) FROM orders", database="tpcw"
    ).scalar
    cache_orders = cache.execute("SELECT COUNT(*) FROM cv_orders").scalar
    assert cache_orders == backend_orders


@pytest.mark.chaos
def test_overload_plus_cache_kill_composes():
    """Admission control on the cache plus a mid-run crash: the router
    fails traffic over to the (ungated) backend, admission keeps
    shedding while the cache serves, and no interaction outcome is ever
    ambiguous — completed, shed, or deadline-missed, never errored."""
    backend, config, deployment, cache = build_env("ov3")
    injector = FaultInjector(deployment.clock, seed=5)
    deployment.attach_fault_injector(injector)

    # A gate sized below the offered statement rate: with 8 users at
    # 1s think time each interaction issues several statements, so a
    # trickle-rate bucket sheds a real fraction while admitting the rest.
    cache.server.admission = AdmissionController(
        cache.server.clock,
        rate=30.0,
        burst=10.0,
        queue_delay_target=0.05,
        name="ov3",
        registry=cache.server.metrics,
    )

    start = deployment.clock.now()
    injector.at(start + 12.0, "crash_cache", cache)
    injector.at(start + 22.0, "restart_cache", cache)

    router = deployment.failover_connection(cache, probe_interval=0.5)
    application = TPCWApplication(router, config)
    driver = LoadDriver(
        application, MIXES["Ordering"], users=8, deployment=deployment, seed=31
    )
    stats = driver.run(duration=35.0)
    cache.server.admission = None

    assert stats.errors == 0
    assert stats.interactions > 0
    assert stats.shed > 0
    assert stats.failovers >= 1
    assert stats.failbacks >= 1
    assert injector.pending == 0

    # The overloaded, crashed, restarted cache still converged to the
    # backend's committed state: zero writes lost to either failure mode.
    backend_orders = backend.execute(
        "SELECT COUNT(*) FROM orders", database="tpcw"
    ).scalar
    cache_orders = cache.execute("SELECT COUNT(*) FROM cv_orders").scalar
    assert cache_orders == backend_orders
    registry = cache.server.metrics
    assert registry.counter("overload.shed", labels={"gate": "ov3"}).value > 0
    assert registry.counter("resilience.failovers").value >= 1
