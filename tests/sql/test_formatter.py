"""Formatter tests: SQL text regeneration and round-tripping.

Round-trip stability matters because MTCache ships remote subexpressions
as text: format(parse(format(x))) must equal format(x).
"""

import pytest

from repro.sql import parse, parse_expression
from repro.sql.formatter import format_expression, format_statement

ROUND_TRIP_STATEMENTS = [
    "SELECT a, b FROM t",
    "SELECT TOP 5 DISTINCT a AS x FROM t AS q WHERE a > 1 ORDER BY x DESC",
    "SELECT COUNT(*) AS n, SUM(a) AS s FROM t GROUP BY b HAVING COUNT(*) > 2",
    "SELECT * FROM a AS x INNER JOIN b AS y ON x.id = y.id",
    "SELECT * FROM a CROSS JOIN b",
    "SELECT * FROM a AS x LEFT JOIN b AS y ON x.id = y.id",
    "SELECT a FROM (SELECT a FROM t) AS d",
    "SELECT a FROM srv.db.dbo.t AS p",
    "SELECT a FROM t WHERE a IN (1, 2, 3)",
    "SELECT a FROM t WHERE a IN (SELECT b FROM u)",
    "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u)",
    "SELECT a FROM t WHERE a BETWEEN 1 AND 5 AND b LIKE '%x%'",
    "SELECT a FROM t WHERE a IS NULL OR b IS NOT NULL",
    "SELECT CASE WHEN a = 1 THEN 'x' ELSE 'y' END AS c FROM t",
    "SELECT cid FROM customer WHERE cid <= @cid",
    "SELECT a FROM t WITH FRESHNESS 30 SECONDS",
    "INSERT INTO t (a, b) VALUES (1, 'x''y'), (2, NULL)",
    "INSERT INTO t SELECT a, b FROM u",
    "UPDATE t SET a = 1, b = b + 1 WHERE id = 3",
    "DELETE FROM t WHERE a < 5",
    "EXEC p @a = 1, 'x'",
    "EXEC p",
]


@pytest.mark.parametrize("sql", ROUND_TRIP_STATEMENTS)
def test_round_trip_stable(sql):
    once = format_statement(parse(sql))
    twice = format_statement(parse(once))
    assert once == twice


class TestExpressionFormatting:
    def test_precedence_parenthesization(self):
        text = format_expression(parse_expression("(1 + 2) * 3"))
        assert text == "(1 + 2) * 3"

    def test_no_spurious_parens(self):
        text = format_expression(parse_expression("1 + 2 * 3"))
        assert text == "1 + 2 * 3"

    def test_non_associative_right_parens(self):
        expression = parse_expression("10 - (4 - 2)")
        text = format_expression(expression)
        reparsed = parse_expression(text)
        assert format_expression(reparsed) == text

    def test_parameters(self):
        assert format_expression(parse_expression("@x + 1")) == "@x + 1"

    def test_not_parenthesizes(self):
        text = format_expression(parse_expression("NOT a = 1 AND b = 2"))
        reparsed = parse_expression(text)
        assert format_expression(reparsed) == text

    def test_string_escaping_survives(self):
        text = format_expression(parse_expression("'it''s'"))
        assert text == "'it''s'"


class TestStatementFormatting:
    def test_transactions(self):
        assert format_statement(parse("BEGIN TRANSACTION")) == "BEGIN TRANSACTION"
        assert format_statement(parse("COMMIT")) == "COMMIT"

    def test_cached_view(self):
        text = format_statement(parse("CREATE CACHED VIEW v AS SELECT a FROM t"))
        assert text.startswith("CREATE CACHED VIEW v AS SELECT")

    def test_select_assignment(self):
        text = format_statement(parse("SELECT @x = a FROM t"))
        assert "@x = a" in text
