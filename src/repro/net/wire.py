"""The blocking wire client: a socket-backed execution target.

:class:`WireConnection` speaks the :mod:`repro.net.protocol` frames over
one TCP socket and presents the same execution-target surface the client
facade already binds to (``execute`` / ``healthy`` / ``name``), so
:class:`~repro.client.connection.Connection`,
:class:`~repro.client.pool.ConnectionPool` and
:class:`~repro.resilience.failover.FailoverRouter` work over real sockets
unchanged. Differences from an in-process target, all deliberate:

* ``remote_session = True`` — the session lives server-side; the facade
  must consult :attr:`in_transaction` (mirrored from RESULT headers)
  rather than its local session.
* :attr:`clock` is a wall clock (``time.monotonic``), because across a
  real network hop there is no shared virtual clock. Client-side
  deadline scopes measure wall seconds; the *remaining* budget ships in
  each request header and the server re-anchors it on its own clock.
* A dropped connection surfaces as a transient
  :class:`~repro.errors.ConnectionLostError`; the next call transparently
  re-dials, and prepared statements re-prepare from their kept text (the
  PR 1 handle-recovery protocol, now spanning a process boundary). Only
  the *caller* decides whether to retry the failed call itself — reads
  are safe, writes go through a retry policy or the DTC.
"""

from __future__ import annotations

import socket
import struct
import time
from typing import Any, Dict, Optional

from repro.engine.results import Result
from repro.errors import ClientError, ConnectionLostError, PreparedStatementError
from repro.net import protocol
from repro.obs.metrics import global_registry
from repro.obs.tracing import active_span
from repro.resilience.deadline import remaining_budget


class _WallClock:
    """Monotonic wall-clock with the SimulatedClock surface.

    Lets :class:`~repro.resilience.deadline.Deadline` and
    :class:`~repro.resilience.retry.RetryPolicy` run unmodified against a
    wire target: ``advance`` really sleeps (backoff), ``now`` really
    reads time (deadline bookkeeping).
    """

    __slots__ = ()

    def now(self) -> float:
        return time.monotonic()

    def advance(self, seconds: float) -> float:
        if seconds > 0:
            time.sleep(seconds)
        return self.now()


class _PreparedHandle:
    """Client-side half of a prepared statement over the wire."""

    __slots__ = ("sql", "handle_id", "generation", "reprepares")

    def __init__(self, sql: str, handle_id: int, generation: int):
        self.sql = sql
        self.handle_id = handle_id
        self.generation = generation
        self.reprepares = 0


class WireConnection:
    """One TCP connection to a :class:`~repro.net.server.ReproServer`."""

    #: Tells the Connection facade the session is remote (see module doc).
    remote_session = True

    def __init__(
        self,
        host: str,
        port: int,
        database: Optional[str] = None,
        principal: str = "dbo",
        timeout: Optional[float] = None,
        fetch_rows: Optional[int] = None,
    ):
        self.host = host
        self.port = port
        self.database = database
        self.principal = principal
        self.timeout = timeout
        self.fetch_rows = fetch_rows
        self.clock = _WallClock()
        self.closed = False
        #: Mirrored from the last RESULT header: is the server-side
        #: session inside an explicit transaction?
        self.in_transaction = False
        #: Bumped on every successful dial; prepared handles from an
        #: older generation are stale and transparently re-prepared.
        self.generation = 0
        self.server_name: Optional[str] = None
        self.server_batch_rows = 0
        self._sock: Optional[socket.socket] = None
        self._prepared: Dict[int, _PreparedHandle] = {}
        metrics = global_registry()
        self._m_roundtrips = metrics.counter("net.client.roundtrips")
        self._m_bytes_out = metrics.counter("net.client.bytes_out")
        self._m_bytes_in = metrics.counter("net.client.bytes_in")
        self._m_redials = metrics.counter("net.client.redials")
        self._m_seconds = metrics.histogram("net.client.roundtrip_seconds")
        self._dial()

    @property
    def name(self) -> str:
        return self.server_name or f"tcp://{self.host}:{self.port}"

    # -- transport ---------------------------------------------------------

    def _dial(self) -> None:
        """Connect and handshake; transient errors on refusal/timeouts."""
        try:
            sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        except OSError as exc:
            raise ConnectionLostError(
                f"cannot reach tcp://{self.host}:{self.port}: {exc}"
            ) from exc
        sock.settimeout(self.timeout)
        self._sock = sock
        if self.generation:
            self._m_redials.inc()
        self.generation += 1
        self.in_transaction = False
        hello = {
            "protocol": protocol.PROTOCOL_VERSION,
            "database": self.database,
            "principal": self.principal,
            "fetch_rows": self.fetch_rows,
        }
        opcode, payload = self._roundtrip(protocol.OP_HELLO, hello)
        if opcode == protocol.OP_ERROR:
            # HandshakeError (version/database rejection) or OverloadError
            # (accept-time shedding) — either way the server said no.
            self._drop()
            protocol.raise_error(payload or {})
        if opcode != protocol.OP_WELCOME:
            self._drop()
            raise protocol.ProtocolError(
                f"expected WELCOME, got {protocol.OP_NAMES.get(opcode, opcode)}"
            )
        welcome = payload or {}
        self.server_name = welcome.get("server")
        self.server_batch_rows = int(welcome.get("batch_rows") or 0)

    def _ensure_connected(self) -> None:
        if self.closed:
            raise ClientError("wire connection is closed")
        if self._sock is None:
            self._dial()

    def _drop(self) -> None:
        sock, self._sock = self._sock, None
        self.in_transaction = False
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def _send_frame(self, opcode: int, payload: Optional[Dict[str, Any]]) -> None:
        frame = protocol.encode_frame(opcode, payload)
        assert self._sock is not None
        try:
            self._sock.sendall(frame)
        except OSError as exc:
            self._drop()
            raise ConnectionLostError(f"send to {self.name} failed: {exc}") from exc
        self._m_bytes_out.inc(len(frame))

    def _recv_exactly(self, count: int) -> bytes:
        assert self._sock is not None
        chunks = bytearray()
        while len(chunks) < count:
            try:
                chunk = self._sock.recv(count - len(chunks))
            except socket.timeout as exc:
                self._drop()
                raise ConnectionLostError(
                    f"timed out reading from {self.name} (timeout={self.timeout}s)"
                ) from exc
            except OSError as exc:
                self._drop()
                raise ConnectionLostError(f"read from {self.name} failed: {exc}") from exc
            if not chunk:
                # EOF — possibly mid-frame (a torn reply). Transient: the
                # server or network dropped us; re-dial on the next call.
                self._drop()
                raise ConnectionLostError(
                    f"connection to {self.name} lost mid-frame"
                )
            chunks += chunk
        self._m_bytes_in.inc(count)
        return bytes(chunks)

    def _recv_frame(self):
        length = protocol.check_frame_length(
            struct.unpack("!I", self._recv_exactly(4))[0]
        )
        return protocol.decode_body(self._recv_exactly(length))

    def _roundtrip(self, opcode: int, payload: Optional[Dict[str, Any]]):
        started = time.perf_counter()
        self._send_frame(opcode, payload)
        reply = self._recv_frame()
        self._m_roundtrips.inc()
        self._m_seconds.observe(time.perf_counter() - started)
        return reply

    # -- request headers ---------------------------------------------------

    def _request(self, extra: Dict[str, Any]) -> Dict[str, Any]:
        """Common request header: deadline budget + trace context."""
        payload = dict(extra)
        budget = remaining_budget()
        if budget is not None:
            payload["budget"] = budget
        span = active_span()
        if span is not None:
            payload["trace"] = [span.trace_id, span.span_id]
        if self.fetch_rows:
            payload["fetch_rows"] = self.fetch_rows
        return payload

    def _read_result(self) -> Result:
        """ERROR or RESULT + ROWS... stream → a local Result."""
        opcode, payload = self._recv_frame()
        if opcode == protocol.OP_ERROR:
            protocol.raise_error(payload or {})
        if opcode != protocol.OP_RESULT:
            self._drop()
            raise protocol.ProtocolError(
                f"expected RESULT, got {protocol.OP_NAMES.get(opcode, opcode)}"
            )
        header = payload or {}
        rows = []
        while True:
            opcode, chunk = self._recv_frame()
            if opcode != protocol.OP_ROWS:
                self._drop()
                raise protocol.ProtocolError(
                    f"expected ROWS, got {protocol.OP_NAMES.get(opcode, opcode)}"
                )
            chunk = chunk or {}
            rows.extend(chunk.get("rows") or [])
            if chunk.get("last"):
                break
        self.in_transaction = bool(header.get("in_transaction"))
        return protocol.build_result(header, rows)

    # -- execution target surface -----------------------------------------

    def execute(self, sql: str, params: Optional[Dict[str, Any]] = None) -> Result:
        """Execute a batch on the remote session (the facade's chokepoint)."""
        self._ensure_connected()
        started = time.perf_counter()
        self._send_frame(protocol.OP_EXECUTE, self._request({"sql": sql, "params": params}))
        result = self._read_result()
        self._m_roundtrips.inc()
        self._m_seconds.observe(time.perf_counter() - started)
        return result

    def prepare_sql(self, sql: str) -> int:
        """Prepare on the server; returns a client-stable handle id.

        The id returned here is the *server's* handle id, but the text is
        kept so :meth:`execute_prepared` can transparently re-prepare
        after a reconnect or a server restart.
        """
        self._ensure_connected()
        handle_id = self._prepare_remote(sql)
        self._prepared[handle_id] = _PreparedHandle(sql, handle_id, self.generation)
        return handle_id

    def _prepare_remote(self, sql: str) -> int:
        opcode, payload = self._roundtrip(
            protocol.OP_PREPARE, self._request({"sql": sql})
        )
        if opcode == protocol.OP_ERROR:
            protocol.raise_error(payload or {})
        if opcode != protocol.OP_PREPARED:
            self._drop()
            raise protocol.ProtocolError(
                f"expected PREPARED, got {protocol.OP_NAMES.get(opcode, opcode)}"
            )
        return int((payload or {})["handle"])

    def execute_prepared(
        self, handle_id: int, params: Optional[Dict[str, Any]] = None
    ) -> Result:
        """Execute by handle, transparently re-preparing stale handles."""
        handle = self._prepared.get(handle_id)
        if handle is None:
            raise PreparedStatementError(
                f"no prepared statement with handle {handle_id} on this wire connection"
            )
        self._ensure_connected()
        if handle.generation != self.generation:
            # The socket was re-dialed since prepare: the server-side
            # handle died with the old connection's cleanup (or a crash).
            handle.handle_id = self._prepare_remote(handle.sql)
            handle.generation = self.generation
            handle.reprepares += 1
        try:
            self._send_frame(
                protocol.OP_EXECUTE_PREPARED,
                self._request({"handle": handle.handle_id, "params": params}),
            )
            return self._read_result()
        except PreparedStatementError:
            # Server restarted underneath a live connection: its volatile
            # handle table is empty. Re-prepare from the kept text once.
            handle.handle_id = self._prepare_remote(handle.sql)
            handle.generation = self.generation
            handle.reprepares += 1
            self._send_frame(
                protocol.OP_EXECUTE_PREPARED,
                self._request({"handle": handle.handle_id, "params": params}),
            )
            return self._read_result()

    # -- health / lifecycle ------------------------------------------------

    def healthy(self) -> bool:
        """PING round-trip; any failure marks the socket for re-dial."""
        if self.closed:
            return False
        try:
            self._ensure_connected()
            opcode, _ = self._roundtrip(protocol.OP_PING, None)
        except Exception:  # noqa: BLE001 — a health probe never raises
            self._drop()
            return False
        return opcode == protocol.OP_PONG

    def close(self) -> None:
        """Idempotent close: best-effort BYE, then drop the socket."""
        if self.closed:
            return
        self.closed = True
        if self._sock is not None:
            try:
                self._sock.sendall(protocol.encode_frame(protocol.OP_BYE))
            except OSError:
                pass
        self._drop()
        self._prepared.clear()

    def __enter__(self) -> "WireConnection":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else ("open" if self._sock else "idle")
        return f"<WireConnection {self.name} db={self.database} {state}>"
