"""The server: statement dispatch, plan cache, linked-server endpoint.

One :class:`Server` instance models one SQL Server. It accepts SQL text
(or pre-parsed ASTs from stored procedures), plans SELECTs through the
MTCache-extended optimizer with a version-checked plan cache, executes DML
locally or forwards it to the backend (the transparent-update rule), runs
stored procedures locally or forwards the call, and serves as a linked
server for other instances' remote subexpressions.
"""

from __future__ import annotations

import dataclasses
import itertools
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.common.clock import SimulatedClock
from repro.common.lru import LRUCache
from repro.engine.database import Database
from repro.engine.ddl import (
    execute_create_index,
    execute_create_procedure,
    execute_create_table,
    execute_create_view,
    execute_drop,
    execute_grant,
)
from repro.engine.dml import execute_delete, execute_insert, execute_update
from repro.engine.locks import LockMode, statement_lock_plan
from repro.engine.procedures import ProcedureInterpreter
from repro.engine.results import Result
from repro.engine.session import Session
from repro.errors import (
    CatalogError,
    ExecutionError,
    PreparedStatementError,
    TransactionError,
    TypeCheckError,
)
from repro.exec.context import (
    DEFAULT_BATCH_ROWS,
    ExecutionContext,
    WorkCounters,
    batch_exec_default,
)
from repro.exec.operators import BatchCursor, PhysicalOperator
from repro.obs.metrics import CounterGroupView, MetricsRegistry
from repro.obs.tracing import NULL_SPAN as _NULL_SPAN
from repro.obs.tracing import Tracer, active_span
from repro.optimizer.cost import CostModel
from repro.optimizer.planner import Optimizer, PlannedStatement
from repro.sql import ast, parse_statements
from repro.sql.formatter import format_statement

#: The work-counter field names, taken from the dataclass so the
#: registry-backed facade and the per-execution accumulator never drift.
WORK_FIELDS = tuple(field.name for field in dataclasses.fields(WorkCounters))


class PreparedStatement:
    """The server-side half of the prepare/execute protocol (paper §4.3).

    Holds the statement text plus its parsed form, pinned to the schema
    version it was prepared under. When the version moves (DDL on the
    target database), the next execution transparently re-prepares: the
    text is re-parsed and the plan cache — itself version-checked —
    re-plans against the new schema.
    """

    __slots__ = ("handle_id", "sql", "database_key", "statements", "version", "reprepares")

    def __init__(
        self,
        handle_id: int,
        sql: str,
        database_key: str,
        statements: List[ast.Statement],
        version: int,
    ):
        self.handle_id = handle_id
        self.sql = sql
        self.database_key = database_key
        self.statements = statements
        self.version = version
        self.reprepares = 0

    def __repr__(self) -> str:
        text = self.sql if len(self.sql) <= 40 else self.sql[:37] + "..."
        return f"<PreparedStatement #{self.handle_id} {text!r} v{self.version}>"


class Server:
    """A database server instance (backend or mid-tier cache)."""

    def __init__(
        self,
        name: str,
        clock: Optional[SimulatedClock] = None,
        cost_model: Optional[CostModel] = None,
        optimizer_options: Optional[Dict[str, Any]] = None,
        statement_fastpath: bool = True,
        parse_cache_size: int = 512,
        plan_cache_size: int = 512,
        observability: bool = True,
        checked_plans: Optional[bool] = None,
        batch_exec: Optional[bool] = None,
        batch_rows: int = DEFAULT_BATCH_ROWS,
        admission: Optional[Any] = None,
    ):
        from repro.distributed.linked_server import LinkedServerRegistry

        self.name = name
        self.clock = clock or SimulatedClock()
        self.cost_model = cost_model or CostModel()
        self.optimizer_options = dict(optimizer_options or {})
        self.databases: Dict[str, Database] = {}
        self.default_database: Optional[str] = None
        # Observability (repro.obs): a per-server metrics registry plus a
        # tracer exporting to the process-global span collector. With
        # ``observability=False`` (ablation benchmarks) the registry still
        # exists but the hot paths fall back to plain counters and the
        # tracer is disabled.
        self.observability = observability
        self.metrics = MetricsRegistry(namespace=name)
        self.tracer = Tracer(service=name, enabled=observability)
        self._statement_seconds = self.metrics.histogram("engine.statement_seconds")
        # Vectorized execution (REPRO_BATCH_EXEC, default on): plans are
        # drained through BatchCursor in fixed-size row chunks instead of
        # one row per generator resumption. Instruments are created
        # eagerly so ``exec.*`` always appears in metrics exports.
        self.batch_exec = batch_exec_default() if batch_exec is None else batch_exec
        self.batch_rows = batch_rows
        self._exec_batches = self.metrics.counter("exec.batches")
        self._exec_batch_rows = self.metrics.histogram("exec.batch_rows")
        self._compiled_cache_hits = self.metrics.counter("exec.compiled_cache_hits")
        self._compiled_cache_misses = self.metrics.counter("exec.compiled_cache_misses")
        #: Opt-in per-operator profiling for every SELECT on this server
        #: (per-session opt-in: ``Session.statistics_profile``).
        self.profile_statements = False
        self.linked_servers = LinkedServerRegistry(
            tracer=self.tracer if observability else None,
            clock=self.clock,
            metrics=self.metrics if observability else None,
        )
        #: False while crashed (see :meth:`crash`); entry points raise
        #: ``ServerUnavailableError`` so callers can retry or reroute.
        self.available = True
        #: Optional overload gate (repro.resilience.overload): when set,
        #: every entry point (execute / prepare_sql / execute_prepared)
        #: must be admitted or fails fast with ``OverloadError`` —
        #: bounded virtual queue instead of unbounded pile-up. Entry
        #: points also honor the ambient end-to-end deadline.
        self.admission = admission
        self.crashes = 0
        self._optimizers: Dict[str, Tuple[int, Optimizer]] = {}
        # Statement fast path (all version-checked, all bounded LRUs):
        # SQL text -> parsed statement list, and (database, statement) ->
        # plan. ``statement_fastpath=False`` disables the text cache and
        # by-handle remote execution for ablation benchmarks; the plan
        # cache predates the fast path and stays on either way.
        self.statement_fastpath = statement_fastpath
        # Checked execution (repro.analysis): verify every freshly
        # optimized plan against the structural invariants before it is
        # cached or run. Defaults from REPRO_CHECKED_PLANS; the test
        # suite turns it on globally, MTCache deployments force it on
        # for cache servers.
        if checked_plans is None:
            from repro.analysis import checked_plans_default

            checked_plans = checked_plans_default()
        self.checked_plans = checked_plans
        self._parse_cache: LRUCache = LRUCache(parse_cache_size)
        self._plan_cache: LRUCache = LRUCache(plan_cache_size)
        # Prepared statements this server holds for its clients
        # (linked servers executing by handle).
        self._prepared: Dict[int, PreparedStatement] = {}
        self._prepared_ids = itertools.count(1)
        # Forwarded-DML fast path: stripped statement AST -> remote handle.
        self._dml_forward_cache: LRUCache = LRUCache(256)
        #: How many times the lexer/parser actually ran (cache misses and
        #: fast-path-disabled parses). Benchmarks read deltas of this.
        self.parses = 0
        # Cumulative work executed on this server (simulator calibration).
        # With observability on, the counters live in the metrics registry
        # and ``total_work`` is an attribute-compatible facade over them;
        # per-execution accumulation still uses the plain dataclass.
        if observability:
            self.total_work = CounterGroupView(self.metrics, "work", WORK_FIELDS)
        else:
            self.total_work = WorkCounters()
        self.statements_executed = 0

    # -- crash / restart (fault injection) -----------------------------------

    def crash(self) -> None:
        """Simulate a process crash: volatile state is lost, durable state
        (tables, the replication watermark held by subscriptions) is kept.

        Prepared-statement handles are the canonical volatile state —
        clearing them makes remote links holding handle ids go through
        their ``PreparedStatementError`` re-prepare path after restart.
        Any in-flight transaction is rolled back, modeling the loss of
        uncommitted work.
        """
        self.available = False
        self.crashes += 1
        self._prepared.clear()
        self._dml_forward_cache.clear()
        for database in self.databases.values():
            for transaction in database.transactions.active_transactions():
                database.transactions.rollback(transaction)
            # A crash on the thread holding the latch (single-threaded
            # chaos runs) must not leak the exclusive hold; latches held
            # by *other* threads are released by their sessions'
            # _end_transaction_scope when COMMIT/ROLLBACK fails.
            while database.latch.owns_exclusive():
                database.latch.release_exclusive()
        if self.observability:
            self.metrics.counter("faults.server_crashes").inc()

    def restart(self) -> None:
        """Bring a crashed server back (cold caches, empty prepared set)."""
        self.available = True
        if self.observability:
            self.metrics.counter("faults.server_restarts").inc()

    def healthy(self) -> bool:
        """Health probe used by pool checkout (parallels CacheServer.healthy)."""
        return self.available

    def _check_available(self) -> None:
        if not self.available:
            from repro.errors import ServerUnavailableError

            raise ServerUnavailableError(f"server {self.name!r} is down")

    def _admit(self, what: str) -> None:
        """Overload gate for the entry points: deadline, then admission.

        The deadline check comes first — a request whose budget is
        already gone must not consume an admission token (it would be
        thrown away after the work anyway).
        """
        from repro.resilience.deadline import current_deadline

        deadline = current_deadline()
        if deadline is not None and deadline.expired():
            from repro.errors import DeadlineExceededError

            if self.observability:
                self.metrics.counter("overload.deadline_misses").inc()
            raise DeadlineExceededError(
                f"deadline exceeded before {what} on server {self.name!r}"
            )
        if self.admission is not None:
            self.admission.admit(what)

    # -- databases -----------------------------------------------------------

    def create_database(self, name: str, make_default: bool = True) -> Database:
        if name.lower() in self.databases:
            raise CatalogError(f"database {name!r} already exists")
        database = Database(name, clock=self.clock)
        database.owner_server = self
        self.databases[name.lower()] = database
        if make_default or self.default_database is None:
            self.default_database = name.lower()
        return database

    def database(self, name: Optional[str] = None) -> Database:
        key = (name or self.default_database or "").lower()
        database = self.databases.get(key)
        if database is None:
            raise CatalogError(f"no database {name or '(default)'!r} on server {self.name!r}")
        return database

    def optimizer_for(self, database: Database) -> Optimizer:
        cached = self._optimizers.get(database.name.lower())
        if cached is not None and cached[0] == database.version:
            return cached[1]
        optimizer = Optimizer(
            database,
            cost_model=self.cost_model,
            metrics=self.metrics if self.observability else None,
            **self.optimizer_options,
        )
        self._optimizers[database.name.lower()] = (database.version, optimizer)
        return optimizer

    # -- public execution API --------------------------------------------------

    def execute(
        self,
        sql: str,
        params: Optional[Dict[str, Any]] = None,
        session: Optional[Session] = None,
        database: Optional[str] = None,
    ) -> Result:
        """Execute a SQL batch; returns the last statement's result."""
        self._check_available()
        self._admit("statement batch")
        session = session or Session()
        target = self.database(database or session.database)
        tracer = self.tracer
        span = tracer.span("batch", sql=sql) if tracer.enabled else _NULL_SPAN
        with span:
            statements = self._parse_sql(sql, target)
            if not statements:
                return Result()
            result = Result()
            for statement in statements:
                result = self.execute_statement(
                    statement, params=params, session=session, database=target
                )
            return result

    def _parse_sql(self, sql: str, database: Database) -> List[ast.Statement]:
        """Parse a batch through the version-checked SQL-text cache.

        Keys are interned so repeated identical batches — shipped remote
        subexpressions, replication commands, TPC-W procedure calls —
        compare by pointer and skip the lexer/parser entirely. AST nodes
        are frozen, so the cached statement list is safe to re-execute.
        """
        if not self.statement_fastpath:
            self.parses += 1
            return parse_statements(sql)
        key = (database.name.lower(), sys.intern(sql))
        version = database.version
        entry = self._parse_cache.get(key, valid=lambda e: e[0] == version)
        if entry is not None:
            self.total_work.inc("parse_cache_hits")
            return entry[1]
        self.parses += 1
        statements = parse_statements(sql)
        self._parse_cache[key] = (version, statements)
        return statements

    def execute_statement(
        self,
        statement: ast.Statement,
        params: Optional[Dict[str, Any]] = None,
        session: Optional[Session] = None,
        database: Optional[Database] = None,
    ) -> Result:
        session = session or Session()
        database = database or self.database(session.database)
        merged = session.merged_params(params)
        self.statements_executed += 1
        if not self.observability:
            return self._dispatch_statement(statement, merged, database, session)
        started = time.perf_counter()
        if self.tracer.enabled:
            with self.tracer.span("statement", statement=type(statement).__name__):
                result = self._dispatch_statement(statement, merged, database, session)
        else:
            result = self._dispatch_statement(statement, merged, database, session)
        self._statement_seconds.observe(time.perf_counter() - started)
        return result

    def _dispatch_statement(
        self,
        statement: ast.Statement,
        merged: Dict[str, Any],
        database: Database,
        session: Session,
    ) -> Result:
        """Acquire the statement's locks, then dispatch.

        The locking hierarchy (see :mod:`repro.engine.locks`): transaction
        control manages the database latch across statements (an explicit
        transaction holds it exclusively for its whole span); DDL takes
        the latch exclusive for one statement; everything else takes it
        shared plus sorted per-table locks. A thread already holding the
        latch exclusively — explicit transaction, or a nested dispatch
        from a procedure body — skips both levels.
        """
        if isinstance(statement, ast.BeginTransaction):
            return self._begin_transaction(database, session)
        if isinstance(statement, ast.CommitTransaction):
            return self._commit_transaction(database, session)
        if isinstance(statement, ast.RollbackTransaction):
            return self._rollback_transaction(database, session)
        plan = statement_lock_plan(statement, database.catalog)
        if plan is None or database.latch.owns_exclusive():
            return self._dispatch_unlocked(statement, merged, database, session)
        if plan.latch is LockMode.EXCLUSIVE:
            with database.latch.exclusive():
                return self._dispatch_unlocked(statement, merged, database, session)
        with database.latch.shared():
            with database.lock_manager.locking(plan.tables):
                return self._dispatch_unlocked(statement, merged, database, session)

    # -- transaction control ----------------------------------------------

    def _begin_transaction(self, database: Database, session: Session) -> Result:
        """BEGIN TRANSACTION: coarse 2PL — the session owns the database.

        The latch is taken exclusively *before* the transaction starts and
        held until COMMIT/ROLLBACK, so everything the transaction reads or
        writes is isolated without finer-grained locks, and concurrent
        sessions simply queue behind it.
        """
        if session.in_transaction:
            raise TransactionError("a transaction is already active")
        database.latch.acquire_exclusive()
        try:
            transaction = database.transactions.begin()
        except BaseException:
            database.latch.release_exclusive()
            raise
        session.in_transaction = True
        session.transaction = transaction
        return Result(messages=["transaction started"])

    def _commit_transaction(self, database: Database, session: Session) -> Result:
        try:
            database.transactions.commit(session.transaction)
        finally:
            self._end_transaction_scope(database, session)
        return Result(messages=["transaction committed"])

    def _rollback_transaction(self, database: Database, session: Session) -> Result:
        try:
            database.transactions.rollback(session.transaction)
        finally:
            self._end_transaction_scope(database, session)
        return Result(messages=["transaction rolled back"])

    def _end_transaction_scope(self, database: Database, session: Session) -> None:
        """Detach the session's transaction and drop its latch ownership.

        Runs even when commit/rollback raises (e.g. the transaction was
        already rolled back by a crash), so the latch can never leak from
        a session that went through BEGIN.
        """
        had_transaction = session.in_transaction
        session.in_transaction = False
        session.transaction = None
        if had_transaction and database.latch.owns_exclusive():
            database.latch.release_exclusive()

    def _dispatch_unlocked(
        self,
        statement: ast.Statement,
        merged: Dict[str, Any],
        database: Database,
        session: Session,
    ) -> Result:
        if isinstance(statement, ast.Select):
            return self._execute_select(statement, merged, database, session)
        if isinstance(statement, ast.UnionAll):
            return self._execute_union(statement, merged, database, session)
        if isinstance(statement, ast.Explain):
            planned = self.plan_select(statement.statement, database)
            from repro.common.schema import Column, Schema
            from repro.common.types import VARCHAR

            lines = planned.explain(costs=statement.costs).splitlines()
            schema = Schema([Column("plan", VARCHAR(None))])
            return Result(
                rows=[(line,) for line in lines],
                schema=schema,
                rowcount=len(lines),
            )
        if isinstance(statement, (ast.Insert, ast.Update, ast.Delete)):
            return self._execute_dml(statement, merged, database, session)
        if isinstance(statement, ast.Execute):
            return self._execute_procedure_call(statement, merged, database, session)
        if isinstance(statement, ast.CreateTable):
            return execute_create_table(database, statement)
        if isinstance(statement, ast.CreateIndex):
            return execute_create_index(database, statement)
        if isinstance(statement, ast.CreateView):
            runner = lambda select: self._run_select_rows(select, merged, database, session)  # noqa: E731
            return execute_create_view(database, statement, select_runner=runner)
        if isinstance(statement, ast.CreateProcedure):
            return execute_create_procedure(database, statement)
        if isinstance(statement, ast.DropObject):
            return execute_drop(database, statement)
        if isinstance(statement, ast.Grant):
            return execute_grant(database, statement)
        if isinstance(statement, ast.Declare):
            value = None
            if statement.initial is not None:
                value = self._evaluate_scalar(statement.initial, merged, database, session)
            session.variables[statement.name] = value
            return Result()
        if isinstance(statement, ast.SetVariable):
            session.variables[statement.name] = self._evaluate_scalar(
                statement.value, merged, database, session
            )
            return Result()
        if isinstance(statement, ast.PrintStatement):
            value = self._evaluate_scalar(statement.value, merged, database, session)
            return Result(messages=[str(value)])
        raise ExecutionError(f"cannot execute {type(statement).__name__} at session level")

    # -- SELECT ---------------------------------------------------------------

    def plan_select(
        self,
        statement: ast.Select,
        database: Database,
        cache_key: Optional[Any] = None,
    ) -> PlannedStatement:
        """Plan a SELECT with version-checked caching.

        Dynamic plans make this cache effective for parameterized queries:
        one plan serves every parameter value, choosing its branch at run
        time via startup predicates instead of re-optimizing.

        The default cache key is the statement AST itself: AST nodes are
        frozen dataclasses with structural equality, so textually equal
        statements share a plan (and, unlike ``id()``, keys can never be
        recycled onto a different statement).
        """
        key = (database.name.lower(), cache_key if cache_key is not None else statement)
        version = database.version
        cached = self._plan_cache.get(key, valid=lambda e: e[0] == version)
        if cached is not None:
            return cached[1]
        started = time.perf_counter()
        with self.tracer.span("optimize"):
            planned = self.optimizer_for(database).plan_select(statement)
        if self.observability:
            self.metrics.histogram("optimizer.plan_seconds").observe(
                time.perf_counter() - started
            )
        if self.checked_plans:
            # Checked execution: raise before a structurally invalid plan
            # can be cached or run (repro.analysis.plancheck).
            from repro.analysis import check_plan

            check_plan(planned, database=database)
            if self.observability:
                self.metrics.counter("analysis.plans_checked").inc()
        self._plan_cache[key] = (version, planned)
        return planned

    def _execute_select(
        self,
        statement: ast.Select,
        params: Dict[str, Any],
        database: Database,
        session: Session,
    ) -> Result:
        self._check_select_permissions(statement, database, session)
        planned = self.plan_select(statement, database)
        ctx = self._make_context(params, database, session)
        profile = None
        if self.profile_statements or session.statistics_profile:
            from repro.obs.profile import profiled

            with profiled(planned.root) as profile:
                rows = self._run_plan(planned.root, ctx)
        else:
            rows = self._run_plan(planned.root, ctx)
        ctx.work.rows_returned = len(rows)
        self.total_work.merge(ctx.work)
        result = Result(rows=rows, schema=planned.schema, rowcount=len(rows))
        result.resultsets.append((planned.schema, rows))
        if profile is not None:
            result.profile = profile
            span = active_span()
            if span is not None:
                span.attributes["profile"] = profile.render()
        return result

    def _execute_union(
        self,
        statement: ast.UnionAll,
        params: Dict[str, Any],
        database: Database,
        session: Session,
    ) -> Result:
        """UNION ALL: concatenate branch results (bag semantics).

        Each branch routes independently — one side may come from a cached
        view while another ships to the backend.
        """
        rows: List[Tuple] = []
        schema = None
        for branch in statement.branches:
            result = self._execute_select(branch, params, database, session)
            if schema is None:
                schema = result.schema
            elif len(result.schema) != len(schema):
                raise ExecutionError(
                    "UNION ALL branches must produce the same number of columns"
                )
            else:
                self._check_union_types(schema, result.schema)
            rows.extend(result.rows)
        final = Result(rows=rows, schema=schema, rowcount=len(rows))
        final.resultsets.append((schema, rows))
        return final

    @staticmethod
    def _check_union_types(expected, actual) -> None:
        """Branches must be column-wise type-compatible, not just same arity.

        Compatibility follows the expression type system's ``common_type``
        widening rules (INT unions with FLOAT, VARCHAR with CHAR); a string
        column under a numeric one is an error, reported with the column.
        """
        from repro.common.types import common_type

        for position, (left, right) in enumerate(zip(expected, actual)):
            try:
                common_type(left.sql_type, right.sql_type)
            except TypeCheckError as exc:
                raise ExecutionError(
                    f"UNION ALL branches are not type-compatible at column "
                    f"{position + 1} ({left.name!r}): {left.sql_type} vs {right.sql_type}"
                ) from exc

    def _run_select_rows(self, select, params, database, session):
        result = self._execute_select(select, params, database, session)
        return result.rows, result.schema

    def run_subquery(
        self,
        select: ast.Select,
        params: Dict[str, Any],
        database: Database,
        session: Session,
    ) -> List[Tuple]:
        planned = self.plan_select(select, database)
        ctx = self._make_context(params, database, session)
        rows = self._run_plan(planned.root, ctx)
        self.total_work.merge(ctx.work)
        return rows

    def _run_plan(self, root: PhysicalOperator, ctx: ExecutionContext) -> List[Tuple]:
        """Drain a plan to a row list — BatchCursor in vectorized mode.

        The single chokepoint where both execution modes meet: batch mode
        pulls fixed-size chunks via the batch protocol and records the
        ``exec.*`` instruments; row mode is the classic Volcano loop.
        """
        if not getattr(ctx, "batch_exec", False):
            return list(root.execute(ctx))
        rows: List[Tuple] = []
        cursor = BatchCursor(root, ctx)
        batches = 0
        while (chunk := cursor.next_batch()) is not None:
            batches += 1
            rows.extend(chunk)
            if self.observability:
                self._exec_batch_rows.observe(len(chunk))
        if self.observability:
            self._exec_batches.inc(batches)
            self._compiled_cache_hits.inc(ctx.compiled_cache_hits)
            self._compiled_cache_misses.inc(ctx.compiled_cache_misses)
        return rows

    def _make_context(
        self, params: Dict[str, Any], database: Database, session: Session
    ) -> ExecutionContext:
        ctx = ExecutionContext(
            database=database,
            params=params,
            linked_servers=self.linked_servers,
            clock=self.clock,
            fastpath=self.statement_fastpath,
            tracer=self.tracer if self.observability else None,
            batch_exec=self.batch_exec,
            batch_rows=self.batch_rows,
        )
        ctx.subquery_executor = lambda select, sub_params: self.run_subquery(
            select, sub_params, database, session
        )
        return ctx

    def _evaluate_scalar(self, expression, params, database, session):
        from repro.common.schema import Schema
        from repro.exec.expressions import ExpressionCompiler

        ctx = self._make_context(params, database, session)
        return ExpressionCompiler(Schema(())).compile(expression)((), ctx)

    # -- DML --------------------------------------------------------------------

    def _execute_dml(
        self,
        statement,
        params: Dict[str, Any],
        database: Database,
        session: Session,
    ) -> Result:
        target = statement.table.object_name
        permission = {
            ast.Insert: "INSERT",
            ast.Update: "UPDATE",
            ast.Delete: "DELETE",
        }[type(statement)]
        database.catalog.permissions.check(permission, target, session.principal)

        # Transparent forwarding: shadow tables and four-part names update
        # the real table on the owning server (paper §5: "all insert,
        # delete and update requests ... immediately converted to remote").
        server_name = statement.table.server
        if server_name is None and database.is_remote_table(target):
            server_name = database.backend_server
        if server_name is not None:
            return self._forward_dml(server_name, statement, params)

        ctx = self._make_context(params, database, session)
        autocommit = not session.in_transaction
        transaction = (
            database.transactions.begin()
            if autocommit
            else (session.transaction or database.transactions.current)
        )
        if transaction is None:
            raise TransactionError("no active transaction for DML")
        try:
            if isinstance(statement, ast.Insert):
                runner = lambda select: self._run_select_rows(  # noqa: E731
                    select, params, database, session
                )
                result = execute_insert(database, statement, ctx, transaction, runner)
            elif isinstance(statement, ast.Update):
                result = execute_update(database, statement, ctx, transaction)
            else:
                result = execute_delete(database, statement, ctx, transaction)
        except Exception:
            if autocommit:
                database.transactions.rollback(transaction)
            raise
        if autocommit:
            database.transactions.commit(transaction)
        self.total_work.merge(ctx.work)
        return result

    def _forward_dml(self, server_name: str, statement, params: Dict[str, Any]) -> Result:
        """Ship a DML statement to its owning server.

        Fast path: the stripped statement AST (frozen, hashable) keys a
        bounded cache of remote prepared handles, so a repeated forwarded
        update neither re-formats its text here nor re-parses it there —
        only the parameter values travel. Falls back to whole-text
        shipping when the fast path is disabled.
        """
        link = self.linked_servers.get(server_name)
        stripped = self._strip_server_prefix(statement)
        if not self.statement_fastpath:
            return link.execute_statement_text(format_statement(stripped), params)
        text = self._dml_forward_cache.get(stripped)
        if text is None:
            text = format_statement(stripped)
            self._dml_forward_cache[stripped] = text
        link.statements_shipped += 1
        result = link.prepare(text).execute(params)
        self.total_work.inc("prepared_executions")
        return result

    @staticmethod
    def _strip_server_prefix(statement):
        """Remove the linked-server part from a DML target name."""
        table = statement.table
        if len(table.parts) >= 2:
            new_table = ast.TableName((table.parts[-1],), table.alias)
        else:
            new_table = table
        if isinstance(statement, ast.Insert):
            return ast.Insert(new_table, statement.columns, statement.rows, statement.select)
        if isinstance(statement, ast.Update):
            return ast.Update(new_table, statement.assignments, statement.where)
        return ast.Delete(new_table, statement.where)

    # -- procedures ---------------------------------------------------------------

    def _execute_procedure_call(
        self,
        statement: ast.Execute,
        params: Dict[str, Any],
        database: Database,
        session: Session,
    ) -> Result:
        name = statement.procedure[-1]
        explicit_server = statement.procedure[0] if len(statement.procedure) == 4 else None
        procedure = database.catalog.maybe_procedure(name)

        if procedure is not None and explicit_server is None:
            database.catalog.permissions.check("EXECUTE", name, session.principal)
            interpreter = ProcedureInterpreter(self, database, session)
            with self.tracer.span("procedure", procedure=name):
                result = interpreter.call(procedure, list(statement.arguments), params)
            return result

        # Transparent forwarding of the call (paper §5.2): evaluate the
        # arguments locally, ship EXEC with literal values.
        server_name = explicit_server or database.backend_server
        if server_name is None:
            raise CatalogError(f"no procedure {name!r} and no backend server to forward to")
        link = self.linked_servers.get(server_name)
        literal_args = []
        for arg_name, expression in statement.arguments:
            value = self._evaluate_scalar(expression, params, database, session)
            literal_args.append((arg_name, ast.Literal(value)))
        forwarded = ast.Execute((name,), tuple(literal_args))
        return link.execute_statement_text(format_statement(forwarded), {})

    # -- linked-server endpoint -------------------------------------------------

    def execute_remote_sql(self, sql: str, params: Optional[Dict[str, Any]] = None) -> Result:
        """Entry point used by other servers' RemoteQueryOps and DML
        forwarding. The shipped SQL is re-parsed and re-optimized here,
        as the paper notes must happen when plans cannot be shipped."""
        return self.execute(sql, params=params)

    def prepare_sql(self, sql: str, database: Optional[str] = None) -> int:
        """Prepare a statement batch for by-handle execution (paper §4.3).

        Parses once and pins the result to the current schema version;
        returns an opaque handle id the client executes with parameters.
        This is what lets a parameterized remote query ship its text a
        single time instead of once per execution.
        """
        self._check_available()
        self._admit("prepare")
        target = self.database(database)
        statements = self._parse_sql(sql, target)
        handle = PreparedStatement(
            handle_id=next(self._prepared_ids),
            sql=sys.intern(sql),
            database_key=target.name,
            statements=statements,
            version=target.version,
        )
        self._prepared[handle.handle_id] = handle
        return handle.handle_id

    def execute_prepared(
        self, handle_id: int, params: Optional[Dict[str, Any]] = None
    ) -> Result:
        """Execute a previously prepared statement batch by handle.

        A schema-version bump since prepare (or the last execution)
        triggers a transparent re-prepare: re-parse the pinned text and
        let the version-checked plan cache re-plan against the new
        schema. Unknown handles raise :class:`PreparedStatementError`
        so the client link can re-prepare from its own text copy.
        """
        self._check_available()
        self._admit("prepared execution")
        handle = self._prepared.get(handle_id)
        if handle is None:
            raise PreparedStatementError(
                f"no prepared statement with handle {handle_id} on server {self.name!r}"
            )
        target = self.database(handle.database_key)
        with self.tracer.span("prepared", handle=handle_id):
            if handle.version != target.version:
                handle.statements = self._parse_sql(handle.sql, target)
                handle.version = target.version
                handle.reprepares += 1
            self.total_work.inc("prepared_executions")
            session = Session()
            result = Result()
            for statement in handle.statements:
                result = self.execute_statement(
                    statement, params=params, session=session, database=target
                )
            return result

    def close_prepared(self, handle_id: int) -> None:
        """Drop a prepared statement (client-side handle going away)."""
        self._prepared.pop(handle_id, None)

    def prepared_statement(self, handle_id: int) -> PreparedStatement:
        """Introspection: the server-side half of a handle (tests, tools)."""
        handle = self._prepared.get(handle_id)
        if handle is None:
            raise PreparedStatementError(
                f"no prepared statement with handle {handle_id} on server {self.name!r}"
            )
        return handle

    def statement_cache_stats(self) -> Dict[str, Any]:
        """Fast-path observability: cache counters plus raw parse count."""
        return {
            "parses": self.parses,
            "parse_cache": self._parse_cache.stats.snapshot(),
            "plan_cache": self._plan_cache.stats.snapshot(),
            "prepared_statements": len(self._prepared),
            "parse_cache_hits": self.total_work.parse_cache_hits,
            "prepared_executions": self.total_work.prepared_executions,
            "round_trips_saved": self.total_work.round_trips_saved,
        }

    # -- permissions ---------------------------------------------------------------

    def _check_select_permissions(
        self, statement: ast.Select, database: Database, session: Session
    ) -> None:
        if session.principal.lower() == "dbo":
            return

        def visit_ref(ref: Optional[ast.TableRef]) -> None:
            if ref is None:
                return
            if isinstance(ref, ast.JoinRef):
                visit_ref(ref.left)
                visit_ref(ref.right)
            elif isinstance(ref, ast.DerivedTable):
                visit_select(ref.select)
            elif isinstance(ref, ast.TableName):
                database.catalog.permissions.check(
                    "SELECT", ref.object_name, session.principal
                )

        def visit_select(select: ast.Select) -> None:
            visit_ref(select.from_clause)

        visit_select(statement)

    def reset_work(self) -> None:
        """Zero the cumulative work counters (between calibration runs).

        Also resets the parse-cache and plan-cache hit/miss statistics and
        the raw parse count, so a calibration run measured after a warm-up
        starts from zero on *every* counter — previously only
        ``total_work`` was zeroed, leaving cache hit rates polluted by
        warm-up traffic. Cache *contents* are kept (warm caches are the
        steady state being measured); only the statistics reset.
        """
        if isinstance(self.total_work, CounterGroupView):
            self.total_work.reset()
        else:
            self.total_work = WorkCounters()
        self.statements_executed = 0
        self.parses = 0
        for cache in (self._parse_cache, self._plan_cache, self._dml_forward_cache):
            stats = cache.stats
            stats.hits = 0
            stats.misses = 0
            stats.evictions = 0
            stats.invalidations = 0
        if self.observability:
            self.metrics.reset(prefix="engine.")
            self.metrics.reset(prefix="optimizer.")

    def __repr__(self) -> str:
        return f"<Server {self.name} databases={list(self.databases)}>"
