"""The metrics registry: counters, gauges and fixed-bucket histograms.

One :class:`MetricsRegistry` per server (plus a process-global registry
for components that do not belong to a server, like the DTC). The design
goals, in order:

1. **Always-on.** Recording a metric must be cheap enough that nothing in
   the engine needs a "profiling build". Hot per-row loops keep using the
   plain :class:`~repro.exec.context.WorkCounters` dataclass; the registry
   is touched at statement/batch granularity only.
2. **Thread-safe.** Each metric guards its state with its own lock, so a
   multi-threaded load driver and a background replication agent can
   record concurrently without corrupting counts.
3. **Exportable.** ``snapshot()`` renders every metric to plain dicts that
   serialize to JSON untouched (the export API and the ``python -m repro
   metrics`` CLI build on this).

Metric identity is ``name`` plus an optional ``labels`` mapping; the same
(name, labels) pair always returns the same metric object, so callers may
either hold on to the object (hot paths) or re-look it up (cold paths).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from repro.common.locks import mutex

#: Default histogram buckets for statement/operation latencies (seconds).
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)


def _metric_key(name: str, labels: Optional[Mapping[str, Any]]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count (resettable for calibration runs)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = mutex()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    def set(self, value: int) -> None:
        """Overwrite the count (work-counter facade and resets only)."""
        with self._lock:
            self._value = value

    @property
    def value(self) -> int:
        return self._value

    def reset(self) -> None:
        self.set(0)

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self._value}>"


class Gauge:
    """A value that goes up and down (queue depth, replication lag)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = mutex()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        self.set(0.0)

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self._value}>"


class Histogram:
    """Fixed-bucket histogram: counts of observations per upper bound.

    ``buckets`` is a sorted tuple of inclusive upper bounds; one implicit
    overflow bucket (``+Inf``) catches everything beyond the last bound.
    Observation cost is one ``bisect`` plus a locked pair of adds, which
    keeps it safe for per-statement use.
    """

    __slots__ = ("name", "buckets", "counts", "count", "sum", "_lock")

    def __init__(self, name: str, buckets: Iterable[float] = LATENCY_BUCKETS):
        self.name = name
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self._lock = mutex()

    def observe(self, value: float) -> None:
        position = bisect_left(self.buckets, value)
        with self._lock:
            self.counts[position] += 1
            self.count += 1
            self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def reset(self) -> None:
        with self._lock:
            self.counts = [0] * (len(self.buckets) + 1)
            self.count = 0
            self.sum = 0.0

    def snapshot(self) -> Dict[str, Any]:
        bounds = [str(bound) for bound in self.buckets] + ["+Inf"]
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "buckets": dict(zip(bounds, list(self.counts))),
        }

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count} mean={self.mean:.6f}>"


class MetricsRegistry:
    """A namespace of metrics with get-or-create semantics."""

    def __init__(self, namespace: str = ""):
        self.namespace = namespace
        self._lock = mutex()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        # Write-behind aggregators (CounterGroupView) register a flush
        # callback so snapshot()/reset() always see settled values.
        self._flush_hooks: list = []

    def register_flush(self, hook) -> None:
        """Register a callback invoked before snapshot() and reset()."""
        self._flush_hooks.append(hook)

    def flush(self) -> None:
        for hook in self._flush_hooks:
            hook()

    def counter(self, name: str, labels: Optional[Mapping[str, Any]] = None) -> Counter:
        key = _metric_key(name, labels)
        metric = self._counters.get(key)
        if metric is None:
            with self._lock:
                metric = self._counters.setdefault(key, Counter(key))
        return metric

    def gauge(self, name: str, labels: Optional[Mapping[str, Any]] = None) -> Gauge:
        key = _metric_key(name, labels)
        metric = self._gauges.get(key)
        if metric is None:
            with self._lock:
                metric = self._gauges.setdefault(key, Gauge(key))
        return metric

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] = LATENCY_BUCKETS,
        labels: Optional[Mapping[str, Any]] = None,
    ) -> Histogram:
        key = _metric_key(name, labels)
        metric = self._histograms.get(key)
        if metric is None:
            with self._lock:
                metric = self._histograms.setdefault(key, Histogram(key, buckets))
        return metric

    def snapshot(self) -> Dict[str, Any]:
        """Render every metric to a JSON-ready dict."""
        self.flush()
        return {
            "namespace": self.namespace,
            "counters": {key: c.value for key, c in sorted(self._counters.items())},
            "gauges": {key: g.value for key, g in sorted(self._gauges.items())},
            "histograms": {
                key: h.snapshot() for key, h in sorted(self._histograms.items())
            },
        }

    def reset(self, prefix: Optional[str] = None) -> None:
        """Zero every metric (or those whose name starts with ``prefix``)."""
        self.flush()
        for family in (self._counters, self._gauges, self._histograms):
            for key, metric in family.items():
                if prefix is None or key.startswith(prefix):
                    metric.reset()

    def __repr__(self) -> str:
        return (
            f"<MetricsRegistry {self.namespace!r} counters={len(self._counters)} "
            f"gauges={len(self._gauges)} histograms={len(self._histograms)}>"
        )


class CounterGroupView:
    """Attribute-style facade over a group of registry counters.

    Lets ``server.total_work.rows_processed`` keep working — reads and
    ``+=`` writes included — while the registry is the single source of
    truth for exported values.

    Writes are **write-behind**: ``merge``/``inc`` accumulate into a
    pending-delta dict under one lock (one acquire per statement instead
    of one per touched counter) and the deltas settle into the registry
    counters on ``flush`` — which runs on every read, on ``snapshot`` and
    automatically before ``MetricsRegistry.snapshot()``/``reset()``. Hot
    paths therefore pay a dict-scan plus one lock; readers always see
    settled values.
    """

    def __init__(self, registry: MetricsRegistry, prefix: str, fields: Iterable[str]):
        counters = {name: registry.counter(f"{prefix}.{name}") for name in fields}
        object.__setattr__(self, "_counters", counters)
        object.__setattr__(self, "_pending", dict.fromkeys(counters, 0))
        object.__setattr__(self, "_lock", mutex())
        registry.register_flush(self.flush)

    def flush(self) -> None:
        """Settle pending deltas into the registry counters."""
        pending = self._pending
        with self._lock:
            for name, delta in pending.items():
                if delta:
                    self._counters[name].inc(delta)
                    pending[name] = 0

    def __getattr__(self, name: str) -> int:
        counters = self._counters
        if name not in counters:
            raise AttributeError(name)
        self.flush()
        return counters[name].value

    def __setattr__(self, name: str, value: int) -> None:
        counter = self._counters.get(name)
        if counter is None:
            raise AttributeError(f"unknown work counter {name!r}")
        with self._lock:
            self._pending[name] = 0
        counter.set(value)

    def inc(self, name: str, amount: int = 1) -> None:
        """Bump one counter: the cheap single-field write for hot paths.

        ``view.X += 1`` works but costs a settled read *and* a write;
        ``view.inc("X")`` is one locked dict add.
        """
        with self._lock:
            self._pending[name] += amount

    def merge(self, other: Any) -> None:
        pending = self._pending
        if isinstance(other, CounterGroupView):
            values: Optional[Dict[str, Any]] = other.snapshot()
        else:
            # Fast path for the per-execution WorkCounters dataclass: one
            # dict scan under a single lock, adds for non-zero fields.
            values = getattr(other, "__dict__", None)
        if values is None:
            values = {name: getattr(other, name, 0) for name in pending}
        with self._lock:
            for name, delta in values.items():
                if delta and name in pending:
                    pending[name] += delta

    def reset(self) -> None:
        with self._lock:
            for name in self._pending:
                self._pending[name] = 0
        for counter in self._counters.values():
            counter.reset()

    def snapshot(self) -> Dict[str, int]:
        self.flush()
        return {name: counter.value for name, counter in self._counters.items()}

    def __repr__(self) -> str:
        return f"<CounterGroupView {self.snapshot()}>"


_GLOBAL_REGISTRY = MetricsRegistry(namespace="global")


def global_registry() -> MetricsRegistry:
    """The process-wide registry for components without a server."""
    return _GLOBAL_REGISTRY
