"""Ablation — cost-based routing vs the DBCache-style always-local rule.

The paper (§1) distinguishes MTCache from DBCache: "DBCache appears to
always use the cached version of a table when it is referenced in a query,
regardless of the cost. In MTCache this is not always the case ... if
there is an index on the backend that greatly reduces the cost of the
query, it will be executed on the backend database."

This bench constructs exactly that situation: the cached view lacks a
useful index for the query while the backend has one. Cost-based routing
sends the query to the backend; the always-local policy burns cache CPU
scanning the view.
"""

import pytest

from repro import MTCacheDeployment, Server

from benchmarks.conftest import emit


@pytest.fixture(scope="module")
def env():
    backend = Server("backend")
    backend.create_database("shop")
    backend.execute(
        """
        CREATE TABLE events (
            eid INT PRIMARY KEY,
            kind VARCHAR(12) NOT NULL,
            payload VARCHAR(60)
        );
        CREATE INDEX ix_events_kind ON events (kind);
        """
    )
    database = backend.database("shop")
    database.bulk_load(
        "events",
        [(i, f"kind{i % 500}", f"payload{i}") for i in range(1, 5001)],
    )
    database.analyze_all()
    deployment = MTCacheDeployment(backend, "shop")

    cost_based = deployment.add_cache_server("cost_based")
    always_local = deployment.add_cache_server(
        "always_local", optimizer_options={"force_local_views": True}
    )
    # The cached views project kind+payload; the backend's ix_events_kind
    # is mirrored only when its columns are projected - so project eid too
    # but drop the index by projecting a view WITHOUT the indexed column
    # being index-backed: we instead strip indexes from the view storage.
    for cache in (cost_based, always_local):
        cache.create_cached_view(
            "CREATE CACHED VIEW vevents AS SELECT eid, kind, payload FROM events"
        )
        storage = cache.database.storage_table("vevents")
        for index_name in list(storage.indexes):
            if index_name != "pk_vevents":
                storage.drop_index(index_name)
        for index_name in list(cache.database.catalog.indexes):
            if index_name.startswith("vevents_"):
                cache.database.catalog.drop_index(index_name)
        cache.database.bump_version()
    return backend, cost_based, always_local


QUERY = "SELECT payload FROM events WHERE kind = 'kind123'"


def test_bench_routing_ablation(env, benchmark, capsys):
    backend, cost_based, always_local = env

    planned_cost = cost_based.plan(QUERY)
    planned_local = always_local.plan(QUERY)
    emit(
        capsys,
        "Ablation: cost-based routing vs always-use-cache (DBCache-style)",
        [
            "cost-based plan:   " + planned_cost.root.describe(),
            "always-local plan: " + planned_local.root.describe(),
            f"cost-based estimate:   {planned_cost.estimated_cost:10.1f}",
            f"always-local estimate: {planned_local.estimated_cost:10.1f}",
        ],
    )
    # The backend index wins under cost-based routing.
    assert planned_cost.uses_remote
    assert not planned_local.uses_remote

    # Both return identical results (correctness is never at stake).
    assert sorted(cost_based.execute(QUERY).rows) == sorted(
        always_local.execute(QUERY).rows
    )

    # And the cache-side work difference is real.
    cost_based.server.reset_work()
    always_local.server.reset_work()
    for _ in range(5):
        cost_based.execute(QUERY)
        always_local.execute(QUERY)
    emit(
        capsys,
        "Ablation: cache-side row touches for 5 executions",
        [
            f"cost-based:   {cost_based.server.total_work.rows_processed:8d}",
            f"always-local: {always_local.server.total_work.rows_processed:8d}",
        ],
    )
    assert (
        always_local.server.total_work.rows_processed
        > 10 * max(1, cost_based.server.total_work.rows_processed)
    )

    benchmark(lambda: cost_based.execute(QUERY))
