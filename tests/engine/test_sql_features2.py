"""Second behavioural batch: composition edge cases."""

import pytest

from repro import Server


@pytest.fixture
def server():
    s = Server("edge")
    s.create_database("db")
    s.execute("CREATE TABLE t (id INT PRIMARY KEY, grp VARCHAR(5), v FLOAT)")
    for i in range(1, 13):
        s.execute(
            "INSERT INTO t VALUES (@i, @g, @v)",
            params={"i": i, "g": f"g{i % 3}", "v": float(i)},
        )
    s.database("db").analyze_all()
    return s


class TestInsertShapes:
    def test_insert_select_with_column_subset(self, server):
        server.execute("CREATE TABLE copy1 (id INT PRIMARY KEY, v FLOAT)")
        server.execute("INSERT INTO copy1 (id, v) SELECT id + 100, v FROM t WHERE id <= 3")
        assert server.execute("SELECT COUNT(*) FROM copy1").scalar == 3

    def test_insert_select_reordered_columns(self, server):
        server.execute("CREATE TABLE copy2 (a FLOAT, b INT)")
        server.execute("INSERT INTO copy2 (b, a) SELECT id, v FROM t WHERE id = 1")
        assert server.execute("SELECT a, b FROM copy2").rows == [(1.0, 1)]

    def test_insert_select_from_aggregate(self, server):
        server.execute("CREATE TABLE summary (grp VARCHAR(5), total FLOAT)")
        server.execute(
            "INSERT INTO summary SELECT grp, SUM(v) FROM t GROUP BY grp"
        )
        assert server.execute("SELECT COUNT(*) FROM summary").scalar == 3


class TestViewComposition:
    def test_view_on_view(self, server):
        server.execute("CREATE VIEW small AS SELECT id, v FROM t WHERE id <= 6")
        server.execute("CREATE VIEW tiny AS SELECT id FROM small WHERE id <= 3")
        assert server.execute("SELECT COUNT(*) FROM tiny").scalar == 3

    def test_view_with_aggregate_queried_further(self, server):
        server.execute(
            "CREATE VIEW per_grp AS SELECT grp, COUNT(*) AS n FROM t GROUP BY grp"
        )
        result = server.execute("SELECT MAX(n) FROM per_grp")
        assert result.scalar == 4

    def test_join_view_with_base_table(self, server):
        server.execute("CREATE VIEW ids AS SELECT id AS vid FROM t WHERE id <= 2")
        result = server.execute(
            "SELECT t.v FROM ids JOIN t ON ids.vid = t.id ORDER BY t.v"
        )
        assert result.rows == [(1.0,), (2.0,)]

    def test_materialized_view_is_snapshot(self, server):
        server.execute(
            "CREATE MATERIALIZED VIEW snap AS SELECT id, v FROM t WHERE id <= 3"
        )
        server.execute("UPDATE t SET v = 999 WHERE id = 1")
        # Materialized views are not auto-maintained on a plain server.
        assert server.execute("SELECT v FROM snap WHERE id = 1").scalar == 1.0


class TestOrderingEdges:
    def test_mixed_directions(self, server):
        rows = server.execute(
            "SELECT grp, id FROM t ORDER BY grp ASC, id DESC"
        ).rows
        assert rows[0] == ("g0", 12)
        assert rows[-1] == ("g2", 2)

    def test_order_by_expression(self, server):
        rows = server.execute("SELECT id FROM t ORDER BY id % 3, id").rows
        assert rows[0] == (3,)

    def test_top_larger_than_result(self, server):
        rows = server.execute("SELECT TOP 100 id FROM t").rows
        assert len(rows) == 12

    def test_distinct_then_order(self, server):
        rows = server.execute("SELECT DISTINCT grp FROM t ORDER BY grp DESC").rows
        assert rows == [("g2",), ("g1",), ("g0",)]


class TestExecArgumentShapes:
    def test_mixed_positional_and_named(self, server):
        server.execute(
            "CREATE PROCEDURE mixed @a INT, @b INT = 10, @c INT = 100 AS "
            "BEGIN SELECT @a + @b + @c AS s END"
        )
        assert server.execute("EXEC mixed 1, @c = 5").scalar == 16

    def test_expression_arguments(self, server):
        server.execute(
            "CREATE PROCEDURE echo @x INT AS BEGIN SELECT @x AS x END"
        )
        assert server.execute("EXEC echo 2 + 3 * 4").scalar == 14

    def test_session_variable_as_argument(self, server):
        from repro import Session

        session = Session()
        server.execute("CREATE PROCEDURE echo2 @x INT AS BEGIN SELECT @x AS x END")
        server.execute("DECLARE @mine INT = 42", session=session)
        assert server.execute("EXEC echo2 @x = @mine", session=session).scalar == 42


class TestSubqueryShapes:
    def test_in_subquery_with_aggregate(self, server):
        result = server.execute(
            "SELECT COUNT(*) FROM t WHERE v > (SELECT AVG(v) FROM t)"
        )
        assert result.scalar == 6

    def test_not_in_subquery(self, server):
        result = server.execute(
            "SELECT COUNT(*) FROM t WHERE id NOT IN (SELECT id FROM t WHERE id <= 10)"
        )
        assert result.scalar == 2

    def test_exists_nonempty(self, server):
        assert server.execute(
            "SELECT COUNT(*) FROM t WHERE EXISTS (SELECT 1 FROM t WHERE id = 1)"
        ).scalar == 12

    def test_not_exists_empty(self, server):
        assert server.execute(
            "SELECT COUNT(*) FROM t WHERE NOT EXISTS (SELECT 1 FROM t WHERE id = 999)"
        ).scalar == 12

    def test_scalar_subquery_in_projection(self, server):
        result = server.execute(
            "SELECT id, (SELECT MIN(v) FROM t) AS lo FROM t WHERE id = 5"
        )
        assert result.rows == [(5, 1.0)]

    def test_derived_table_with_aggregate_joined(self, server):
        result = server.execute(
            "SELECT t.id FROM t JOIN (SELECT grp, MAX(v) AS mx FROM t GROUP BY grp) AS m "
            "ON t.grp = m.grp AND t.v = m.mx ORDER BY t.id"
        )
        assert [row[0] for row in result.rows] == [10, 11, 12]
