"""Name binding and AST rewriting utilities for the planner.

The planner fully qualifies every column reference (attaching the table
alias that supplies it) before predicate placement, so conjuncts can be
attributed to table references syntactically. Because AST nodes are frozen
dataclasses with structural equality, rewriting builds new trees and
expression-to-column substitution can use plain dict lookup.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import BindError
from repro.sql import ast


class Namespace:
    """Maps aliases to their available column names (lowercase)."""

    def __init__(self):
        self._aliases: Dict[str, List[str]] = {}
        self._order: List[str] = []

    def add(self, alias: str, columns: List[str]) -> None:
        key = alias.lower()
        if key in self._aliases:
            raise BindError(f"duplicate table alias {alias!r}")
        self._aliases[key] = [column.lower() for column in columns]
        self._order.append(key)

    def aliases(self) -> List[str]:
        return list(self._order)

    def columns_of(self, alias: str) -> List[str]:
        columns = self._aliases.get(alias.lower())
        if columns is None:
            raise BindError(f"unknown table alias {alias!r}")
        return columns

    def resolve_column(self, name: str, qualifier: Optional[str]) -> str:
        """Return the alias supplying a column; raise on unknown/ambiguous."""
        if qualifier:
            key = qualifier.lower()
            if key not in self._aliases:
                raise BindError(f"unknown table alias {qualifier!r}")
            if name.lower() not in self._aliases[key]:
                raise BindError(f"no column {name!r} in {qualifier!r}")
            return key
        owners = [
            alias for alias in self._order if name.lower() in self._aliases[alias]
        ]
        if not owners:
            raise BindError(f"unknown column {name!r}")
        if len(owners) > 1:
            raise BindError(f"ambiguous column {name!r}")
        return owners[0]


def rewrite_expression(
    expression: ast.Expression,
    transform: Callable[[ast.Expression], Optional[ast.Expression]],
) -> ast.Expression:
    """Bottom-up rewrite; ``transform`` returning non-None replaces a node.

    The transform is applied after children have been rewritten, so
    replacements see updated subtrees.
    """
    rebuilt = _rebuild(expression, transform)
    replacement = transform(rebuilt)
    return replacement if replacement is not None else rebuilt


def _rebuild(expression: ast.Expression, transform) -> ast.Expression:
    recurse = lambda child: rewrite_expression(child, transform)  # noqa: E731
    if isinstance(expression, ast.BinaryOp):
        return ast.BinaryOp(expression.op, recurse(expression.left), recurse(expression.right))
    if isinstance(expression, ast.UnaryOp):
        return ast.UnaryOp(expression.op, recurse(expression.operand))
    if isinstance(expression, ast.IsNull):
        return ast.IsNull(recurse(expression.operand), expression.negated)
    if isinstance(expression, ast.InList):
        return ast.InList(
            recurse(expression.operand),
            tuple(recurse(item) for item in expression.items),
            expression.negated,
        )
    if isinstance(expression, ast.InSubquery):
        return ast.InSubquery(recurse(expression.operand), expression.subquery, expression.negated)
    if isinstance(expression, ast.Between):
        return ast.Between(
            recurse(expression.operand),
            recurse(expression.low),
            recurse(expression.high),
            expression.negated,
        )
    if isinstance(expression, ast.Like):
        return ast.Like(recurse(expression.operand), recurse(expression.pattern), expression.negated)
    if isinstance(expression, ast.CaseWhen):
        return ast.CaseWhen(
            tuple((recurse(cond), recurse(result)) for cond, result in expression.whens),
            recurse(expression.else_result) if expression.else_result is not None else None,
        )
    if isinstance(expression, ast.FuncCall):
        return ast.FuncCall(
            expression.name,
            tuple(recurse(arg) for arg in expression.args),
            expression.distinct,
        )
    return expression


def qualify_expression(expression: ast.Expression, namespace: Namespace) -> ast.Expression:
    """Return a copy with every ColumnRef carrying its owning alias."""

    def transform(node: ast.Expression) -> Optional[ast.Expression]:
        if isinstance(node, ast.ColumnRef):
            alias = namespace.resolve_column(node.name, node.qualifier)
            if node.qualifier and node.qualifier.lower() == alias:
                return None
            return ast.ColumnRef(node.name, qualifier=alias)
        return None

    return rewrite_expression(expression, transform)


def substitute(
    expression: ast.Expression,
    mapping: Dict[ast.Expression, ast.ColumnRef],
) -> ast.Expression:
    """Replace whole subexpressions per ``mapping`` (structural equality).

    Used after aggregation: ``SUM(x)`` and group-by expressions in the
    select list / HAVING / ORDER BY are replaced by references to the
    aggregate operator's output columns.
    """

    def transform(node: ast.Expression) -> Optional[ast.Expression]:
        return mapping.get(node)

    # Top-down replacement must win over bottom-up rebuilding for exact
    # matches, so check the root first.
    if expression in mapping:
        return mapping[expression]
    return rewrite_expression(expression, transform)


def contains_aggregate(expression: ast.Expression) -> bool:
    """True when the expression contains an aggregate function call."""
    return any(
        isinstance(node, ast.FuncCall) and node.is_aggregate
        for node in ast.walk_expression(expression)
    )


def collect_aggregates(expression: ast.Expression) -> List[ast.FuncCall]:
    """All aggregate calls within an expression."""
    return [
        node
        for node in ast.walk_expression(expression)
        if isinstance(node, ast.FuncCall) and node.is_aggregate
    ]
