"""Table and column statistics with equi-depth histograms.

MTCache shadows the *statistics* of backend tables onto the cache server
even though the shadow tables hold no data — that is what makes fully
cost-based optimization possible on the mid-tier. Statistics objects here
are therefore designed to be (a) buildable from real data (``ANALYZE``)
and (b) detachable/serializable so a shadow database can adopt a backend
table's statistics verbatim.

Selectivity estimation follows the classic System-R rules with histogram
refinement for range predicates.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple


def _sort_key(value: Any) -> Tuple:
    """Order values of mixed kinds safely (NULLs never reach here)."""
    if isinstance(value, bool):
        return (0, value)
    if isinstance(value, (int, float)):
        return (1, value)
    if isinstance(value, str):
        return (2, value)
    return (3, type(value).__name__, value)


@dataclass
class Histogram:
    """An equi-depth histogram: ``bounds`` are bucket upper edges."""

    bounds: List[Any] = field(default_factory=list)
    bucket_count: int = 0

    @classmethod
    def build(cls, values: Sequence[Any], buckets: int = 20) -> "Histogram":
        """Build from non-null values; each bucket holds ~equal row counts."""
        ordered = sorted(values, key=_sort_key)
        if not ordered:
            return cls([], 0)
        buckets = max(1, min(buckets, len(ordered)))
        bounds = []
        for index in range(1, buckets + 1):
            position = min(len(ordered) - 1, (index * len(ordered)) // buckets - 1)
            bounds.append(ordered[max(0, position)])
        return cls(bounds, buckets)

    def fraction_below(self, value: Any, inclusive: bool) -> float:
        """Estimate the fraction of rows with column value <= (or <) value."""
        if not self.bounds:
            return 0.5
        key = _sort_key(value)
        keys = [_sort_key(bound) for bound in self.bounds]
        if inclusive:
            index = bisect.bisect_right(keys, key)
        else:
            index = bisect.bisect_left(keys, key)
        return min(1.0, index / self.bucket_count)


@dataclass
class ColumnStatistics:
    """Per-column statistics: cardinality, bounds, nulls, histogram."""

    column_name: str
    distinct_count: int = 1
    null_count: int = 0
    row_count: int = 0
    min_value: Any = None
    max_value: Any = None
    histogram: Histogram = field(default_factory=Histogram)

    @classmethod
    def build(cls, column_name: str, values: Sequence[Any], buckets: int = 20) -> "ColumnStatistics":
        """Compute statistics from a column of values (None = NULL)."""
        non_null = [value for value in values if value is not None]
        stats = cls(
            column_name=column_name,
            distinct_count=max(1, len(set(non_null))) if non_null else 1,
            null_count=len(values) - len(non_null),
            row_count=len(values),
        )
        if non_null:
            stats.min_value = min(non_null, key=_sort_key)
            stats.max_value = max(non_null, key=_sort_key)
            stats.histogram = Histogram.build(non_null, buckets)
        return stats

    @property
    def null_fraction(self) -> float:
        if self.row_count == 0:
            return 0.0
        return self.null_count / self.row_count

    def equality_selectivity(self) -> float:
        """Selectivity of ``col = literal``: 1/NDV scaled by non-null rows."""
        non_null_fraction = 1.0 - self.null_fraction
        return non_null_fraction / max(1, self.distinct_count)

    def range_selectivity(self, op: str, value: Any) -> float:
        """Selectivity of ``col <op> literal`` using the histogram.

        Falls back to linear interpolation over [min, max] for numeric
        columns without a histogram, then to the 1/3 System-R default.
        """
        non_null_fraction = 1.0 - self.null_fraction
        if self.histogram.bounds:
            if op in ("<", "<="):
                fraction = self.histogram.fraction_below(value, inclusive=(op == "<="))
            elif op in (">", ">="):
                fraction = 1.0 - self.histogram.fraction_below(value, inclusive=(op == ">"))
            else:
                fraction = 1.0 / 3.0
            return max(0.0, min(1.0, fraction)) * non_null_fraction
        if (
            isinstance(value, (int, float))
            and isinstance(self.min_value, (int, float))
            and isinstance(self.max_value, (int, float))
            and self.max_value > self.min_value
        ):
            position = (value - self.min_value) / (self.max_value - self.min_value)
            position = max(0.0, min(1.0, position))
            if op in (">", ">="):
                position = 1.0 - position
            return position * non_null_fraction
        return (1.0 / 3.0) * non_null_fraction

    def copy(self) -> "ColumnStatistics":
        """Return a detached copy (for shadow databases)."""
        return ColumnStatistics(
            column_name=self.column_name,
            distinct_count=self.distinct_count,
            null_count=self.null_count,
            row_count=self.row_count,
            min_value=self.min_value,
            max_value=self.max_value,
            histogram=Histogram(list(self.histogram.bounds), self.histogram.bucket_count),
        )


@dataclass
class TableStatistics:
    """Statistics for a table (or materialized view treated as a table)."""

    table_name: str
    row_count: int = 0
    columns: Dict[str, ColumnStatistics] = field(default_factory=dict)

    @classmethod
    def build(cls, table_name: str, column_names: Sequence[str], rows: Sequence[Tuple]) -> "TableStatistics":
        """Compute statistics over materialized rows (the ANALYZE path)."""
        stats = cls(table_name=table_name, row_count=len(rows))
        for position, column_name in enumerate(column_names):
            values = [row[position] for row in rows]
            stats.columns[column_name.lower()] = ColumnStatistics.build(column_name, values)
        return stats

    def column(self, name: str) -> Optional[ColumnStatistics]:
        """Look up column statistics case-insensitively."""
        return self.columns.get(name.lower())

    def copy(self, table_name: Optional[str] = None) -> "TableStatistics":
        """Detached copy, optionally renamed (shadow database adoption)."""
        return TableStatistics(
            table_name=table_name or self.table_name,
            row_count=self.row_count,
            columns={key: value.copy() for key, value in self.columns.items()},
        )
