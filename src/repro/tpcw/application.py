"""The TPC-W application tier: fourteen interactions over stored procedures.

Plays the role of the paper's ISAPI extension: each web interaction issues
one or more ``EXEC`` calls through the DBAPI-style cursor surface of its
connection — an :class:`~repro.mtcache.odbc.OdbcConnection`, a plain
:class:`repro.client.Connection`, or a
:class:`~repro.resilience.failover.FailoverRouter` — so the same
application code runs against the backend directly or against an MTCache
server: the transparency the paper is about.

Interactions keep lightweight per-user session state (current customer,
shopping-cart id, last detail item) the way the real benchmark's session
cookies do.
"""

from __future__ import annotations

import datetime
import random
from dataclasses import dataclass
from typing import Any, Optional

from repro.tpcw.config import SUBJECTS, TITLE_WORDS, TPCWConfig

_NOW_BASE = datetime.datetime(2003, 6, 9, 12, 0, 0)


@dataclass
class UserSession:
    """Session state for one emulated browser."""

    customer_id: int
    cart_id: Optional[int] = None
    last_item: int = 1


class TPCWApplication:
    """Issues the benchmark's database requests for each interaction."""

    def __init__(self, connection, config: TPCWConfig, rng: Optional[random.Random] = None):
        if isinstance(connection, str):
            # A DSN ("tcp://host:port/tpcw", "inproc://deployment/cache0")
            # — dial it through the client API, same facade either way.
            from repro.client import connect

            connection = connect(connection)
        self.connection = connection
        self.config = config
        self.rng = rng or random.Random(config.seed + 1)
        self.db_calls = 0

    # -- helpers -------------------------------------------------------------

    def _exec(self, procedure: str, **params: Any):
        arguments = ", ".join(f"@{name} = @{name}" for name in params)
        sql = f"EXEC {procedure} {arguments}" if params else f"EXEC {procedure}"
        self.db_calls += 1
        return self.connection.cursor().execute(sql, params)

    def _now(self) -> datetime.datetime:
        return _NOW_BASE + datetime.timedelta(seconds=self.rng.randint(0, 86_400))

    def _random_subject(self) -> str:
        return SUBJECTS[self.rng.randrange(len(SUBJECTS))]

    def _random_item(self) -> int:
        return self.rng.randint(1, self.config.num_items)

    def new_session(self) -> UserSession:
        return UserSession(customer_id=self.rng.randint(1, self.config.num_customers))

    def run(self, interaction: str, session: UserSession) -> None:
        """Dispatch one interaction by name."""
        getattr(self, interaction)(session)

    # -- browse class -----------------------------------------------------------

    def home(self, session: UserSession) -> None:
        self._exec("getName", c_id=session.customer_id)
        self._exec("getRelated", i_id=session.last_item)

    def new_products(self, session: UserSession) -> None:
        self._exec("getNewProducts", subject=self._random_subject())

    def best_sellers(self, session: UserSession) -> None:
        self._exec("getBestSellers", subject=self._random_subject())

    def product_detail(self, session: UserSession) -> None:
        item = self._random_item()
        session.last_item = item
        self._exec("getBook", i_id=item)

    def search_request(self, session: UserSession) -> None:
        # Rendering the search page needs no database work beyond the
        # promotional related items.
        self._exec("getRelated", i_id=session.last_item)

    def search_results(self, session: UserSession) -> None:
        kind = self.rng.randrange(3)
        if kind == 0:
            word = TITLE_WORDS[self.rng.randrange(len(TITLE_WORDS))]
            self._exec("doTitleSearch", title=f"%{word}%")
        elif kind == 1:
            lname = f"Last{self.rng.randint(0, 40)}%"
            self._exec("doAuthorSearch", lname=lname)
        else:
            self._exec("doSubjectSearch", subject=self._random_subject())

    # -- order class -----------------------------------------------------------

    def _ensure_cart(self, session: UserSession) -> int:
        if session.cart_id is None:
            cursor = self._exec("createEmptyCart", now=self._now())
            session.cart_id = int(cursor.fetchone()[0])
        return session.cart_id

    def shopping_cart(self, session: UserSession) -> None:
        cart = self._ensure_cart(session)
        self._exec("addItem", sc_id=cart, i_id=self._random_item(), qty=self.rng.randint(1, 3))
        self._exec("refreshCartTime", sc_id=cart, now=self._now())
        self._exec("getCart", sc_id=cart)

    def customer_registration(self, session: UserSession) -> None:
        if self.rng.random() < 0.2:
            suffix = self.rng.randint(100000, 999999)
            result = self._exec(
                "enterAddress",
                street1=f"{suffix} Fresh St",
                city="Newtown",
                state="NT",
                zip=f"{suffix % 100000:05d}",
                co_id=self.rng.randint(1, self.config.num_countries),
            )
            created = self._exec(
                "createNewCustomer",
                uname=f"newuser{suffix}",
                passwd="pw",
                fname="New",
                lname="Customer",
                addr_id=int(result.fetchone()[0]),
                now=self._now(),
            )
            session.customer_id = int(created.fetchone()[0])
        else:
            self._exec("getCustomer", uname=f"user{session.customer_id}")
            self._exec("refreshSession", c_id=session.customer_id, now=self._now())

    def buy_request(self, session: UserSession) -> None:
        cart = self._ensure_cart(session)
        self._exec("getCustomer", uname=f"user{session.customer_id}")
        self._exec("getCart", sc_id=cart)
        self._exec("getCDiscount", c_id=session.customer_id)

    def buy_confirm(self, session: UserSession) -> None:
        cart = self._ensure_cart(session)
        addr_row = self._exec("getCAddr", c_id=session.customer_id).fetchone()
        addr_id = (addr_row[0] if addr_row else None) or 1
        cart_rows = self._exec("getCart", sc_id=cart).fetchall()
        if not cart_rows:
            self._exec("addItem", sc_id=cart, i_id=self._random_item(), qty=1)
            cart_rows = self._exec("getCart", sc_id=cart).fetchall()
        order = self._exec(
            "enterOrder",
            c_id=session.customer_id,
            sc_id=cart,
            ship_type="AIR",
            bill_addr=int(addr_id),
            ship_addr=int(addr_id),
            now=self._now(),
        )
        order_id = int(order.fetchone()[0])
        for line_number, row in enumerate(cart_rows, start=1):
            self._exec(
                "addOrderLine",
                ol_id=line_number,
                o_id=order_id,
                i_id=int(row[0]),
                qty=int(row[5]),
                discount=0.0,
            )
        self._exec(
            "enterCCXact",
            o_id=order_id,
            cx_type="VISA",
            cx_num=f"{4000000000000000 + order_id}",
            cx_name="Card Holder",
            amount=100.0,
            co_id=self.rng.randint(1, self.config.num_countries),
            now=self._now(),
        )
        self._exec("clearCart", sc_id=cart)
        session.cart_id = None

    def order_inquiry(self, session: UserSession) -> None:
        self._exec("getPassword", uname=f"user{session.customer_id}")

    def order_display(self, session: UserSession) -> None:
        rows = self._exec(
            "getMostRecentOrderId", uname=f"user{session.customer_id}"
        ).fetchall()
        if rows:
            order_id = int(rows[0][0])
            self._exec("getMostRecentOrderInfo", o_id=order_id)
            self._exec("getMostRecentOrderLines", o_id=order_id)

    def admin_request(self, session: UserSession) -> None:
        item = self._random_item()
        session.last_item = item
        self._exec("getBook", i_id=item)

    def admin_confirm(self, session: UserSession) -> None:
        item = session.last_item
        self._exec(
            "adminUpdate",
            i_id=item,
            cost=round(self.rng.uniform(5.0, 100.0), 2),
            image=f"img/image{item}.gif",
            thumbnail=f"img/thumb{item}.gif",
            now=self._now(),
        )
        self._exec("getBestSellers", subject=self._random_subject())
