"""RetryPolicy unit tests: backoff shape, budgets, transient gating."""

import random

import pytest

from repro.common.clock import SimulatedClock
from repro.errors import ConstraintError, LinkUnavailableError
from repro.resilience import RetryPolicy
from repro.resilience.retry import default_link_policy


def test_backoff_is_exponential_and_capped():
    policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.0)
    assert policy.backoff(1) == pytest.approx(0.1)
    assert policy.backoff(2) == pytest.approx(0.2)
    assert policy.backoff(3) == pytest.approx(0.4)
    assert policy.backoff(4) == pytest.approx(0.5)  # capped
    assert policy.backoff(9) == pytest.approx(0.5)


def test_next_delay_exhausts_attempts():
    policy = RetryPolicy(max_attempts=3, jitter=0.0)
    assert policy.next_delay(1, started=0.0, now=0.0) is not None
    assert policy.next_delay(2, started=0.0, now=0.0) is not None
    assert policy.next_delay(3, started=0.0, now=0.0) is None


def test_next_delay_respects_deadline_budget():
    policy = RetryPolicy(
        max_attempts=10, base_delay=1.0, multiplier=1.0, max_delay=1.0,
        jitter=0.0, deadline=2.5,
    )
    # 1.8s already burned + 1.0s backoff > 2.5s budget: give up.
    assert policy.next_delay(1, started=0.0, now=1.0) is not None
    assert policy.next_delay(1, started=0.0, now=1.8) is None


def test_run_retries_transient_until_success():
    clock = SimulatedClock()
    policy = RetryPolicy(max_attempts=5, base_delay=0.1, jitter=0.0)
    calls = []

    def flaky():
        calls.append(clock.now())
        if len(calls) < 3:
            raise LinkUnavailableError("down")
        return "ok"

    assert policy.run(flaky, clock) == "ok"
    assert len(calls) == 3
    # Backoff advanced the virtual clock: 0.1 + 0.2.
    assert clock.now() == pytest.approx(0.3)


def test_run_does_not_retry_deterministic_errors():
    clock = SimulatedClock()
    policy = RetryPolicy(jitter=0.0)
    calls = []

    def broken():
        calls.append(1)
        raise ConstraintError("duplicate key")

    with pytest.raises(ConstraintError):
        policy.run(broken, clock)
    assert len(calls) == 1
    assert clock.now() == 0.0  # no backoff burned


def test_run_raises_after_exhausting_attempts():
    clock = SimulatedClock()
    policy = RetryPolicy(max_attempts=3, base_delay=0.05, jitter=0.0)
    calls = []

    def always_down():
        calls.append(1)
        raise LinkUnavailableError("down")

    with pytest.raises(LinkUnavailableError):
        policy.run(always_down, clock)
    assert len(calls) == 3


def test_jitter_comes_from_injected_rng():
    a = RetryPolicy(jitter=0.5, rng=random.Random(11))
    b = RetryPolicy(jitter=0.5, rng=random.Random(11))
    assert [a.backoff(i) for i in range(1, 5)] == [b.backoff(i) for i in range(1, 5)]
    plain = RetryPolicy(jitter=0.0)
    jittered = RetryPolicy(jitter=0.5, rng=random.Random(11))
    assert jittered.backoff(1) != plain.backoff(1)


def test_default_link_policy_is_stable_per_name():
    assert default_link_policy("backend").backoff(1) == default_link_policy("backend").backoff(1)
