"""DES chaos scenario: kill one cache machine, measure the availability story."""

import dataclasses

import pytest

from repro.simulation import ChaosSpec, DESConfig, calibrate, simulate_cluster
from repro.tpcw import TPCWConfig


@pytest.fixture(scope="module")
def calibration():
    return calibrate(
        "cached",
        TPCWConfig(num_items=60, num_ebs=10, bestseller_window=60),
        repetitions=3,
    )


def chaos_config(**overrides):
    base = dict(
        users=120,
        mix_name="Shopping",
        servers=2,
        duration=100,
        warmup=10,
        chaos=ChaosSpec(server_index=0, kill_at=40.0, restart_at=70.0),
    )
    base.update(overrides)
    return DESConfig(**base)


@pytest.mark.chaos
def test_chaos_run_completes_interactions_via_failover(calibration):
    result = simulate_cluster(calibration, chaos_config())
    # The dead machine's users kept completing interactions — on the
    # backend — for the 30 simulated seconds of the outage.
    assert result.failover_interactions > 0
    assert result.completed > 0
    assert result.wips > 0

    # Its apply queue backed up during the outage and drained after the
    # restart: a visible backlog peak, and a worst-case replication
    # latency far above the healthy sub-second figure.
    assert result.chaos_backlog_peak > 0
    assert result.replication_latency_max > 5.0
    assert result.replication_latency is not None


@pytest.mark.chaos
def test_chaos_costs_throughput_but_not_correctness(calibration):
    healthy = simulate_cluster(calibration, chaos_config(chaos=None))
    chaotic = simulate_cluster(calibration, chaos_config())
    # Failing a whole interaction over to the backend is strictly more
    # expensive, so chaos can only cost throughput — never interactions.
    assert chaotic.wips <= healthy.wips * 1.05
    assert chaotic.completed > 0
    assert healthy.failover_interactions == 0
    assert healthy.chaos_backlog_peak == 0


@pytest.mark.chaos
def test_chaos_simulation_is_deterministic(calibration):
    first = simulate_cluster(calibration, chaos_config())
    second = simulate_cluster(calibration, chaos_config())
    assert dataclasses.asdict(first) == dataclasses.asdict(second)
